"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper (see
DESIGN.md for the experiment index).  The workloads are synthetic stand-ins
for Porto and GeoLife (see ``repro.data.synthetic``), sized so the whole
harness finishes in minutes on a laptop; the *shape* of the results -- which
method wins, by roughly what factor, how quantities move along each sweep --
is what is being reproduced, not the absolute numbers of the paper's testbed.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_ROOT = Path(__file__).resolve().parents[1]
_SRC = _ROOT / "src"
for path in (str(_ROOT), str(_SRC)):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.data import generate_geolife_like, generate_porto_like  # noqa: E402
from repro.data.trajectory import Trajectory, TrajectoryDataset  # noqa: E402


@pytest.fixture(scope="session")
def porto_bench():
    """Porto-like benchmark workload (dense urban taxi traces)."""
    return generate_porto_like(num_trajectories=80, max_length=120, seed=101)


@pytest.fixture(scope="session")
def porto_staggered_bench():
    """Porto-like workload with staggered trip start times.

    Taxi trips start and end throughout the observation window (as in the
    real Porto data), which makes the per-timestamp point distribution drift
    over time -- the regime the temporal partition-based index is designed
    for.  Used by the TPI / disk experiments (Tables 7-9).
    """
    base = generate_porto_like(num_trajectories=150, max_length=120, seed=101)
    rng = np.random.default_rng(5)
    shifted = []
    for traj in base:
        offset = int(rng.integers(0, 400))
        shifted.append(Trajectory(traj.traj_id, traj.points, traj.timestamps + offset))
    return TrajectoryDataset(shifted)


@pytest.fixture(scope="session")
def geolife_bench():
    """GeoLife-like benchmark workload (large extent, mixed speeds)."""
    return generate_geolife_like(num_trajectories=30, max_length=160, seed=202)


@pytest.fixture(scope="session")
def bench_queries(porto_bench):
    """Random (x, y, t) STRQ probes drawn from the Porto-like workload."""
    return make_queries(porto_bench, num_queries=150, seed=7)


def make_queries(dataset, num_queries: int, seed: int = 0):
    """Random (x, y, t, traj_id) probes located on true trajectory points."""
    rng = np.random.default_rng(seed)
    queries = []
    ids = dataset.trajectory_ids
    for _ in range(num_queries):
        tid = int(rng.choice(ids))
        traj = dataset.get(tid)
        t = int(rng.integers(0, len(traj)))
        x, y = traj.points[t]
        queries.append((float(x), float(y), int(t), tid))
    return queries


def print_table(title: str, header: list[str], rows: list[list], widths: list[int] | None = None):
    """Print one paper-style results table to stdout."""
    if widths is None:
        widths = [max(14, len(h) + 2) for h in header]
    line = "".join(f"{h:>{w}}" for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{width}.3f}")
            else:
                cells.append(f"{str(value):>{width}}")
        print("".join(cells))

"""Table 3 -- MAE against different lengths of trajectory path queries (TPQ).

The same trajectory IDs are queried for every method (the paper's fairness
protocol), their next ``l`` positions are reconstructed from each summary and
the MAE against the raw sub-trajectories is reported for l = 10..50.
Expected shape: MAE grows with the path length for every method; the PPQ
variants stay one to two orders of magnitude below Q-trajectory / residual /
product quantization; the CQC variants beat their ``-basic`` counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table
from benchmarks.harness import (
    ALL_METHODS,
    BASELINES,
    PPQ_VARIANTS,
    build_baseline,
    build_ppq_variant,
    matched_codeword_bits,
)
from repro.metrics.accuracy import path_mean_absolute_error

TPQ_LENGTHS = (10, 20, 30, 40, 50)


def _run(dataset, dataset_name, num_queries=60, t_max=80):
    rng = np.random.default_rng(13)
    ids = dataset.trajectory_ids
    queries = [(int(rng.choice(ids)), int(rng.integers(0, 20))) for _ in range(num_queries)]

    summaries = {}
    reference = None
    for method in PPQ_VARIANTS:
        summary, _ = build_ppq_variant(method, dataset, dataset_name=dataset_name, t_max=t_max)
        summaries[method] = summary
        if method == "PPQ-A":
            reference = summary
    bits = matched_codeword_bits(reference, dataset)
    for method in BASELINES:
        summaries[method] = build_baseline(method, dataset, bits=bits, t_max=t_max)

    rows = []
    for method in ALL_METHODS:
        row = [method]
        for length in TPQ_LENGTHS:
            row.append(path_mean_absolute_error(summaries[method], dataset, queries, length))
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_tpq_porto(benchmark, porto_bench):
    rows = benchmark.pedantic(lambda: _run(porto_bench, "porto"), rounds=1, iterations=1)
    print_table("Table 3 (Porto-like): TPQ MAE (m) vs path length",
                ["method"] + [f"l={length}" for length in TPQ_LENGTHS], rows,
                widths=[26, 12, 12, 12, 12, 12])
    by_method = {row[0]: row[1:] for row in rows}
    # MAE grows (or stays flat) with the query length for the error-bounded
    # methods.
    for method in ("PPQ-A", "PPQ-S", "E-PQ"):
        assert by_method[method][0] <= by_method[method][-1] * 1.5
    # PPQ stays far below the per-timestamp baselines at every length.
    for i in range(len(TPQ_LENGTHS)):
        assert by_method["PPQ-A"][i] < by_method["Q-trajectory"][i]
        assert by_method["PPQ-A"][i] < by_method["Product Quantization"][i]
        assert by_method["PPQ-A"][i] < by_method["Residual Quantization"][i]
    # CQC variants beat the basic variants.
    assert by_method["PPQ-A"][0] <= by_method["PPQ-A-basic"][0]
    assert by_method["PPQ-S"][0] <= by_method["PPQ-S-basic"][0]


@pytest.mark.benchmark(group="table3")
def test_table3_tpq_geolife(benchmark, geolife_bench):
    rows = benchmark.pedantic(lambda: _run(geolife_bench, "geolife", num_queries=40, t_max=60),
                              rounds=1, iterations=1)
    print_table("Table 3 (GeoLife-like): TPQ MAE (m) vs path length",
                ["method"] + [f"l={length}" for length in TPQ_LENGTHS], rows,
                widths=[26, 12, 12, 12, 12, 12])
    by_method = {row[0]: row[1:] for row in rows}
    for i in range(len(TPQ_LENGTHS)):
        assert by_method["PPQ-A"][i] < by_method["Q-trajectory"][i]

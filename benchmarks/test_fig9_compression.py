"""Figure 9 -- Compression ratio against the spatial deviation budget.

Every method summarises the same workload under the same deviation budget and
the compression ratio (raw size / summary size) is reported; the sub-Porto
panel additionally includes REST, which only works on highly repetitive data.
Expected shape: ratios grow with the deviation budget for every method; the
PPQ-basic variants reach the highest ratios (the CQC variants pay a small
overhead for the CQC codes); Q-trajectory / residual / product quantization
sit below PPQ; on sub-Porto the PPQ variants beat REST at tight deviations and
the gap narrows as the deviation grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from benchmarks.harness import BASELINES, build_baseline
from benchmarks.test_table5_build_time import PPQ_METHODS, build_with_deviation
from repro.baselines.rest import RESTCompressor
from repro.data.subporto import build_sub_porto
from repro.metrics.compression import compression_report
from repro.utils.geo import meters_to_degrees

DEVIATIONS_M = (200.0, 600.0, 1000.0)


def _run_main(dataset, dataset_name, t_max=60):
    rows = []
    for method in PPQ_METHODS + BASELINES:
        row = [method]
        for deviation in DEVIATIONS_M:
            summary, _ = build_with_deviation(method, dataset, deviation, dataset_name, t_max)
            row.append(compression_report(summary, method=method).compression_ratio)
        rows.append(row)
    return rows


def _run_subporto(dataset, t_max=60):
    split = build_sub_porto(dataset, num_base=40, variants_per_base=4,
                            compress_fraction=0.25, noise_std_m=10.0, seed=77)
    rows = []
    for method in ("PPQ-A", "PPQ-A-basic", "PPQ-S-basic", "Q-trajectory"):
        row = [method]
        for deviation in DEVIATIONS_M:
            if method in PPQ_METHODS:
                summary, _ = build_with_deviation(method, split.compress_set, deviation,
                                                  "porto", t_max)
            else:
                summary = build_baseline(method, split.compress_set,
                                         epsilon=meters_to_degrees(deviation), t_max=t_max)
            row.append(compression_report(summary, method=method).compression_ratio)
        rows.append(row)
    rest_row = ["REST"]
    for deviation in DEVIATIONS_M:
        compressor = RESTCompressor(split.reference_set, deviation=meters_to_degrees(deviation))
        rest_row.append(compressor.compress(split.compress_set).compression_ratio())
    rows.append(rest_row)
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_compression_porto(benchmark, porto_bench):
    rows = benchmark.pedantic(lambda: _run_main(porto_bench, "porto"), rounds=1, iterations=1)
    print_table("Figure 9a (Porto-like): compression ratio vs deviation",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 10, 10, 10])
    by_method = {row[0]: row[1:] for row in rows}
    # Ratios are non-decreasing in the deviation budget.
    for method, ratios in by_method.items():
        assert ratios[-1] >= ratios[0] * 0.8, method
    # The basic PPQ variants compress at least as well as the CQC variants
    # (which additionally store CQC codes), and PPQ beats the per-timestamp
    # quantizers.
    for i in range(len(DEVIATIONS_M)):
        assert by_method["PPQ-A-basic"][i] >= by_method["PPQ-A"][i] * 0.9
        assert by_method["PPQ-A-basic"][i] > by_method["Residual Quantization"][i]
        assert by_method["PPQ-S-basic"][i] > by_method["Product Quantization"][i]


@pytest.mark.benchmark(group="fig9")
def test_fig9_compression_geolife(benchmark, geolife_bench):
    rows = benchmark.pedantic(lambda: _run_main(geolife_bench, "geolife", t_max=50),
                              rounds=1, iterations=1)
    print_table("Figure 9b (GeoLife-like): compression ratio vs deviation",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 10, 10, 10])
    by_method = {row[0]: row[1:] for row in rows}
    for i in range(len(DEVIATIONS_M)):
        assert by_method["PPQ-A-basic"][i] > by_method["Residual Quantization"][i]


@pytest.mark.benchmark(group="fig9")
def test_fig9_compression_subporto(benchmark, porto_bench):
    rows = benchmark.pedantic(lambda: _run_subporto(porto_bench), rounds=1, iterations=1)
    print_table("Figure 9c (sub-Porto): compression ratio vs deviation (incl. REST)",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 10, 10, 10])
    by_method = {row[0]: row[1:] for row in rows}
    # At the tightest deviation the PPQ-basic variants are at least
    # competitive with REST (the paper reports a 2x advantage at full scale;
    # see EXPERIMENTS.md for why the factor shrinks at benchmark scale), and
    # REST's ratio improves as the deviation grows, narrowing the gap.
    assert by_method["PPQ-A-basic"][0] >= by_method["REST"][0] * 0.85
    assert by_method["REST"][-1] >= by_method["REST"][0]
    # PPQ still clearly beats the non-reference baseline on sub-Porto.
    assert by_method["PPQ-A-basic"][0] > by_method["Q-trajectory"][0]

"""Figure 8 -- Number of partitions q over time for different eps_p.

The incremental partitioner maintains the number of partitions q as the data
streams in; Figure 8 shows q(t) for several partition thresholds.  Expected
shape: q grows during an initial warm-up and then stabilises; at any time a
tighter eps_p maintains at least as many partitions as a looser one.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.config import CQCConfig, PPQConfig, PartitionCriterion
from repro.core.ppq import PartitionwisePredictiveQuantizer

EPS_P_SWEEP = {"PPQ-A": (0.005, 0.01, 0.05), "PPQ-S": (0.02, 0.1, 0.5)}
CRITERIA = {"PPQ-A": PartitionCriterion.AUTOCORRELATION, "PPQ-S": PartitionCriterion.SPATIAL}
CHECKPOINTS = (5, 15, 30, 59)


def _run(dataset, method, t_max=60):
    rows = []
    histories = {}
    for eps_p in EPS_P_SWEEP[method]:
        config = PPQConfig(epsilon_p=eps_p, criterion=CRITERIA[method])
        quantizer = PartitionwisePredictiveQuantizer(config, CQCConfig(enabled=False))
        quantizer.summarize(dataset, t_max=t_max)
        history = quantizer.partition_history
        histories[eps_p] = history
        row = [eps_p]
        for checkpoint in CHECKPOINTS:
            idx = min(checkpoint, len(history) - 1)
            row.append(history[idx])
        row.append(max(history))
        rows.append(row)
    return rows, histories


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("method", ["PPQ-A", "PPQ-S"])
def test_fig8_partition_count(benchmark, porto_bench, method):
    rows, histories = benchmark.pedantic(lambda: _run(porto_bench, method),
                                         rounds=1, iterations=1)
    print_table(f"Figure 8 ({method}, Porto-like): q over time per eps_p",
                ["eps_p"] + [f"t={c}" for c in CHECKPOINTS] + ["max q"], rows,
                widths=[10, 8, 8, 8, 8, 8])
    sweep = EPS_P_SWEEP[method]
    # Tighter thresholds maintain at least as many partitions (at the end).
    tight = histories[sweep[0]]
    loose = histories[sweep[-1]]
    assert tight[-1] >= loose[-1]
    # The partition count stabilises: the last quarter of the stream changes
    # q by at most a factor of two.
    last_quarter = tight[3 * len(tight) // 4:]
    assert max(last_quarter) <= 2 * max(1, min(last_quarter))

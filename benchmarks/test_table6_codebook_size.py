"""Table 6 -- Number of codewords against the spatial-deviation budget.

Same sweep as Table 5, reporting the total number of codewords each method
needs to meet the deviation budget.  Expected shape: codebook sizes shrink as
the budget grows; the PPQ variants need far fewer codewords than E-PQ, which
in turn needs fewer than Q-trajectory / residual / product quantization /
TrajStore (prediction narrows the range to be quantized; partition-wise
prediction narrows it further).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from benchmarks.harness import BASELINES
from benchmarks.test_table5_build_time import DEVIATIONS_M, PPQ_METHODS, build_with_deviation


def _run(dataset, dataset_name, t_max=60):
    rows = []
    for method in PPQ_METHODS + BASELINES:
        row = [method]
        for deviation in DEVIATIONS_M:
            summary, _seconds = build_with_deviation(method, dataset, deviation,
                                                     dataset_name, t_max)
            row.append(summary.num_codewords)
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table6")
def test_table6_codebook_size_porto(benchmark, porto_bench):
    rows = benchmark.pedantic(lambda: _run(porto_bench, "porto"), rounds=1, iterations=1)
    print_table("Table 6 (Porto-like): number of codewords vs deviation",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 12, 12, 12])
    by_method = {row[0]: row[1:] for row in rows}
    # Codebooks shrink (or stay equal) as the budget loosens.
    for method in by_method:
        assert by_method[method][-1] <= by_method[method][0]
    # Predictive codebooks are much smaller than non-predictive ones.
    for i in range(len(DEVIATIONS_M)):
        assert by_method["PPQ-A"][i] <= by_method["Q-trajectory"][i]
        assert by_method["PPQ-S"][i] <= by_method["TrajStore"][i]
        assert by_method["PPQ-A-basic"][i] <= by_method["Q-trajectory"][i]


@pytest.mark.benchmark(group="table6")
def test_table6_codebook_size_geolife(benchmark, geolife_bench):
    rows = benchmark.pedantic(lambda: _run(geolife_bench, "geolife", t_max=50),
                              rounds=1, iterations=1)
    print_table("Table 6 (GeoLife-like): number of codewords vs deviation",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 12, 12, 12])
    by_method = {row[0]: row[1:] for row in rows}
    for i in range(len(DEVIATIONS_M)):
        assert by_method["PPQ-A"][i] <= by_method["Q-trajectory"][i]

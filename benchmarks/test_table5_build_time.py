"""Table 5 -- Summary building time against the spatial-deviation budget.

Every method builds its summary under the same metre-denominated spatial
deviation (for the CQC variants the paper sets ``eps1 = 2 g_s`` so the final
deviation, ``sqrt(2)/2 g_s``, stays within the budget).  Expected shape:
building time decreases as the deviation budget grows (fewer refinement
iterations), and the PPQ variants build much faster than Q-trajectory /
residual quantization / product quantization / TrajStore because the
prediction step shrinks the dynamic range that has to be quantized.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from benchmarks.harness import BASELINES, build_baseline, build_ppq_variant
from repro.utils.geo import meters_to_degrees

DEVIATIONS_M = (200.0, 600.0, 1000.0)
PPQ_METHODS = ("PPQ-A", "PPQ-A-basic", "PPQ-S", "PPQ-S-basic", "E-PQ")


def build_with_deviation(method, dataset, deviation_m, dataset_name, t_max):
    """Build one summary under a metre-denominated deviation budget."""
    if method in PPQ_METHODS:
        if method.endswith("-basic") or method == "E-PQ":
            epsilon1 = meters_to_degrees(deviation_m)
            grid = meters_to_degrees(deviation_m)
        else:
            grid = meters_to_degrees(deviation_m)      # g_s = deviation
            epsilon1 = meters_to_degrees(2 * deviation_m)  # eps1 = 2 g_s
        start = time.perf_counter()
        summary, _ = build_ppq_variant(method, dataset, epsilon1=epsilon1, grid_size=grid,
                                       dataset_name=dataset_name, t_max=t_max)
        return summary, time.perf_counter() - start
    start = time.perf_counter()
    summary = build_baseline(method, dataset, epsilon=meters_to_degrees(deviation_m), t_max=t_max)
    return summary, time.perf_counter() - start


def _run(dataset, dataset_name, t_max=60):
    rows = []
    for method in PPQ_METHODS + BASELINES:
        row = [method]
        for deviation in DEVIATIONS_M:
            _summary, seconds = build_with_deviation(method, dataset, deviation,
                                                     dataset_name, t_max)
            row.append(seconds)
        rows.append(row)
    return rows


@pytest.mark.benchmark(group="table5")
def test_table5_build_time_porto(benchmark, porto_bench):
    rows = benchmark.pedantic(lambda: _run(porto_bench, "porto"), rounds=1, iterations=1)
    print_table("Table 5 (Porto-like): summary building time (s) vs deviation",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 12, 12, 12])
    by_method = {row[0]: row[1:] for row in rows}
    # Building time does not increase as the budget loosens (within noise).
    for method in ("Q-trajectory", "PPQ-A", "PPQ-S"):
        assert by_method[method][-1] <= by_method[method][0] * 1.6
    # PPQ builds faster than the non-predictive alternatives at the tightest
    # deviation, where quantization work dominates.
    assert by_method["PPQ-A"][0] < by_method["Q-trajectory"][0]
    assert by_method["PPQ-S"][0] < by_method["TrajStore"][0]


@pytest.mark.benchmark(group="table5")
def test_table5_build_time_geolife(benchmark, geolife_bench):
    rows = benchmark.pedantic(lambda: _run(geolife_bench, "geolife", t_max=50),
                              rounds=1, iterations=1)
    print_table("Table 5 (GeoLife-like): summary building time (s) vs deviation",
                ["method"] + [f"{int(d)}m" for d in DEVIATIONS_M], rows,
                widths=[26, 12, 12, 12])
    by_method = {row[0]: row[1:] for row in rows}
    assert by_method["PPQ-A"][0] < by_method["Q-trajectory"][0]

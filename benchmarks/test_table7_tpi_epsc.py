"""Table 7 -- TPI statistics against the TRD dropping-rate threshold eps_c.

The temporal partition-based index is built over the raw workload for a range
of ``eps_c`` values (with ``eps_d`` fixed), reporting the index size, the
building time, the number of time periods and the number of insertions.
Expected shape: a larger ``eps_c`` tolerates bigger per-rectangle density
drops before they count towards the ADR, so fewer re-builds happen -- the
number of periods falls, more updates are handled as insertions and the index
gets smaller / cheaper to build.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.config import IndexConfig
from repro.index.tpi import TemporalPartitionIndex

EPS_C_VALUES = (0.2, 0.4, 0.6, 0.8)


def _run(dataset, t_max=None):
    rows = []
    for eps_c in EPS_C_VALUES:
        config = IndexConfig(epsilon_c=eps_c, epsilon_d=0.5)
        tpi = TemporalPartitionIndex(config).build(dataset, t_max=t_max)
        rows.append([
            eps_c,
            tpi.storage_megabytes(),
            tpi.stats.build_seconds,
            tpi.num_periods,
            tpi.stats.num_insertions,
        ])
    return rows


@pytest.mark.benchmark(group="table7")
def test_table7_tpi_eps_c(benchmark, porto_staggered_bench):
    rows = benchmark.pedantic(lambda: _run(porto_staggered_bench), rounds=1, iterations=1)
    print_table("Table 7: TPI statistics vs eps_c (Porto-like)",
                ["eps_c", "size (MB)", "time (s)", "periods", "insertions"], rows,
                widths=[10, 14, 12, 10, 12])
    periods = [row[3] for row in rows]
    # Loosening eps_c must not increase the number of re-built periods.
    assert periods[-1] <= periods[0]
    # All sweeps index the same data, so sizes stay positive and bounded.
    assert all(row[1] > 0 for row in rows)

"""Figure 7 -- Temporal-partitioning running time against eps_p.

The incremental temporal partitioning (Section 3.2.2) is the component that
keeps the partition sets N^t up to date; Figure 7 reports its running time for
different partition thresholds.  Expected shape: running time falls as eps_p
grows, because fewer partitions are produced and fewer re-splits are needed.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.config import PartitionCriterion

#: eps_p sweeps per variant, matching the x-axes of Figure 7.
SWEEPS = {
    ("PPQ-A", "porto"): (0.01, 0.03, 0.05),
    ("PPQ-S", "porto"): (0.1, 0.3, 0.5),
    ("PPQ-A", "geolife"): (0.01, 0.03, 0.05),
    ("PPQ-S", "geolife"): (1.0, 3.0, 5.0),
}


def _run(dataset, dataset_name, method, t_max=60):
    from repro.core.config import CQCConfig, PPQConfig
    from repro.core.ppq import PartitionwisePredictiveQuantizer

    criterion = (PartitionCriterion.AUTOCORRELATION if method == "PPQ-A"
                 else PartitionCriterion.SPATIAL)
    rows = []
    for eps_p in SWEEPS[(method, dataset_name)]:
        config = PPQConfig(epsilon_p=eps_p, criterion=criterion)
        quantizer = PartitionwisePredictiveQuantizer(config, CQCConfig(enabled=False))
        quantizer.summarize(dataset, t_max=t_max)
        rows.append([eps_p, quantizer.timings["partitioning"],
                     max(quantizer.partition_history)])
    return rows


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("method", ["PPQ-A", "PPQ-S"])
def test_fig7_partition_time_porto(benchmark, porto_bench, method):
    rows = benchmark.pedantic(lambda: _run(porto_bench, "porto", method),
                              rounds=1, iterations=1)
    print_table(f"Figure 7 ({method}, Porto-like): partitioning time vs eps_p",
                ["eps_p", "time (s)", "max q"], rows, widths=[10, 14, 10])
    times = [row[1] for row in rows]
    # Looser thresholds never cost (much) more partitioning time.
    assert times[-1] <= times[0] * 1.5


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("method", ["PPQ-A", "PPQ-S"])
def test_fig7_partition_time_geolife(benchmark, geolife_bench, method):
    rows = benchmark.pedantic(lambda: _run(geolife_bench, "geolife", method, t_max=50),
                              rounds=1, iterations=1)
    print_table(f"Figure 7 ({method}, GeoLife-like): partitioning time vs eps_p",
                ["eps_p", "time (s)", "max q"], rows, widths=[10, 14, 10])
    counts = [row[2] for row in rows]
    assert counts[-1] <= counts[0]

"""Scaling benchmark for the multiprocess batch-serving layer.

Not a table of the paper: this benchmark covers the parallel serving
subsystem built on top of the reproduction.  A mixed STRQ/TPQ workload is
answered once through the in-process ``run_batch`` path (``jobs=1``) and
once through a warmed :class:`~repro.parallel.ParallelExecutor`; the
parallel path must produce identical answers at ``PARALLEL_SPEEDUP_FLOOR``
(default 1.7x) the throughput with ``PARALLEL_BENCH_JOBS`` (default 4)
workers.

The comparison only makes sense when the workers can actually run in
parallel, so the speedup assertion is skipped when the process has fewer
usable CPUs than workers (the identity check still runs).  CI smoke mode
(``PARALLEL_BENCH_SMOKE=1``) drops to 2 workers and a smaller workload and
relaxes the floor through the environment -- there the benchmark is an
import/API-rot canary, not a performance gate, because shared runners give
no scheduling guarantees.

The pool is warmed (workers started, artifact loaded) before timing: worker
startup is a one-time cost a long-running serving fleet amortises away.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.conftest import make_queries, print_table
from repro.core.pipeline import PPQTrajectory
from repro.parallel import ParallelExecutor
from repro.queries.batch import QuerySpec

SMOKE = os.environ.get("PARALLEL_BENCH_SMOKE", "") == "1"
JOBS = int(os.environ.get("PARALLEL_BENCH_JOBS", "2" if SMOKE else "4"))
NUM_QUERIES = 120 if SMOKE else 400
# >= 1.7x at 4 workers is the acceptance criterion on a quiet multi-core
# machine; CI smoke mode relaxes the floor through the environment because
# shared runners give no scheduling guarantees.
MIN_SPEEDUP = float(os.environ.get("PARALLEL_SPEEDUP_FLOOR", "1.7"))


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def saved_system(porto_bench, tmp_path_factory):
    """A fitted system and its saved artifact (what the workers load)."""
    system = PPQTrajectory.ppq_s().fit(porto_bench)
    path = tmp_path_factory.mktemp("parallel-bench") / "model.ppq"
    system.save(path)
    return system, path


@pytest.fixture(scope="module")
def workload(porto_bench):
    specs = []
    for i, (x, y, t, _tid) in enumerate(make_queries(porto_bench, NUM_QUERIES,
                                                     seed=23)):
        kind = ("strq", "tpq")[i % 2]
        specs.append(QuerySpec(kind=kind, x=x, y=y, t=t,
                               length=8 if kind == "tpq" else 0))
    return specs


def _assert_identical(want, got):
    assert len(want) == len(got)
    for a, b in zip(want, got):
        assert type(a) is type(b)
        if hasattr(a, "paths"):
            assert set(a.paths) == set(b.paths)
            for tid in a.paths:
                assert np.array_equal(a.paths[tid], b.paths[tid])
        else:
            assert a.candidates == b.candidates


def test_parallel_scaling_meets_speedup_floor(saved_system, workload):
    """jobs=N workers: identical answers, >= the configured speedup floor."""
    system, path = saved_system
    engine = system.engine

    engine.run_batch(workload)  # warm lazy decode tables + caches
    start = time.perf_counter()
    sequential_results = engine.run_batch(workload)
    sequential_s = time.perf_counter() - start

    with ParallelExecutor(path, jobs=JOBS) as pool:
        pool.warm()
        pool.run(workload)  # warm the workers' own decode tables + caches
        start = time.perf_counter()
        parallel_results = pool.run(workload)
        parallel_s = time.perf_counter() - start

    _assert_identical(sequential_results, parallel_results)

    speedup = sequential_s / parallel_s
    print_table(
        f"Parallel serving throughput ({NUM_QUERIES} queries)",
        ["mode", "time (ms)", "queries/s"],
        [
            ["in-process (jobs=1)", sequential_s * 1000,
             NUM_QUERIES / sequential_s],
            [f"{JOBS} workers", parallel_s * 1000, NUM_QUERIES / parallel_s],
            ["speedup", speedup, ""],
        ],
    )
    if _usable_cpus() < JOBS:
        pytest.skip(f"only {_usable_cpus()} usable CPU(s) for {JOBS} workers; "
                    "answers verified identical, speedup not assertable")
    assert speedup >= MIN_SPEEDUP, (
        f"{JOBS} workers only {speedup:.2f}x faster than in-process serving "
        f"(floor is {MIN_SPEEDUP}x)"
    )

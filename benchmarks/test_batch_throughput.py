"""Batched vs. per-query throughput of the query subsystem.

Not a table of the paper: this benchmark covers the batch query subsystem
built on top of the reproduction.  A 200-query STRQ workload (the size used
by the Table 2 protocol) is answered once through the scalar functions in a
Python loop and once through :func:`repro.queries.batch.batch_strq`; the
batched path must produce identical answers at >= 3x the throughput.  A
mixed STRQ/TPQ/exact workload through :meth:`QueryEngine.run_batch` is
reported alongside.

Both paths are warmed once before timing so the comparison measures
steady-state serving cost (lazy posting-list decode tables and
reconstruction caches are one-time costs a long-running service amortises
away).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import make_queries, print_table
from repro.core.config import CQCConfig, IndexConfig
from repro.core.pipeline import PPQTrajectory
from repro.queries.batch import QuerySpec, batch_strq
from repro.queries.strq import spatio_temporal_range_query

NUM_QUERIES = 200
# The >= 3x floor is the acceptance criterion on a quiet machine; shared CI
# runners use this benchmark as an import/API-rot canary and relax the floor
# through the environment to keep wall-clock noise from failing builds.
MIN_SPEEDUP = float(os.environ.get("BATCH_SPEEDUP_FLOOR", "3.0"))


@pytest.fixture(scope="module")
def fitted_system(porto_bench) -> PPQTrajectory:
    """PPQ-S system (CQC + TPI) fitted on the Porto-like benchmark workload."""
    system = PPQTrajectory.ppq_s(cqc_config=CQCConfig(), index_config=IndexConfig())
    system.fit(porto_bench)
    return system


def _strq_queries(dataset) -> list[tuple[float, float, int]]:
    return [(x, y, t) for x, y, t, _tid in
            make_queries(dataset, num_queries=NUM_QUERIES, seed=7)]


def test_batched_strq_meets_speedup_floor(fitted_system, porto_bench):
    """Batched STRQ: identical answers, >= 3x queries/sec vs. the loop."""
    engine = fitted_system.engine
    queries = _strq_queries(porto_bench)
    radius = engine.local_search_radius

    def sequential():
        return [
            spatio_temporal_range_query(
                engine.index, x, y, t, summary=engine.summary, local_search_radius=radius
            )
            for x, y, t in queries
        ]

    def batched():
        return batch_strq(
            engine.index, queries, summary=engine.summary, local_search_radius=radius
        )

    sequential(), batched()  # warm lazy decode tables + caches

    start = time.perf_counter()
    sequential_results = sequential()
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_results = batched()
    batched_s = time.perf_counter() - start

    for scalar, batch in zip(sequential_results, batched_results):
        assert scalar.candidates == batch.candidates
        assert set(scalar.reconstructed) == set(batch.reconstructed)
        for tid in scalar.reconstructed:
            assert scalar.reconstructed[tid].tobytes() == batch.reconstructed[tid].tobytes()

    speedup = sequential_s / batched_s
    print_table(
        f"Batched STRQ throughput ({NUM_QUERIES} queries)",
        ["mode", "time (ms)", "queries/s"],
        [
            ["per-query loop", sequential_s * 1000, NUM_QUERIES / sequential_s],
            ["batched", batched_s * 1000, NUM_QUERIES / batched_s],
            ["speedup", speedup, ""],
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched STRQ only {speedup:.2f}x faster than the per-query loop "
        f"(floor is {MIN_SPEEDUP}x)"
    )


def test_mixed_workload_run_batch(fitted_system, porto_bench):
    """Mixed STRQ/TPQ/exact workload through run_batch: faster, same answers."""
    engine = fitted_system.engine
    kinds = ["strq", "strq", "tpq", "exact"]
    specs = []
    for i, (x, y, t, _tid) in enumerate(make_queries(porto_bench, NUM_QUERIES, seed=13)):
        kind = kinds[i % len(kinds)]
        specs.append(QuerySpec(kind=kind, x=x, y=y, t=t,
                               length=10 if kind == "tpq" else 0))

    def sequential():
        results = []
        for spec in specs:
            if spec.kind == "strq":
                results.append(fitted_system.strq(spec.x, spec.y, spec.t))
            elif spec.kind == "tpq":
                results.append(fitted_system.tpq(spec.x, spec.y, spec.t, length=spec.length))
            else:
                results.append(fitted_system.exact(spec.x, spec.y, spec.t))
        return results

    sequential(), engine.run_batch(specs)  # warm

    start = time.perf_counter()
    sequential_results = sequential()
    sequential_s = time.perf_counter() - start
    start = time.perf_counter()
    batched_results = engine.run_batch(specs)
    batched_s = time.perf_counter() - start

    assert len(batched_results) == len(specs)
    for spec, scalar, batch in zip(specs, sequential_results, batched_results):
        assert type(scalar) is type(batch)
        if spec.kind == "strq":
            assert scalar.candidates == batch.candidates
        elif spec.kind == "tpq":
            assert set(scalar.paths) == set(batch.paths)
        else:
            assert scalar.matches == batch.matches

    cache = engine.summary.slice_cache.stats()
    print_table(
        f"Mixed workload throughput ({NUM_QUERIES} queries)",
        ["mode", "time (ms)", "queries/s"],
        [
            ["per-query loop", sequential_s * 1000, NUM_QUERIES / sequential_s],
            ["run_batch", batched_s * 1000, NUM_QUERIES / batched_s],
            ["speedup", sequential_s / batched_s, ""],
        ],
    )
    print(f"slice cache: {cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions")
    # The batched path must never be slower in steady state (CI runners get
    # the same noise tolerance as the STRQ floor).
    tolerance = float(os.environ.get("BATCH_SLOWDOWN_TOLERANCE", "1.0"))
    assert batched_s < sequential_s * tolerance

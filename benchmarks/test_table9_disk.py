"""Table 9 -- Disk-based index performance: TPI vs PI vs TrajStore.

The raw workload (staggered taxi trips, as in the real Porto data) is laid out
on simulated fixed-size pages under the three organisations and the same
sorted batch of spatio-temporal queries is run against each, reporting index
size, page I/Os, query response time and index building time.

Expected shape (paper): the per-timestamp PI answers with the fewest I/Os but
is the most expensive organisation to maintain (one partition index per
timestamp -- largest index, most builds); TPI needs somewhat more I/Os per
query (a whole period's pages) but far fewer index builds; TrajStore needs
the most I/Os because a spatial cell mixes the points of *all* timestamps and
every page of the cell must be read for a single spatio-temporal query.

Scale adaptation: the paper uses 1 MB pages over 74M points; at benchmark
scale we use 4 KB pages and eps_d = 0.5 so that periods, timestamps and
TrajStore cells all span a comparable handful of pages (the quantity being
compared is how many of those pages a query must touch).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import make_queries, print_table
from repro.baselines.trajstore import TrajStore
from repro.core.config import IndexConfig
from repro.index.disk import DiskBackedIndex
from repro.index.rectangles import Rect

PAGE_SIZE = 4 * 1024
TRAJSTORE_CELL_CAPACITY = 2048


def _build_trajstore(dataset):
    min_x, min_y, max_x, max_y = dataset.bounding_box()
    pad = 1e-9
    store = TrajStore(Rect(min_x - pad, min_y - pad, max_x + pad, max_y + pad),
                      cell_capacity=TRAJSTORE_CELL_CAPACITY, page_size_bytes=PAGE_SIZE)
    start = time.perf_counter()
    for slice_ in dataset.iter_time_slices():
        if len(slice_):
            store.insert_slice(slice_.t, slice_.traj_ids, slice_.points)
    store.layout_on_pages()
    return store, time.perf_counter() - start


def _run(dataset, num_queries=120):
    queries = sorted(make_queries(dataset, num_queries=num_queries, seed=31),
                     key=lambda q: q[2])
    config = IndexConfig(epsilon_d=0.5, epsilon_c=0.5, page_size_bytes=PAGE_SIZE)
    rows = []

    tpi = DiskBackedIndex(config, per_timestamp=False).build(dataset)
    start = time.perf_counter()
    for x, y, t, _tid in queries:
        tpi.query(x, y, t)
    rows.append(["TPI", tpi.index_size_megabytes(), tpi.num_ios,
                 time.perf_counter() - start, tpi.build_seconds,
                 tpi.tpi.num_periods])

    pi = DiskBackedIndex(config, per_timestamp=True).build(dataset)
    start = time.perf_counter()
    for x, y, t, _tid in queries:
        pi.query(x, y, t)
    rows.append(["PI", pi.index_size_megabytes(), pi.num_ios,
                 time.perf_counter() - start, pi.build_seconds,
                 pi.tpi.num_periods])

    trajstore, ts_build = _build_trajstore(dataset)
    start = time.perf_counter()
    for x, y, t, _tid in queries:
        trajstore.query(x, y, t)
    rows.append(["TrajStore", trajstore.index_size_megabytes(), trajstore.num_ios,
                 time.perf_counter() - start, ts_build,
                 len([c for c in trajstore.leaves() if c.num_points])])
    return rows


@pytest.mark.benchmark(group="table9")
def test_table9_disk_porto(benchmark, porto_staggered_bench):
    rows = benchmark.pedantic(lambda: _run(porto_staggered_bench), rounds=1, iterations=1)
    print_table("Table 9: disk-based index performance (staggered Porto-like)",
                ["method", "index (MB)", "I/Os", "response (s)", "build (s)", "units"],
                rows, widths=[12, 14, 10, 14, 12, 8])
    by_method = {row[0]: row for row in rows}
    # PI answers each query touching only that timestamp's pages.
    assert by_method["PI"][2] <= by_method["TPI"][2]
    # TrajStore pays the most I/O: a spatial cell holds points of every
    # timestamp, all of which must be read for one spatio-temporal query.
    assert by_method["TrajStore"][2] > by_method["TPI"][2]
    # The per-timestamp organisation maintains far more partition indexes
    # (one per timestamp) than the TPI does periods.
    assert by_method["PI"][5] > by_method["TPI"][5]

"""Table 4 -- Average ratio of trajectories visited (and MAE) vs codebook size.

The summary is used as an index for exact-match queries: after pruning, only a
candidate set of trajectories is accessed against the raw data.  The paper
varies the per-timestamp codebook size from 5 to 9 bits and reports the
average fraction of trajectories visited together with the summary MAE.
Expected shape: the PPQ variants' visited ratio is small and essentially flat
in the codebook size (their filtering power comes from CQC, not from the
codebook), while the baselines' ratios start high and shrink as the codebook
grows; baseline MAE drops steeply with more bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import make_queries, print_table
from benchmarks.harness import build_baseline, build_index_over, build_ppq_variant
from repro.core.config import IndexConfig
from repro.cqc.local_search import search_radius
from repro.metrics.accuracy import mean_absolute_error
from repro.queries.exact import exact_match_query

BIT_SIZES = (5, 6, 7, 8, 9)
METHODS = ("PPQ-A", "PPQ-S", "Q-trajectory", "Residual Quantization", "Product Quantization")


def _visited_ratio(summary, dataset, queries, index_config):
    """Average fraction of active trajectories accessed per exact query."""
    index = build_index_over(summary, index_config)
    ratios = []
    if getattr(summary, "cqc_coder", None) is not None:
        for x, y, t, _tid in queries:
            result = exact_match_query(index, summary, dataset, x, y, t,
                                       cell_size=index_config.grid_cell)
            ratios.append(result.visited_ratio)
    else:
        radius = search_radius(index_config.grid_cell)
        for x, y, t, _tid in queries:
            candidates = index.lookup_local(x, y, t, radius=radius)
            active = len(dataset.time_slice(t))
            ratios.append(len(candidates) / active if active else 0.0)
    return float(np.mean(ratios)) if ratios else float("nan")


def _run(dataset, dataset_name, num_queries=50, t_max=50):
    index_config = IndexConfig()
    truncated = dataset.truncate(t_max)
    queries = make_queries(truncated, num_queries=num_queries, seed=23)
    ratio_rows, mae_rows = [], []
    for method in METHODS:
        ratio_row, mae_row = [method], [method]
        for bits in BIT_SIZES:
            if method.startswith("PPQ"):
                # The PPQ variants do not take a bit budget: their codebook is
                # determined by eps1; the sweep only affects the baselines
                # (the paper observes the same flat behaviour).
                summary, _ = build_ppq_variant(method, dataset,
                                               dataset_name=dataset_name, t_max=t_max)
            else:
                summary = build_baseline(method, dataset, bits=bits, t_max=t_max)
            ratio_row.append(_visited_ratio(summary, truncated, queries, index_config))
            mae_row.append(mean_absolute_error(summary, dataset, t_max=t_max))
        ratio_rows.append(ratio_row)
        mae_rows.append(mae_row)
    return ratio_rows, mae_rows


@pytest.mark.benchmark(group="table4")
def test_table4_exact_filter_porto(benchmark, porto_bench):
    small = porto_bench.restrict(porto_bench.trajectory_ids[:50])
    ratio_rows, mae_rows = benchmark.pedantic(lambda: _run(small, "porto"),
                                              rounds=1, iterations=1)
    header = ["method"] + [f"{bits}bits" for bits in BIT_SIZES]
    print_table("Table 4 (Porto-like): avg ratio of trajectories visited",
                header, ratio_rows, widths=[26, 10, 10, 10, 10, 10])
    print_table("Table 4 (Porto-like): MAE (m)", header, mae_rows,
                widths=[26, 10, 10, 10, 10, 10])

    ratios = {row[0]: row[1:] for row in ratio_rows}
    maes = {row[0]: row[1:] for row in mae_rows}
    # PPQ's visited ratio is flat across codebook sizes (same summary).
    assert max(ratios["PPQ-A"]) - min(ratios["PPQ-A"]) < 1e-9
    assert max(ratios["PPQ-S"]) - min(ratios["PPQ-S"]) < 1e-9
    # PPQ visits at most as many trajectories as the weakest baseline setting.
    assert np.mean(ratios["PPQ-A"]) <= max(ratios["Q-trajectory"]) + 1e-9
    # Baseline MAE decreases as the codebook grows.
    assert maes["Q-trajectory"][-1] <= maes["Q-trajectory"][0]
    assert maes["Product Quantization"][-1] <= maes["Product Quantization"][0]
    # PPQ MAE stays below every baseline MAE at 5 bits.
    assert maes["PPQ-A"][0] < maes["Q-trajectory"][0]

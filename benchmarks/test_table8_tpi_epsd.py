"""Table 8 -- TPI statistics against the ADR threshold eps_d.

Same protocol as Table 7 but sweeping ``eps_d`` (the average-dropping-rate
threshold that decides re-build vs insertion) with ``eps_c`` fixed.
Expected shape: a larger ``eps_d`` lets one PI serve more timestamps, so the
number of periods drops, building gets cheaper and the index smaller, while
the number of insertions grows (uncovered points keep being appended to the
long-lived PI instead of triggering re-builds).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.config import IndexConfig
from repro.index.tpi import TemporalPartitionIndex

EPS_D_VALUES = (0.2, 0.4, 0.6, 0.8)


def _run(dataset, t_max=None):
    rows = []
    for eps_d in EPS_D_VALUES:
        config = IndexConfig(epsilon_c=0.5, epsilon_d=eps_d)
        tpi = TemporalPartitionIndex(config).build(dataset, t_max=t_max)
        rows.append([
            eps_d,
            tpi.storage_megabytes(),
            tpi.stats.build_seconds,
            tpi.num_periods,
            tpi.stats.num_insertions,
        ])
    return rows


@pytest.mark.benchmark(group="table8")
def test_table8_tpi_eps_d(benchmark, porto_staggered_bench):
    rows = benchmark.pedantic(lambda: _run(porto_staggered_bench), rounds=1, iterations=1)
    print_table("Table 8: TPI statistics vs eps_d (Porto-like)",
                ["eps_d", "size (MB)", "time (s)", "periods", "insertions"], rows,
                widths=[10, 14, 12, 10, 12])
    periods = [row[3] for row in rows]
    # A looser eps_d lets one PI serve more timestamps, so the number of
    # periods falls monotonically along the sweep.  (The paper additionally
    # observes a mildly shrinking index and a growing insertion count; at
    # synthetic scale those secondary trends do not reproduce -- see
    # EXPERIMENTS.md.)
    assert periods[-1] <= periods[0]
    assert all(a >= b for a, b in zip(periods, periods[1:]))

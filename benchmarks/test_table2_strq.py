"""Table 2 -- Quality of summaries and STRQ evaluation.

For every method and both workloads the harness reports the summary MAE (in
metres) and the precision/recall of spatio-temporal range queries, matching
the rows of Table 2.  Expected shape (paper): the PPQ variants have MAE one to
two orders of magnitude below Q-trajectory / residual quantization / product
quantization for the same codeword budget; the CQC variants (PPQ-A, PPQ-S)
reach precision = recall = 1 via local search + verification; TrajStore sits
in between.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import make_queries, print_table
from benchmarks.harness import (
    ALL_METHODS,
    BASELINES,
    PPQ_VARIANTS,
    build_baseline,
    build_index_over,
    build_ppq_variant,
    evaluate_strq,
    matched_codeword_bits,
)
from repro.core.config import IndexConfig
from repro.metrics.accuracy import mean_absolute_error


def _run_dataset(dataset, dataset_name, num_queries=80, t_max=60):
    index_config = IndexConfig()
    queries = make_queries(dataset.truncate(t_max), num_queries=num_queries, seed=11)
    rows = []

    reference_summary = None
    summaries = {}
    for method in PPQ_VARIANTS:
        summary, _ = build_ppq_variant(method, dataset, dataset_name=dataset_name, t_max=t_max)
        summaries[method] = summary
        if method == "PPQ-A":
            reference_summary = summary

    bits = matched_codeword_bits(reference_summary, dataset)
    for method in BASELINES:
        summaries[method] = build_baseline(method, dataset, bits=bits, t_max=t_max)

    for method in ALL_METHODS:
        summary = summaries[method]
        index = build_index_over(summary, index_config)
        use_local = method in ("PPQ-A", "PPQ-S")
        precision, recall = evaluate_strq(summary, index, dataset, queries,
                                          index_config, use_local_search=use_local)
        mae = mean_absolute_error(summary, dataset, t_max=t_max)
        rows.append([method, mae, precision, recall])
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_strq_porto(benchmark, porto_bench):
    rows = benchmark.pedantic(lambda: _run_dataset(porto_bench, "porto"),
                              rounds=1, iterations=1)
    print_table("Table 2 (Porto-like): summary quality and STRQ",
                ["method", "MAE (m)", "precision", "recall"], rows,
                widths=[26, 14, 12, 10])
    by_method = {row[0]: row for row in rows}
    # Shape checks from the paper: PPQ variants beat the per-timestamp
    # baselines on MAE, and the CQC variants answer STRQ exactly.
    assert by_method["PPQ-A"][1] < by_method["Product Quantization"][1]
    assert by_method["PPQ-A"][1] < by_method["Q-trajectory"][1]
    assert by_method["PPQ-S"][1] < by_method["Residual Quantization"][1]
    assert by_method["PPQ-A"][2] == pytest.approx(1.0)
    assert by_method["PPQ-A"][3] == pytest.approx(1.0)
    assert by_method["PPQ-S"][2] == pytest.approx(1.0)
    assert by_method["PPQ-S"][3] == pytest.approx(1.0)
    # CQC reduces the MAE of the basic variants.
    assert by_method["PPQ-A"][1] <= by_method["PPQ-A-basic"][1]
    assert by_method["PPQ-S"][1] <= by_method["PPQ-S-basic"][1]


@pytest.mark.benchmark(group="table2")
def test_table2_strq_geolife(benchmark, geolife_bench):
    rows = benchmark.pedantic(lambda: _run_dataset(geolife_bench, "geolife",
                                                   num_queries=60, t_max=50),
                              rounds=1, iterations=1)
    print_table("Table 2 (GeoLife-like): summary quality and STRQ",
                ["method", "MAE (m)", "precision", "recall"], rows,
                widths=[26, 14, 12, 10])
    by_method = {row[0]: row for row in rows}
    # On the large-extent workload the non-predictive quantizers blow up.
    assert by_method["PPQ-A"][1] < by_method["Q-trajectory"][1] / 5.0
    assert by_method["PPQ-A"][1] < by_method["Product Quantization"][1]
    assert by_method["PPQ-A"][2] == pytest.approx(1.0)
    assert by_method["PPQ-A"][3] == pytest.approx(1.0)

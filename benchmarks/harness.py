"""Method builders and evaluation helpers shared by the benchmark modules.

The benchmark protocol mirrors Section 6 of the paper:

* the PPQ variants (PPQ-A, PPQ-S, their ``-basic`` versions and E-PQ) are
  built with the paper's default parameters;
* the per-timestamp baselines (product quantization, residual quantization,
  Q-trajectory, TrajStore) receive a per-timestamp codeword budget derived
  from PPQ-A's total codebook size, so that "the same number of codewords is
  given to trajectory points at the same time across all methods"
  (Section 6.2.1);
* STRQ accuracy is measured against the ground truth of Definition 5.2 (the
  trajectories sharing the query point's ``g_c`` cell), with the CQC variants
  additionally applying the local-search + verification refinement of
  Section 5.2, as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    ProductQuantizationSummarizer,
    QTrajectorySummarizer,
    ResidualQuantizationSummarizer,
    TrajStoreSummarizer,
)
from repro.core.config import CQCConfig, IndexConfig, PPQConfig, PartitionCriterion
from repro.core.epq import ErrorBoundedPredictiveQuantizer
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.cqc.local_search import search_radius
from repro.index.tpi import TemporalPartitionIndex
from repro.metrics.accuracy import aggregate_precision_recall, precision_recall
from repro.queries.exact import ground_truth_cell_members
from repro.utils.geo import meters_to_degrees


PPQ_VARIANTS = ("PPQ-A", "PPQ-A-basic", "PPQ-S", "PPQ-S-basic", "E-PQ")
BASELINES = ("Q-trajectory", "Residual Quantization", "Product Quantization", "TrajStore")
ALL_METHODS = PPQ_VARIANTS + BASELINES


def ppq_config_for(method: str, epsilon1: float = 0.001, dataset_name: str = "porto") -> PPQConfig:
    """Paper-default PPQ configuration for one of the PPQ variants."""
    if method.startswith("PPQ-A"):
        return PPQConfig(epsilon1=epsilon1, epsilon_p=0.01,
                         criterion=PartitionCriterion.AUTOCORRELATION)
    spatial_eps_p = 5.0 if dataset_name == "geolife" else 0.1
    return PPQConfig(epsilon1=epsilon1, epsilon_p=spatial_eps_p,
                     criterion=PartitionCriterion.SPATIAL)


def build_ppq_variant(method: str, dataset, epsilon1: float = 0.001,
                      grid_size: float | None = None, dataset_name: str = "porto",
                      t_max: int | None = None):
    """Build one PPQ-family summary; returns (summary, quantizer)."""
    if grid_size is None:
        grid_size = meters_to_degrees(50.0)
    use_cqc = not method.endswith("-basic") and method != "E-PQ"
    cqc = CQCConfig(grid_size=grid_size, enabled=use_cqc)
    config = ppq_config_for(method, epsilon1=epsilon1, dataset_name=dataset_name)
    if method == "E-PQ":
        quantizer = ErrorBoundedPredictiveQuantizer(config, cqc)
    else:
        quantizer = PartitionwisePredictiveQuantizer(config, cqc)
    summary = quantizer.summarize(dataset, t_max=t_max)
    return summary, quantizer


def build_baseline(method: str, dataset, bits: int | None = None,
                   epsilon: float | None = None, t_max: int | None = None):
    """Build one baseline summary in fixed-bits or error-bounded mode."""
    if method == "Q-trajectory":
        summarizer = QTrajectorySummarizer(bits=bits, epsilon=epsilon)
    elif method == "Residual Quantization":
        summarizer = ResidualQuantizationSummarizer(bits=bits, epsilon=epsilon)
    elif method == "Product Quantization":
        summarizer = ProductQuantizationSummarizer(bits=max(bits, 2) if bits else None,
                                                   epsilon=epsilon)
    elif method == "TrajStore":
        summarizer = TrajStoreSummarizer(bits=bits, epsilon=epsilon, cell_capacity=256)
    else:
        raise ValueError(f"unknown baseline {method!r}")
    return summarizer.summarize(dataset, t_max=t_max)


def matched_codeword_bits(reference_summary, dataset) -> int:
    """Per-timestamp bit budget matching PPQ's total codebook size.

    PPQ shares one codebook across the whole stream while the baselines learn
    an independent codebook per timestamp, so "the same number of codewords"
    (Section 6.2.1) is matched in total: each timestamp's baseline codebook
    gets roughly ``V_ppq / T`` codewords, expressed as a bit budget.
    """
    num_timestamps = max(1, len(reference_summary.records))
    per_timestamp = max(2.0, reference_summary.num_codewords / num_timestamps)
    return max(2, int(np.ceil(np.log2(per_timestamp))))


def build_index_over(summary_like,
                     index_config: IndexConfig | None = None) -> TemporalPartitionIndex:
    """Build a TPI over the reconstructed points of any summary."""
    index_config = index_config or IndexConfig()
    if hasattr(summary_like, "to_dataset"):
        reconstructed = summary_like.to_dataset()
    else:
        from repro.queries.engine import QueryEngine

        return QueryEngine(summary_like, index_config).index
    tpi = TemporalPartitionIndex(index_config)
    tpi.build(reconstructed)
    return tpi


def evaluate_strq(summary_like, index: TemporalPartitionIndex, dataset, queries,
                  index_config: IndexConfig, use_local_search: bool) -> tuple[float, float]:
    """Average STRQ precision/recall over the query batch (Table 2 protocol)."""
    cell = index_config.grid_cell
    radius = None
    coder = getattr(summary_like, "cqc_coder", None)
    if use_local_search and coder is not None:
        radius = search_radius(coder.grid_size)
    per_query = []
    for x, y, t, _tid in queries:
        truth = ground_truth_cell_members(dataset, x, y, t, cell)
        if radius is not None:
            candidates = index.lookup_local(x, y, t, radius=radius)
            candidates = _verify_candidates(dataset, candidates, x, y, t, cell)
        else:
            candidates = index.lookup(x, y, t)
        per_query.append(precision_recall(candidates, truth))
    return aggregate_precision_recall(per_query)


def _verify_candidates(dataset, candidates, x, y, t, cell) -> list[int]:
    """Verification step of Section 5.2: confirm candidates on the raw data."""
    confirmed = []
    qx, qy = np.floor(x / cell), np.floor(y / cell)
    for tid in candidates:
        if tid not in dataset:
            continue
        raw = dataset.get(tid).point_at(t)
        if raw is None:
            continue
        if np.floor(raw[0] / cell) == qx and np.floor(raw[1] / cell) == qy:
            confirmed.append(tid)
    return confirmed

#!/usr/bin/env python3
"""Markdown link checker for the repository docs.

Validates every relative link and image reference in the given markdown
files: the target file must exist, and a ``#fragment`` pointing into a
markdown file must match one of that file's headings (GitHub anchor
rules: lowercase, spaces to dashes, punctuation stripped).  External
links (``http``/``https``/``mailto``) are skipped — CI must not depend
on network reachability.

Usage::

    python tools/check_links.py README.md docs/*.md

Exits 1 and lists every broken link if any check fails, 0 otherwise.
No third-party dependencies.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) and ![alt](target); stop at the first unescaped ')'.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_anchor(heading: str) -> str:
    """Translate a heading to its GitHub auto-generated anchor id."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(markdown_path: Path) -> set[str]:
    """All anchor ids defined by a markdown file's headings."""
    text = _FENCE_RE.sub("", markdown_path.read_text(encoding="utf-8"))
    return {github_anchor(match) for match in _HEADING_RE.findall(text)}


def check_file(markdown_path: Path, repo_root: Path) -> list[str]:
    """Return a list of broken-link descriptions for one markdown file."""
    problems: list[str] = []
    text = _FENCE_RE.sub("", markdown_path.read_text(encoding="utf-8"))
    for target in _LINK_RE.findall(text):
        if target.startswith(_SKIP_SCHEMES):
            continue
        path_part, _, fragment = target.partition("#")
        if not path_part:  # same-file anchor like (#layout)
            resolved = markdown_path
        else:
            resolved = (markdown_path.parent / path_part).resolve()
            if repo_root not in resolved.parents and resolved != repo_root:
                problems.append(f"{markdown_path}: link escapes repo: {target}")
                continue
            if not resolved.exists():
                problems.append(f"{markdown_path}: missing target: {target}")
                continue
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            if fragment.lower() not in heading_anchors(resolved):
                problems.append(f"{markdown_path}: missing anchor: {target}")
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    repo_root = Path(__file__).resolve().parent.parent
    problems: list[str] = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            problems.append(f"{name}: file not found")
            continue
        problems.extend(check_file(path.resolve(), repo_root))
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv)} file(s): all links ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

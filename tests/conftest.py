"""Shared fixtures for the test suite.

Datasets and summaries that several test modules need are built once per
session; they are deliberately small so the whole suite stays fast.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installing the
# package (equivalent to `pip install -e .`).
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import CQCConfig, IndexConfig, PPQConfig, PPQTrajectory, PartitionCriterion  # noqa: E402
from repro.data import generate_geolife_like, generate_porto_like  # noqa: E402
from repro.data.trajectory import Trajectory, TrajectoryDataset  # noqa: E402


@pytest.fixture(scope="session")
def porto_small() -> TrajectoryDataset:
    """A small Porto-like workload shared across test modules."""
    return generate_porto_like(num_trajectories=25, max_length=50, seed=5)


@pytest.fixture(scope="session")
def geolife_small() -> TrajectoryDataset:
    """A small GeoLife-like workload (larger spatial span, mixed speeds)."""
    return generate_geolife_like(num_trajectories=12, max_length=80, seed=9)


@pytest.fixture(scope="session")
def straight_line_dataset() -> TrajectoryDataset:
    """Deterministic straight-line trajectories (perfectly predictable)."""
    trajectories = []
    for i in range(6):
        start = np.array([0.01 * i, -0.02 * i])
        step = np.array([0.001, 0.0005 * (i + 1)])
        points = start + np.arange(40)[:, None] * step
        trajectories.append(Trajectory(traj_id=i, points=points))
    return TrajectoryDataset(trajectories)


@pytest.fixture(scope="session")
def fitted_ppq_s(porto_small) -> PPQTrajectory:
    """A fitted PPQ-S system (with CQC and index) shared by query tests."""
    system = PPQTrajectory.ppq_s(cqc_config=CQCConfig(), index_config=IndexConfig())
    system.fit(porto_small)
    return system


@pytest.fixture(scope="session")
def fitted_ppq_a(porto_small) -> PPQTrajectory:
    """A fitted PPQ-A system (autocorrelation partitioning)."""
    system = PPQTrajectory.ppq_a(cqc_config=CQCConfig(), index_config=IndexConfig())
    system.fit(porto_small)
    return system


@pytest.fixture()
def default_ppq_config() -> PPQConfig:
    return PPQConfig()


@pytest.fixture()
def autocorr_ppq_config() -> PPQConfig:
    return PPQConfig(criterion=PartitionCriterion.AUTOCORRELATION, epsilon_p=0.01)

"""Tests for the partition-based index (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.config import IndexConfig
from repro.index.pi import build_partition_index


@pytest.fixture()
def two_cluster_slice():
    rng = np.random.default_rng(0)
    cluster_a = rng.normal(loc=[0.0, 0.0], scale=0.01, size=(30, 2))
    cluster_b = rng.normal(loc=[1.0, 1.0], scale=0.01, size=(30, 2))
    points = np.vstack([cluster_a, cluster_b])
    traj_ids = np.arange(60)
    return traj_ids, points


class TestBuild:
    def test_every_point_is_indexed(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        pi = build_partition_index(0, traj_ids, points, IndexConfig(epsilon_s=0.1, grid_cell=0.01))
        assert pi.num_indexed_ids == len(points)

    def test_empty_slice(self):
        pi = build_partition_index(0, np.empty(0, dtype=int), np.empty((0, 2)), IndexConfig())
        assert pi.num_rectangles == 0
        assert pi.lookup(0.0, 0.0) == []

    def test_rectangles_are_disjoint(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        pi = build_partition_index(0, traj_ids, points, IndexConfig(epsilon_s=0.1, grid_cell=0.01))
        rects = [g.rect for g in pi.grids]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.intersects(b)

    def test_lookup_returns_cell_mates(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        config = IndexConfig(epsilon_s=0.1, grid_cell=0.005)
        pi = build_partition_index(0, traj_ids, points, config)
        x, y = points[0]
        result = pi.lookup(x, y)
        assert 0 in result
        # All returned trajectories must be close to the query point (within
        # a cell diagonal of the same grid).
        for tid in result:
            distance = np.linalg.norm(points[tid] - points[0])
            assert distance <= np.sqrt(2) * config.grid_cell + 1e-9

    def test_lookup_local_is_superset(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        config = IndexConfig(epsilon_s=0.1, grid_cell=0.005)
        pi = build_partition_index(0, traj_ids, points, config)
        x, y = points[5]
        plain = set(pi.lookup(x, y))
        local = set(pi.lookup_local(x, y, radius=0.004))
        assert plain <= local

    def test_covered_mask(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        pi = build_partition_index(0, traj_ids, points, IndexConfig(epsilon_s=0.1, grid_cell=0.01))
        inside = pi.covered_mask(points)
        assert np.all(inside)
        outside = pi.covered_mask(np.array([[50.0, 50.0]]))
        assert not outside[0]

    def test_insert_reports_coverage(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        pi = build_partition_index(0, traj_ids, points, IndexConfig(epsilon_s=0.1, grid_cell=0.01))
        new_points = np.array([[0.0, 0.0], [100.0, 100.0]])
        covered = pi.insert(np.array([100, 101]), new_points)
        assert covered[0] and not covered[1]

    def test_storage_and_densities(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        pi = build_partition_index(0, traj_ids, points, IndexConfig(epsilon_s=0.1, grid_cell=0.01))
        assert pi.storage_bits() > 0
        assert len(pi.densities()) == pi.num_rectangles
        assert len(pi.baseline_density) == pi.num_rectangles

    def test_extend_with_keeps_rectangles_disjoint(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        config = IndexConfig(epsilon_s=0.1, grid_cell=0.01)
        pi = build_partition_index(0, traj_ids[:30], points[:30], config)
        added = pi.extend_with(traj_ids[30:], points[30:], seed=1)
        assert added >= 1
        rects = [g.rect for g in pi.grids]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.intersects(b)
        # The new points are now covered and findable.
        assert np.all(pi.covered_mask(points[30:]))
        assert pi.lookup(*points[45]) != []

    def test_extend_with_empty_is_noop(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        pi = build_partition_index(0, traj_ids, points, IndexConfig(epsilon_s=0.1, grid_cell=0.01))
        before = pi.num_rectangles
        assert pi.extend_with(np.empty(0, dtype=int), np.empty((0, 2))) == 0
        assert pi.num_rectangles == before

    def test_append_grids(self, two_cluster_slice):
        traj_ids, points = two_cluster_slice
        config = IndexConfig(epsilon_s=0.1, grid_cell=0.01)
        pi = build_partition_index(0, traj_ids[:30], points[:30], config)
        other = build_partition_index(0, traj_ids[30:], points[30:], config)
        before = pi.num_rectangles
        pi.append_grids(other)
        assert pi.num_rectangles == before + other.num_rectangles
        assert pi.lookup(*points[45]) != []

"""Tests for the multiprocess batch-serving layer (:mod:`repro.parallel`).

The acceptance criteria:

* ``jobs=N`` answers a mixed STRQ/TPQ/exact workload **bit-identically** to
  the in-process ``jobs=1`` path, in original workload order, for any
  chunking;
* a crashed worker (simulated with the ``REPRO_PARALLEL_CRASH_*`` env hooks
  in :mod:`repro.parallel.worker`) is survived by a chunk retry on a fresh
  pool, and with ``isolate=True`` a query that *always* crashes its worker
  fails alone as a :class:`QueryError` while every other query still gets
  its real answer;
* results stay deterministic when a seeded :class:`FaultPlan` is armed
  inside every worker (``CHAOS_SEED`` parameterises the plan, mirroring
  ``tests/test_reliability.py``).

Worker pools use the ``spawn`` start method, so every pool build pays a
worker import + artifact load; the fixtures keep the dataset small and share
one warmed pool across the parity tests to keep the module fast.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import PPQTrajectory
from repro.parallel import ExecutorStats, ParallelExecutor, default_jobs
from repro.parallel.worker import _CRASH_ONCE_ENV, _CRASH_T_ENV
from repro.queries.batch import QuerySpec, Workload
from repro.queries.exact import ExactQueryResult
from repro.queries.strq import STRQResult
from repro.queries.tpq import TPQResult
from repro.reliability.degrade import QueryError
from repro.reliability.faults import FaultPlan
from repro.reliability.retry import RetryPolicy
from repro.storage import inspect_model, load_model

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1337"))


# ---------------------------------------------------------------------- #
# fixtures
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dataset():
    from repro.data.synthetic import generate_porto_like

    return generate_porto_like(num_trajectories=12, max_length=30, seed=7)


@pytest.fixture(scope="module")
def saved(dataset, tmp_path_factory):
    """One fitted + saved system shared by the whole module."""
    system = PPQTrajectory.ppq_s().fit(dataset)
    path = tmp_path_factory.mktemp("parallel") / "model.ppq"
    system.save(path)
    return system, path


def _probes(dataset, n, seed):
    rng = np.random.default_rng(seed)
    ids = dataset.trajectory_ids
    probes = []
    while len(probes) < n:
        traj = dataset.get(int(rng.choice(ids)))
        row = int(rng.integers(0, len(traj)))
        probes.append((float(traj.points[row, 0]), float(traj.points[row, 1]),
                       int(traj.timestamps[row])))
    return probes


def _mixed_workload(dataset, n=18, seed=3):
    specs = []
    for i, (x, y, t) in enumerate(_probes(dataset, n, seed)):
        kind = ("strq", "tpq", "exact")[i % 3]
        spec = {"type": kind, "x": x, "y": y, "t": t}
        if kind == "tpq":
            spec["length"] = 5
        specs.append(spec)
    return Workload.from_obj(specs)


@pytest.fixture(scope="module")
def workload(dataset):
    return _mixed_workload(dataset)


@pytest.fixture(scope="module")
def baseline(saved, workload):
    """In-process (jobs=1) answers -- the ground truth for every parity test."""
    system, _ = saved
    return system.engine.run_batch(workload, isolate=True)


@pytest.fixture(scope="module")
def pool2(saved):
    """A warmed two-worker pool reused by the parity tests."""
    _, path = saved
    with ParallelExecutor(path, jobs=2) as pool:
        pool.warm()
        yield pool


def assert_result_equal(want, got):
    """Bit-identical comparison across every result type."""
    assert type(want) is type(got)
    if isinstance(want, STRQResult):
        assert want.candidates == got.candidates
        assert set(want.reconstructed) == set(got.reconstructed)
        for tid in want.reconstructed:
            assert np.array_equal(want.reconstructed[tid], got.reconstructed[tid])
    elif isinstance(want, TPQResult):
        assert set(want.paths) == set(got.paths)
        for tid in want.paths:
            assert np.array_equal(want.paths[tid], got.paths[tid])
    elif isinstance(want, ExactQueryResult):
        assert want.candidates == got.candidates
        assert want.matches == got.matches
        assert want.visited_ratio == got.visited_ratio
    elif isinstance(want, QueryError):
        assert (want.index, want.kind) == (got.index, got.kind)
    else:  # pragma: no cover - future result types must be added above
        raise AssertionError(f"unhandled result type: {type(want)}")


def assert_results_equal(want, got):
    assert len(want) == len(got)
    for a, b in zip(want, got):
        assert_result_equal(a, b)


# ---------------------------------------------------------------------- #
# parity: jobs=N is bit-identical to jobs=1
# ---------------------------------------------------------------------- #
class TestParity:
    def test_two_workers_bit_identical(self, pool2, workload, baseline):
        assert_results_equal(baseline, pool2.run(workload, isolate=True))

    def test_order_preserved_across_chunks(self, pool2, workload):
        """Result kinds line up with the specs even though chunks race."""
        results = pool2.run(workload)
        kind_of = {"strq": STRQResult, "tpq": TPQResult, "exact": ExactQueryResult}
        for spec, result in zip(workload.queries, results):
            assert isinstance(result, kind_of[spec.kind])

    def test_accepts_specs_and_dicts(self, pool2, workload, baseline):
        """run() takes a Workload, a list of QuerySpec, or raw dict entries."""
        as_specs = list(workload.queries)
        as_dicts = [{"type": s.kind, "x": s.x, "y": s.y, "t": s.t,
                     **({"length": s.length} if s.kind == "tpq" else {})}
                    for s in workload.queries]
        assert_results_equal(baseline, pool2.run(as_specs, isolate=True))
        assert_results_equal(baseline, pool2.run(as_dicts, isolate=True))

    def test_empty_workload(self, pool2):
        assert pool2.run(Workload.from_obj([])) == []
        assert pool2.run([]) == []

    def test_pool_reused_across_runs(self, saved, workload, baseline):
        _, path = saved
        with ParallelExecutor(path, jobs=1) as pool:
            assert_results_equal(baseline, pool.run(workload, isolate=True))
            assert_results_equal(baseline, pool.run(workload, isolate=True))
            assert pool.stats.pools_built == 1
            assert pool.stats.chunks_retried == 0

    @pytest.mark.parametrize("chunk_size", [1, 5, 10_000])
    def test_any_chunking_bit_identical(self, saved, workload, baseline, chunk_size):
        _, path = saved
        with ParallelExecutor(path, jobs=1, chunk_size=chunk_size) as pool:
            results = pool.run(workload, isolate=True)
            expected_chunks = -(-len(workload) // chunk_size)
            assert pool.stats.chunks_submitted == expected_chunks
        assert_results_equal(baseline, results)


# ---------------------------------------------------------------------- #
# construction and validation
# ---------------------------------------------------------------------- #
class TestConstruction:
    def test_missing_artifact_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ParallelExecutor(tmp_path / "nope.ppq", jobs=2)

    def test_bad_parameters_rejected(self, saved):
        _, path = saved
        with pytest.raises(ValueError, match="jobs"):
            ParallelExecutor(path, jobs=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelExecutor(path, jobs=1, chunk_size=0)
        with pytest.raises(ValueError, match="chunks_per_job"):
            ParallelExecutor(path, jobs=1, chunks_per_job=0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_stats_start_empty(self, saved):
        _, path = saved
        pool = ParallelExecutor(path, jobs=2)
        assert pool.stats == ExecutorStats()
        pool.close()  # never started; close must still be a no-op

    def test_chunks_cover_workload_contiguously(self, saved):
        _, path = saved
        pool = ParallelExecutor(path, jobs=2, chunks_per_job=3)
        specs = [QuerySpec(kind="strq", x=0.0, y=0.0, t=i) for i in range(25)]
        chunks = pool._chunks(specs)
        flat = [spec for _, chunk in chunks for spec in chunk]
        assert flat == specs
        starts = [start for start, _ in chunks]
        assert starts == sorted(starts)
        pool.close()


# ---------------------------------------------------------------------- #
# engine / pipeline surfaces
# ---------------------------------------------------------------------- #
class TestRunBatchSurface:
    def test_engine_jobs_matches_inprocess(self, saved, workload, baseline):
        system, path = saved
        got = system.engine.run_batch(workload, isolate=True, jobs=2)
        assert_results_equal(baseline, got)

    def test_engine_jobs_validation(self, saved, workload):
        system, _ = saved
        with pytest.raises(ValueError, match="jobs"):
            system.engine.run_batch(workload, jobs=0)

    def test_engine_without_source_path_refuses(self, saved, workload, monkeypatch):
        system, _ = saved
        monkeypatch.setattr(system.engine, "source_path", None)
        with pytest.raises(ValueError, match="artifact"):
            system.engine.run_batch(workload, jobs=2)

    def test_explicit_model_path_overrides(self, saved, workload, baseline, monkeypatch):
        system, path = saved
        monkeypatch.setattr(system.engine, "source_path", None)
        got = system.engine.run_batch(workload, isolate=True, jobs=2,
                                      model_path=path)
        assert_results_equal(baseline, got)

    def test_save_and_load_record_source_path(self, saved):
        system, path = saved
        assert system.engine.source_path == str(path)
        assert load_model(path).engine.source_path == str(path)

    def test_salvaged_load_records_no_source_path(self, saved, tmp_path, workload):
        """A salvaged artifact must not be handed to workers behind our back."""
        _, path = saved
        blob = bytearray(path.read_bytes())
        section = next(s for s in inspect_model(path).sections
                       if s.name == "INDEX")
        blob[section.offset + section.length // 2] ^= 0xFF
        bad = tmp_path / "damaged.ppq"
        bad.write_bytes(bytes(blob))
        loaded = load_model(bad, strict=False)
        assert not loaded.load_report.clean
        assert loaded.engine.source_path is None
        with pytest.raises(ValueError, match="artifact"):
            loaded.engine.run_batch(workload, jobs=2)

    def test_pipeline_spills_artifact_for_inmemory_system(self, dataset):
        """A fitted-but-never-saved system transparently spills a temp artifact."""
        from repro.data.synthetic import generate_porto_like

        small = generate_porto_like(num_trajectories=6, max_length=35, seed=21)
        system = PPQTrajectory.ppq_s().fit(small)
        assert system.engine.source_path is None
        wl = _mixed_workload(small, n=9, seed=4)
        want = system.run_batch(wl, isolate=True)
        got = system.run_batch(wl, isolate=True, jobs=2)
        assert system.engine.source_path is not None
        assert os.path.exists(system.engine.source_path)
        assert_results_equal(want, got)


# ---------------------------------------------------------------------- #
# crash recovery
# ---------------------------------------------------------------------- #
class TestCrashRecovery:
    @pytest.fixture()
    def poisoned(self, dataset, workload):
        """(workload, poison_position): one query whose timestamp is unique."""
        counts = {}
        for spec in workload.queries:
            counts[spec.t] = counts.get(spec.t, 0) + 1
        position = next(i for i, spec in enumerate(workload.queries)
                        if counts[spec.t] == 1)
        return workload, position

    def test_crash_once_survived_by_chunk_retry(self, saved, baseline, poisoned,
                                                tmp_path, monkeypatch):
        _, path = saved
        workload, position = poisoned
        marker = tmp_path / "crashed-once"
        monkeypatch.setenv(_CRASH_T_ENV, str(workload.queries[position].t))
        monkeypatch.setenv(_CRASH_ONCE_ENV, str(marker))
        with ParallelExecutor(path, jobs=2, chunk_size=3) as pool:
            results = pool.run(workload, isolate=True)
            assert marker.exists(), "crash hook never fired; test is vacuous"
            assert pool.stats.chunks_retried >= 1
            assert pool.stats.pools_built >= 2  # the broken pool was replaced
            assert pool.stats.chunks_isolated == 0
        assert_results_equal(baseline, results)

    def test_persistent_crash_isolates_poisoned_query(self, saved, baseline,
                                                      poisoned, monkeypatch):
        _, path = saved
        workload, position = poisoned
        monkeypatch.setenv(_CRASH_T_ENV, str(workload.queries[position].t))
        with ParallelExecutor(path, jobs=2, chunk_size=3,
                              retry_policy=RetryPolicy(max_retries=1,
                                                       backoff=0.01)) as pool:
            results = pool.run(workload, isolate=True)
            assert pool.stats.chunks_isolated >= 1
            assert pool.stats.failed_queries == 1
        for i, (want, got) in enumerate(zip(baseline, results)):
            if i == position:
                assert isinstance(got, QueryError)
                assert got.index == position
                assert got.kind == workload.queries[position].kind
            else:
                assert_result_equal(want, got)

    def test_persistent_crash_without_isolation_raises(self, saved, poisoned,
                                                       monkeypatch):
        _, path = saved
        workload, position = poisoned
        monkeypatch.setenv(_CRASH_T_ENV, str(workload.queries[position].t))
        with ParallelExecutor(path, jobs=2, chunk_size=3,
                              retry_policy=RetryPolicy(max_retries=1,
                                                       backoff=0.01)) as pool:
            with pytest.raises(Exception):
                pool.run(workload, isolate=False)


# ---------------------------------------------------------------------- #
# determinism under fault injection
# ---------------------------------------------------------------------- #
class TestFaultDeterminism:
    # The decode points with the graceful-degradation guarantee (quarantine +
    # repair); see tests/test_reliability.py::TestGracefulDegradation.
    @pytest.mark.parametrize("point", ["index.cell_decode", "huffman.decode",
                                       "bitio.read"])
    def test_worker_faults_degrade_to_identical_answers(self, saved, workload,
                                                        baseline, point):
        """A seeded plan armed inside every worker must not change answers.

        Graceful degradation (the reliability layer's guarantee) makes each
        worker's faulted answers equal its clean answers, so the merged
        results are deterministic no matter which worker serves which chunk.
        """
        _, path = saved
        plan = FaultPlan(seed=CHAOS_SEED).add(point)
        with ParallelExecutor(path, jobs=2, fault_plan=plan) as pool:
            faulted = pool.run(workload, isolate=True)
        assert not any(isinstance(r, QueryError) for r in faulted)
        assert_results_equal(baseline, faulted)

    def test_two_faulted_runs_identical(self, saved, workload):
        _, path = saved
        plan = FaultPlan(seed=CHAOS_SEED).add("index.cell_decode",
                                              probability=0.5)
        with ParallelExecutor(path, jobs=2, fault_plan=plan) as pool:
            first = pool.run(workload, isolate=True)
        with ParallelExecutor(path, jobs=2, fault_plan=plan) as pool:
            second = pool.run(workload, isolate=True)
        assert_results_equal(first, second)

"""Tests for the growable error-bounded codebook."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.codebook import Codebook


class TestGrowth:
    def test_starts_empty(self):
        cb = Codebook()
        assert len(cb) == 0

    def test_add_returns_index(self):
        cb = Codebook()
        assert cb.add([1.0, 2.0]) == 0
        assert cb.add([3.0, 4.0]) == 1
        np.testing.assert_array_equal(cb[1], [3.0, 4.0])

    def test_extend(self):
        cb = Codebook()
        indices = cb.extend(np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]))
        np.testing.assert_array_equal(indices, [0, 1, 2])
        assert len(cb) == 3

    def test_extend_empty_is_noop(self):
        cb = Codebook()
        assert len(cb.extend(np.empty((0, 2)))) == 0

    def test_capacity_doubling_preserves_contents(self):
        cb = Codebook(initial_capacity=2)
        points = np.random.default_rng(0).normal(size=(50, 2))
        cb.extend(points)
        np.testing.assert_allclose(cb.codewords, points)

    def test_index_out_of_range(self):
        cb = Codebook()
        cb.add([0.0, 0.0])
        with pytest.raises(IndexError):
            _ = cb[1]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Codebook(initial_capacity=0)


class TestAssignment:
    def test_assign_empty_codebook(self):
        cb = Codebook()
        indices, distances = cb.assign(np.array([[0.0, 0.0]]))
        assert indices[0] == -1
        assert np.isinf(distances[0])

    def test_assign_nearest(self):
        cb = Codebook()
        cb.extend(np.array([[0.0, 0.0], [10.0, 10.0]]))
        indices, distances = cb.assign(np.array([[1.0, 1.0], [9.0, 9.0]]))
        np.testing.assert_array_equal(indices, [0, 1])
        assert distances[0] == pytest.approx(np.sqrt(2.0))

    def test_assign_empty_vectors(self):
        cb = Codebook()
        cb.add([0.0, 0.0])
        indices, distances = cb.assign(np.empty((0, 2)))
        assert len(indices) == 0
        assert len(distances) == 0

    def test_reconstruct(self):
        cb = Codebook()
        cb.extend(np.array([[0.0, 0.0], [5.0, 5.0]]))
        recon = cb.reconstruct(np.array([1, 0, 1]))
        np.testing.assert_array_equal(recon, [[5.0, 5.0], [0.0, 0.0], [5.0, 5.0]])

    def test_reconstruct_rejects_bad_index(self):
        cb = Codebook()
        cb.add([0.0, 0.0])
        with pytest.raises(IndexError):
            cb.reconstruct([3])

    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=60))
    def test_assignment_is_truly_nearest(self, num_codewords, num_vectors):
        rng = np.random.default_rng(num_codewords * 100 + num_vectors)
        cb = Codebook()
        codewords = rng.normal(size=(num_codewords, 2))
        cb.extend(codewords)
        vectors = rng.normal(size=(num_vectors, 2))
        indices, distances = cb.assign(vectors)
        brute = np.linalg.norm(vectors[:, None, :] - codewords[None, :, :], axis=2)
        np.testing.assert_allclose(distances, brute.min(axis=1), rtol=1e-10)


class TestStorage:
    def test_storage_bytes(self):
        cb = Codebook()
        cb.extend(np.zeros((10, 2)))
        assert cb.storage_bytes(bytes_per_value=8) == 160

    def test_index_bits(self):
        cb = Codebook()
        assert cb.index_bits() == 1
        cb.extend(np.zeros((2, 2)))
        assert cb.index_bits() == 1
        cb.extend(np.zeros((3, 2)))  # 5 codewords -> 3 bits
        assert cb.index_bits() == 3

    def test_copy_is_independent(self):
        cb = Codebook()
        cb.add([1.0, 1.0])
        clone = cb.copy()
        clone.add([2.0, 2.0])
        assert len(cb) == 1
        assert len(clone) == 2

"""Tests for rectangles and overlap removal."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.rectangles import Rect, minimum_bounding_rect, remove_overlap


def rect_strategy():
    coord = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
    return st.tuples(coord, coord, coord, coord).map(
        lambda c: Rect(min(c[0], c[2]), min(c[1], c[3]),
                       max(c[0], c[2]) + 0.1, max(c[1], c[3]) + 0.1)
    )


class TestRect:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_area_width_height(self):
        rect = Rect(0.0, 0.0, 2.0, 3.0)
        assert rect.width == 2.0
        assert rect.height == 3.0
        assert rect.area == 6.0

    def test_contains(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert rect.contains(0.5, 0.5)
        assert rect.contains(0.0, 1.0)  # closed boundary
        assert not rect.contains(1.5, 0.5)

    def test_contains_points_vectorised(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        points = np.array([[0.5, 0.5], [2.0, 0.5], [1.0, 1.0]])
        np.testing.assert_array_equal(rect.contains_points(points), [True, False, True])

    def test_intersects_and_intersection(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        assert a.intersects(b)
        overlap = a.intersection(b)
        assert overlap == Rect(1.0, 1.0, 2.0, 2.0)

    def test_touching_rectangles_do_not_intersect(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 2.0, 1.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None


class TestSubtract:
    def test_no_overlap_returns_self(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(5.0, 5.0, 6.0, 6.0)
        assert a.subtract(b) == [a]

    def test_full_cover_returns_nothing(self):
        a = Rect(1.0, 1.0, 2.0, 2.0)
        b = Rect(0.0, 0.0, 3.0, 3.0)
        assert a.subtract(b) == []

    def test_corner_overlap_produces_two_pieces(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        pieces = a.subtract(b)
        assert len(pieces) == 2
        assert sum(p.area for p in pieces) == pytest.approx(a.area - 1.0)

    def test_pieces_are_disjoint(self):
        a = Rect(0.0, 0.0, 4.0, 4.0)
        b = Rect(1.0, 1.0, 2.0, 3.0)
        pieces = a.subtract(b)
        for i, p in enumerate(pieces):
            for q in pieces[i + 1:]:
                assert not p.intersects(q)

    @settings(max_examples=60, deadline=None)
    @given(rect_strategy(), rect_strategy())
    def test_subtract_area_conservation_property(self, a, b):
        """area(a \\ b) == area(a) - area(a ∩ b)."""
        pieces = a.subtract(b)
        overlap = a.intersection(b)
        overlap_area = overlap.area if overlap else 0.0
        assert sum(p.area for p in pieces) == pytest.approx(
            a.area - overlap_area, rel=1e-6, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(rect_strategy(), rect_strategy(), st.integers(0, 10_000))
    def test_membership_property(self, a, b, seed):
        """A random point is in a\\b iff it is in a and not strictly inside b."""
        rng = np.random.default_rng(seed)
        pieces = a.subtract(b)
        xs = rng.uniform(a.min_x, a.max_x, size=20)
        ys = rng.uniform(a.min_y, a.max_y, size=20)
        for x, y in zip(xs, ys):
            strictly_in_b = b.min_x < x < b.max_x and b.min_y < y < b.max_y
            in_pieces = any(p.contains(x, y) for p in pieces)
            if strictly_in_b:
                assert not any(p.min_x < x < p.max_x and p.min_y < y < p.max_y for p in pieces)
            else:
                assert in_pieces


class TestMinimumBoundingRect:
    def test_covers_all_points(self):
        points = np.random.default_rng(0).normal(size=(50, 2))
        rect = minimum_bounding_rect(points)
        assert np.all(rect.contains_points(points))

    def test_padding(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        rect = minimum_bounding_rect(points, padding=0.5)
        assert rect.min_x == -0.5 and rect.max_y == 1.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            minimum_bounding_rect(np.empty((0, 2)))


class TestRemoveOverlap:
    def test_no_existing_returns_original(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert remove_overlap(rect, []) == [rect]

    def test_fully_covered_returns_empty(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert remove_overlap(rect, [Rect(-1.0, -1.0, 2.0, 2.0)]) == []

    def test_result_disjoint_from_existing(self):
        rect = Rect(0.0, 0.0, 4.0, 4.0)
        existing = [Rect(1.0, 1.0, 2.0, 2.0), Rect(3.0, 0.0, 5.0, 1.0)]
        pieces = remove_overlap(rect, existing)
        for piece in pieces:
            for other in existing:
                assert not piece.intersects(other)

    def test_total_area_correct_for_disjoint_existing(self):
        rect = Rect(0.0, 0.0, 4.0, 4.0)
        existing = [Rect(0.0, 0.0, 1.0, 1.0), Rect(3.0, 3.0, 4.0, 4.0)]
        pieces = remove_overlap(rect, existing)
        assert sum(p.area for p in pieces) == pytest.approx(16.0 - 2.0)

"""Tests for repro.utils.geo."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.geo import (
    DEGREE_TO_METERS,
    bounding_box,
    degrees_to_meters,
    euclidean,
    haversine_meters,
    meters_to_degrees,
)


class TestConversions:
    def test_degrees_to_meters_known_value(self):
        assert degrees_to_meters(0.001) == pytest.approx(111.0)

    def test_meters_to_degrees_known_value(self):
        assert meters_to_degrees(111_000.0) == pytest.approx(1.0)

    def test_roundtrip(self):
        assert meters_to_degrees(degrees_to_meters(0.1234)) == pytest.approx(0.1234)

    @given(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False))
    def test_roundtrip_property(self, value):
        assert meters_to_degrees(degrees_to_meters(value)) == pytest.approx(value, abs=1e-9)

    def test_constant_matches_paper_eps1(self):
        # The paper states eps1 = 0.001 corresponds to roughly 111 metres.
        assert DEGREE_TO_METERS * 0.001 == pytest.approx(111.0)


class TestEuclidean:
    def test_single_points(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_arrays(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0], [1.0, 1.0]])
        np.testing.assert_allclose(euclidean(a, b), [5.0, 0.0])

    def test_broadcasting(self):
        a = np.array([[0.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(euclidean(a, [0.0, 0.0]), [0.0, 1.0])


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_meters(-8.6, 41.1, -8.6, 41.1) == pytest.approx(0.0)

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111 km anywhere on the globe.
        dist = haversine_meters(-8.6, 41.0, -8.6, 42.0)
        assert dist == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        d1 = haversine_meters(-8.6, 41.1, -8.5, 41.2)
        d2 = haversine_meters(-8.5, 41.2, -8.6, 41.1)
        assert d1 == pytest.approx(d2)


class TestBoundingBox:
    def test_simple(self):
        points = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        assert bounding_box(points) == (0.0, -1.0, 2.0, 1.0)

    def test_single_point(self):
        assert bounding_box(np.array([[3.0, 4.0]])) == (3.0, 4.0, 3.0, 4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box(np.empty((0, 2)))

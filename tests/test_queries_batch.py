"""Tests for the batch query subsystem.

The contract of :mod:`repro.queries.batch` is exact equivalence: a batched
call must return, query by query, the same results as running the scalar
query functions in a loop.  These tests enforce that on randomized
workloads (including off-trajectory probes and timestamps outside the
stream) and cover the workload spec parsing and the LRU reconstruction
cache.
"""

import json

import numpy as np
import pytest

from repro.core.summary import ReconstructionCache
from repro.queries.batch import (
    QuerySpec,
    Workload,
    batch_exact,
    batch_strq,
    batch_tpq,
    load_workload,
)
from repro.queries.engine import QueryEngine
from repro.queries.exact import exact_match_query
from repro.queries.strq import spatio_temporal_range_query
from repro.queries.tpq import trajectory_path_query


def random_probes(dataset, num, seed, jitter=0.0):
    """Random (x, y, t) probes on (or near, with jitter) trajectory points."""
    rng = np.random.default_rng(seed)
    probes = []
    for _ in range(num):
        tid = int(rng.choice(dataset.trajectory_ids))
        traj = dataset.get(tid)
        t = int(rng.integers(0, len(traj)))
        x, y = traj.points[t] + rng.normal(0.0, jitter, 2)
        probes.append((float(x), float(y), int(t)))
    return probes


@pytest.fixture(scope="module")
def engine(fitted_ppq_s) -> QueryEngine:
    return fitted_ppq_s.engine


class TestBatchSTRQ:
    def test_equivalent_to_sequential_with_local_search(self, engine, porto_small):
        probes = random_probes(porto_small, 30, seed=0, jitter=5e-4)
        radius = engine.local_search_radius
        batched = batch_strq(engine.index, probes, summary=engine.summary,
                             local_search_radius=radius)
        for (x, y, t), batch in zip(probes, batched):
            scalar = spatio_temporal_range_query(
                engine.index, x, y, t, summary=engine.summary, local_search_radius=radius
            )
            assert scalar.candidates == batch.candidates
            assert set(scalar.reconstructed) == set(batch.reconstructed)
            for tid in scalar.reconstructed:
                assert (scalar.reconstructed[tid].tobytes()
                        == batch.reconstructed[tid].tobytes())

    def test_equivalent_without_summary_or_local_search(self, engine, porto_small):
        probes = random_probes(porto_small, 20, seed=1)
        batched = batch_strq(engine.index, probes)
        for (x, y, t), batch in zip(probes, batched):
            scalar = spatio_temporal_range_query(engine.index, x, y, t)
            assert scalar.candidates == batch.candidates
            assert batch.reconstructed == {}

    def test_queries_outside_stream_return_empty(self, engine):
        batched = batch_strq(engine.index, [(0.0, 0.0, 99_999), (5.0, 5.0, -3)])
        assert [b.candidates for b in batched] == [[], []]

    def test_empty_batch(self, engine):
        assert batch_strq(engine.index, []) == []

    def test_accepts_query_specs(self, engine, porto_small):
        x, y, t = random_probes(porto_small, 1, seed=2)[0]
        spec = QuerySpec(kind="strq", x=x, y=y, t=t)
        batched = batch_strq(engine.index, [spec], summary=engine.summary,
                             local_search_radius=engine.local_search_radius)
        assert batched[0].candidates == engine.strq(x, y, t).candidates


class TestBatchTPQ:
    def test_equivalent_to_sequential(self, engine, porto_small):
        rng = np.random.default_rng(3)
        probes = [(x, y, t, int(rng.integers(1, 15)))
                  for x, y, t in random_probes(porto_small, 25, seed=3)]
        radius = engine.local_search_radius
        batched = batch_tpq(engine.index, engine.summary, probes,
                            local_search_radius=radius)
        for (x, y, t, length), batch in zip(probes, batched):
            scalar = trajectory_path_query(
                engine.index, engine.summary, x, y, t, length, local_search_radius=radius
            )
            assert set(scalar.paths) == set(batch.paths)
            for tid in scalar.paths:
                assert scalar.paths[tid].tobytes() == batch.paths[tid].tobytes()

    def test_paths_truncated_at_stream_end_match_sequential(self, engine, porto_small):
        t = max(porto_small.timestamps) - 2
        probes = [(x, y, t, 10) for x, y, _ in random_probes(porto_small, 5, seed=4)]
        radius = engine.local_search_radius
        batched = batch_tpq(engine.index, engine.summary, probes, local_search_radius=radius)
        for (x, y, t_q, length), batch in zip(probes, batched):
            scalar = trajectory_path_query(
                engine.index, engine.summary, x, y, t_q, length, local_search_radius=radius
            )
            assert set(scalar.paths) == set(batch.paths)
            for tid, path in batch.paths.items():
                assert len(path) <= 3

    def test_invalid_length_rejected(self, engine):
        with pytest.raises(ValueError):
            batch_tpq(engine.index, engine.summary, [(0.0, 0.0, 5, 0)])


class TestBatchExact:
    def test_equivalent_to_sequential(self, engine, porto_small):
        probes = random_probes(porto_small, 25, seed=5, jitter=3e-4)
        cell = engine.index_config.grid_cell
        batched = batch_exact(engine.index, engine.summary, porto_small, probes,
                              cell_size=cell)
        for (x, y, t), batch in zip(probes, batched):
            scalar = exact_match_query(
                engine.index, engine.summary, porto_small, x, y, t, cell_size=cell
            )
            assert scalar.candidates == batch.candidates
            assert scalar.matches == batch.matches
            assert scalar.visited_ratio == batch.visited_ratio


class TestRunBatch:
    def build_workload(self, dataset, num=24, seed=6):
        kinds = ["strq", "tpq", "exact"]
        specs = []
        for i, (x, y, t) in enumerate(random_probes(dataset, num, seed=seed)):
            kind = kinds[i % len(kinds)]
            specs.append(QuerySpec(kind=kind, x=x, y=y, t=t,
                                   length=8 if kind == "tpq" else 0))
        return specs

    def test_mixed_workload_order_and_equivalence(self, engine, porto_small):
        specs = self.build_workload(porto_small)
        results = engine.run_batch(specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            assert (result.x, result.y, result.t) == (spec.x, spec.y, spec.t)
            if spec.kind == "strq":
                assert result.candidates == engine.strq(spec.x, spec.y, spec.t).candidates
            elif spec.kind == "tpq":
                scalar = engine.tpq(spec.x, spec.y, spec.t, spec.length)
                assert set(result.paths) == set(scalar.paths)
            else:
                scalar = engine.exact(spec.x, spec.y, spec.t)
                assert result.matches == scalar.matches

    def test_accepts_workload_object_and_dicts(self, engine, porto_small):
        x, y, t = random_probes(porto_small, 1, seed=7)[0]
        as_dicts = [{"type": "strq", "x": x, "y": y, "t": t}]
        workload = Workload.from_obj(as_dicts)
        assert (engine.run_batch(workload)[0].candidates
                == engine.run_batch(as_dicts)[0].candidates)

    def test_exact_without_raw_dataset_rejected(self, engine):
        detached = QueryEngine(engine.summary, engine.index_config, raw_dataset=None)
        with pytest.raises(RuntimeError):
            detached.run_batch([QuerySpec(kind="exact", x=0.0, y=0.0, t=0)])

    def test_unsupported_entry_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.run_batch([("strq", 0.0, 0.0, 0)])


class TestWorkloadSpec:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(kind="nearest", x=0.0, y=0.0, t=0)

    def test_tpq_requires_length(self):
        with pytest.raises(ValueError):
            QuerySpec(kind="tpq", x=0.0, y=0.0, t=0)

    def test_from_dict_type_alias_and_counts(self):
        workload = Workload.from_obj([
            {"type": "strq", "x": 1.0, "y": 2.0, "t": 3},
            {"kind": "tpq", "x": 1.0, "y": 2.0, "t": 3, "length": 4},
        ])
        assert workload.counts() == {"strq": 1, "tpq": 1, "exact": 0}
        assert workload.queries[1].length == 4

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec.from_dict({"x": 0.0, "y": 0.0, "t": 0})

    def test_non_list_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_obj({"not_queries": []})

    def test_load_workload_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps({"queries": [
            {"type": "exact", "x": -8.6, "y": 41.1, "t": 12},
        ]}))
        workload = load_workload(path)
        assert len(workload) == 1
        assert workload.queries[0] == QuerySpec(kind="exact", x=-8.6, y=41.1, t=12)


class TestReconstructionCache:
    def test_hit_miss_counting(self):
        cache = ReconstructionCache(capacity=4)
        assert cache.get((0, True)) is None
        cache.put((0, True), {1: np.zeros(2)})
        assert cache.get((0, True)) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ReconstructionCache(capacity=2)
        cache.put((0, True), {})
        cache.put((1, True), {})
        cache.get((0, True))          # 0 becomes most recently used
        cache.put((2, True), {})      # evicts 1
        assert (1, True) not in cache
        assert (0, True) in cache and (2, True) in cache
        assert cache.evictions == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReconstructionCache(capacity=0)

    def test_clear_keeps_counters(self):
        cache = ReconstructionCache(capacity=2)
        cache.put((0, True), {})
        cache.get((0, True))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1


class TestSummarySliceCache:
    def test_slice_matches_per_point_reconstruction(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[5]
        slice_ = summary.reconstruct_slice(t)
        assert set(slice_) == set(summary.trajectories_at(t))
        for tid, point in slice_.items():
            assert point.tobytes() == summary.reconstruct_point(tid, t).tobytes()

    def test_repeated_access_hits_cache(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[6]
        tid = summary.trajectories_at(t)[0]
        summary.reconstruct_point_cached(tid, t)
        hits_before = summary.slice_cache.hits
        first = summary.reconstruct_point_cached(tid, t)
        second = summary.reconstruct_point_cached(tid, t)
        assert summary.slice_cache.hits >= hits_before + 2
        assert first is second  # served from the same cached entry

    def test_negative_caching_for_absent_trajectories(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[0]
        assert summary.reconstruct_point_cached(987_654, t) is None
        assert summary.reconstruct_point_cached(987_654, t) is None

    def test_add_record_invalidates(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[1]
        summary.reconstruct_slice(t)
        assert len(summary.slice_cache) > 0
        summary.add_record(summary.records[t])  # re-adding still invalidates
        assert len(summary.slice_cache) == 0

"""Tests for the batch query subsystem.

The contract of :mod:`repro.queries.batch` is exact equivalence: a batched
call must return, query by query, the same results as running the scalar
query functions in a loop.  These tests enforce that on randomized
workloads (including off-trajectory probes and timestamps outside the
stream) and cover the workload spec parsing and the LRU reconstruction
cache.
"""

import json

import numpy as np
import pytest

from repro.core.summary import ReconstructionCache
from repro.queries.batch import (
    QuerySpec,
    Workload,
    WorkloadError,
    batch_exact,
    batch_strq,
    batch_tpq,
    load_workload,
)
from repro.queries.engine import QueryEngine
from repro.queries.exact import exact_match_query
from repro.queries.strq import spatio_temporal_range_query
from repro.queries.tpq import trajectory_path_query


def random_probes(dataset, num, seed, jitter=0.0):
    """Random (x, y, t) probes on (or near, with jitter) trajectory points."""
    rng = np.random.default_rng(seed)
    probes = []
    for _ in range(num):
        tid = int(rng.choice(dataset.trajectory_ids))
        traj = dataset.get(tid)
        t = int(rng.integers(0, len(traj)))
        x, y = traj.points[t] + rng.normal(0.0, jitter, 2)
        probes.append((float(x), float(y), int(t)))
    return probes


@pytest.fixture(scope="module")
def engine(fitted_ppq_s) -> QueryEngine:
    return fitted_ppq_s.engine


class TestBatchSTRQ:
    def test_equivalent_to_sequential_with_local_search(self, engine, porto_small):
        probes = random_probes(porto_small, 30, seed=0, jitter=5e-4)
        radius = engine.local_search_radius
        batched = batch_strq(engine.index, probes, summary=engine.summary,
                             local_search_radius=radius)
        for (x, y, t), batch in zip(probes, batched):
            scalar = spatio_temporal_range_query(
                engine.index, x, y, t, summary=engine.summary, local_search_radius=radius
            )
            assert scalar.candidates == batch.candidates
            assert set(scalar.reconstructed) == set(batch.reconstructed)
            for tid in scalar.reconstructed:
                assert (scalar.reconstructed[tid].tobytes()
                        == batch.reconstructed[tid].tobytes())

    def test_equivalent_without_summary_or_local_search(self, engine, porto_small):
        probes = random_probes(porto_small, 20, seed=1)
        batched = batch_strq(engine.index, probes)
        for (x, y, t), batch in zip(probes, batched):
            scalar = spatio_temporal_range_query(engine.index, x, y, t)
            assert scalar.candidates == batch.candidates
            assert batch.reconstructed == {}

    def test_queries_outside_stream_return_empty(self, engine):
        batched = batch_strq(engine.index, [(0.0, 0.0, 99_999), (5.0, 5.0, -3)])
        assert [b.candidates for b in batched] == [[], []]

    def test_empty_batch(self, engine):
        assert batch_strq(engine.index, []) == []

    def test_accepts_query_specs(self, engine, porto_small):
        x, y, t = random_probes(porto_small, 1, seed=2)[0]
        spec = QuerySpec(kind="strq", x=x, y=y, t=t)
        batched = batch_strq(engine.index, [spec], summary=engine.summary,
                             local_search_radius=engine.local_search_radius)
        assert batched[0].candidates == engine.strq(x, y, t).candidates


class TestBatchTPQ:
    def test_equivalent_to_sequential(self, engine, porto_small):
        rng = np.random.default_rng(3)
        probes = [(x, y, t, int(rng.integers(1, 15)))
                  for x, y, t in random_probes(porto_small, 25, seed=3)]
        radius = engine.local_search_radius
        batched = batch_tpq(engine.index, engine.summary, probes,
                            local_search_radius=radius)
        for (x, y, t, length), batch in zip(probes, batched):
            scalar = trajectory_path_query(
                engine.index, engine.summary, x, y, t, length, local_search_radius=radius
            )
            assert set(scalar.paths) == set(batch.paths)
            for tid in scalar.paths:
                assert scalar.paths[tid].tobytes() == batch.paths[tid].tobytes()

    def test_paths_truncated_at_stream_end_match_sequential(self, engine, porto_small):
        t = max(porto_small.timestamps) - 2
        probes = [(x, y, t, 10) for x, y, _ in random_probes(porto_small, 5, seed=4)]
        radius = engine.local_search_radius
        batched = batch_tpq(engine.index, engine.summary, probes, local_search_radius=radius)
        for (x, y, t_q, length), batch in zip(probes, batched):
            scalar = trajectory_path_query(
                engine.index, engine.summary, x, y, t_q, length, local_search_radius=radius
            )
            assert set(scalar.paths) == set(batch.paths)
            for tid, path in batch.paths.items():
                assert len(path) <= 3

    def test_invalid_length_rejected(self, engine):
        with pytest.raises(ValueError):
            batch_tpq(engine.index, engine.summary, [(0.0, 0.0, 5, 0)])


class TestBatchExact:
    def test_equivalent_to_sequential(self, engine, porto_small):
        probes = random_probes(porto_small, 25, seed=5, jitter=3e-4)
        cell = engine.index_config.grid_cell
        batched = batch_exact(engine.index, engine.summary, porto_small, probes,
                              cell_size=cell)
        for (x, y, t), batch in zip(probes, batched):
            scalar = exact_match_query(
                engine.index, engine.summary, porto_small, x, y, t, cell_size=cell
            )
            assert scalar.candidates == batch.candidates
            assert scalar.matches == batch.matches
            assert scalar.visited_ratio == batch.visited_ratio


class TestRunBatch:
    def build_workload(self, dataset, num=24, seed=6):
        kinds = ["strq", "tpq", "exact"]
        specs = []
        for i, (x, y, t) in enumerate(random_probes(dataset, num, seed=seed)):
            kind = kinds[i % len(kinds)]
            specs.append(QuerySpec(kind=kind, x=x, y=y, t=t,
                                   length=8 if kind == "tpq" else 0))
        return specs

    def test_mixed_workload_order_and_equivalence(self, engine, porto_small):
        specs = self.build_workload(porto_small)
        results = engine.run_batch(specs)
        assert len(results) == len(specs)
        for spec, result in zip(specs, results):
            assert (result.x, result.y, result.t) == (spec.x, spec.y, spec.t)
            if spec.kind == "strq":
                assert result.candidates == engine.strq(spec.x, spec.y, spec.t).candidates
            elif spec.kind == "tpq":
                scalar = engine.tpq(spec.x, spec.y, spec.t, spec.length)
                assert set(result.paths) == set(scalar.paths)
            else:
                scalar = engine.exact(spec.x, spec.y, spec.t)
                assert result.matches == scalar.matches

    def test_accepts_workload_object_and_dicts(self, engine, porto_small):
        x, y, t = random_probes(porto_small, 1, seed=7)[0]
        as_dicts = [{"type": "strq", "x": x, "y": y, "t": t}]
        workload = Workload.from_obj(as_dicts)
        assert (engine.run_batch(workload)[0].candidates
                == engine.run_batch(as_dicts)[0].candidates)

    def test_exact_without_raw_dataset_rejected(self, engine):
        detached = QueryEngine(engine.summary, engine.index_config, raw_dataset=None)
        with pytest.raises(RuntimeError):
            detached.run_batch([QuerySpec(kind="exact", x=0.0, y=0.0, t=0)])

    def test_unsupported_entry_rejected(self, engine):
        with pytest.raises(TypeError):
            engine.run_batch([("strq", 0.0, 0.0, 0)])


class TestWorkloadSpec:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec(kind="nearest", x=0.0, y=0.0, t=0)

    def test_tpq_requires_length(self):
        with pytest.raises(ValueError):
            QuerySpec(kind="tpq", x=0.0, y=0.0, t=0)

    def test_from_dict_type_alias_and_counts(self):
        workload = Workload.from_obj([
            {"type": "strq", "x": 1.0, "y": 2.0, "t": 3},
            {"kind": "tpq", "x": 1.0, "y": 2.0, "t": 3, "length": 4},
        ])
        assert workload.counts() == {"strq": 1, "tpq": 1, "exact": 0}
        assert workload.queries[1].length == 4

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError):
            QuerySpec.from_dict({"x": 0.0, "y": 0.0, "t": 0})

    def test_non_list_workload_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_obj({"not_queries": []})

    def test_load_workload_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.json"
        path.write_text(json.dumps({"queries": [
            {"type": "exact", "x": -8.6, "y": 41.1, "t": 12},
        ]}))
        workload = load_workload(path)
        assert len(workload) == 1
        assert workload.queries[0] == QuerySpec(kind="exact", x=-8.6, y=41.1, t=12)


class TestMalformedWorkloads:
    """Malformed workload input must raise :class:`WorkloadError` (which the
    CLI maps to exit code 4), never a raw ``KeyError``/``AttributeError``.
    """

    @pytest.mark.parametrize("entry", [
        "strq",                                        # string, not a dict
        42,                                            # number, not a dict
        None,                                          # null entry
        ["strq", 0.0, 0.0, 0],                         # list, not a dict
        {},                                            # empty dict
        {"x": 0.0, "y": 0.0, "t": 0},                  # missing kind
        {"type": "nearest", "x": 0.0, "y": 0.0, "t": 0},   # unknown kind
        {"type": "strq", "y": 0.0, "t": 0},            # missing x
        {"type": "strq", "x": "west", "y": 0.0, "t": 0},   # non-numeric x
        {"type": "strq", "x": 0.0, "y": 0.0},          # missing t
        {"type": "strq", "x": 0.0, "y": 0.0, "t": "noon"},  # non-numeric t
        {"type": "tpq", "x": 0.0, "y": 0.0, "t": 0},   # tpq without length
        {"type": "tpq", "x": 0.0, "y": 0.0, "t": 0, "length": 0},  # length < 1
        {"type": "tpq", "x": 0.0, "y": 0.0, "t": 0, "length": "long"},
    ])
    def test_bad_entry_raises_workload_error(self, entry):
        with pytest.raises(WorkloadError):
            QuerySpec.from_dict(entry)
        # And through the workload parser, with the entry position named.
        with pytest.raises(WorkloadError, match="query #1"):
            Workload.from_obj([{"type": "strq", "x": 0.0, "y": 0.0, "t": 0},
                               entry])

    @pytest.mark.parametrize("obj", ["queries", 7, None, {"queries": "strq"},
                                     {"queries": 7}, {"wrong_key": []}])
    def test_non_list_workload_raises_workload_error(self, obj):
        with pytest.raises(WorkloadError):
            Workload.from_obj(obj)

    def test_workload_error_is_a_value_error(self):
        """Existing except ValueError handlers keep working."""
        assert issubclass(WorkloadError, ValueError)

    def test_bad_json_raises_workload_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            load_workload(path)

    def test_empty_workload_is_valid(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"queries": []}))
        workload = load_workload(path)
        assert len(workload) == 0
        assert workload.counts() == {"strq": 0, "tpq": 0, "exact": 0}


class TestPeriodBoundaryEquivalence:
    """Batch vs scalar equivalence at TPI partition boundaries (the
    ``searchsorted(..., side="right") - 1`` edge of the vectorised scan).
    """

    def _boundary_probes(self, engine, dataset):
        """Probes pinned to every period's exact start/end (and ±1)."""
        probes = []
        rng = np.random.default_rng(31)
        for period in engine.index.periods:
            for t in {period.start - 1, period.start, period.start + 1,
                      period.end - 1, period.end, period.end + 1}:
                tid = int(rng.choice(dataset.trajectory_ids))
                traj = dataset.get(tid)
                row = min(max(t, 0), len(traj) - 1)
                probes.append((float(traj.points[row, 0]),
                               float(traj.points[row, 1]), int(t)))
        return probes

    def test_strq_at_period_boundaries(self, engine, porto_small):
        probes = self._boundary_probes(engine, porto_small)
        radius = engine.local_search_radius
        batched = batch_strq(engine.index, probes, summary=engine.summary,
                             local_search_radius=radius)
        for (x, y, t), batch in zip(probes, batched):
            scalar = spatio_temporal_range_query(
                engine.index, x, y, t, summary=engine.summary,
                local_search_radius=radius)
            assert scalar.candidates == batch.candidates, f"t={t}"

    def test_tpq_at_period_boundaries(self, engine, porto_small):
        probes = [(x, y, t, 6) for x, y, t
                  in self._boundary_probes(engine, porto_small)]
        batched = batch_tpq(engine.index, engine.summary, probes)
        for (x, y, t, length), batch in zip(probes, batched):
            scalar = trajectory_path_query(engine.index, engine.summary,
                                           x, y, t, length)
            assert set(scalar.paths) == set(batch.paths), f"t={t}"
            for tid in scalar.paths:
                assert np.array_equal(scalar.paths[tid], batch.paths[tid])


class TestReconstructionCache:
    def test_hit_miss_counting(self):
        cache = ReconstructionCache(capacity=4)
        assert cache.get((0, True)) is None
        cache.put((0, True), {1: np.zeros(2)})
        assert cache.get((0, True)) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ReconstructionCache(capacity=2)
        cache.put((0, True), {})
        cache.put((1, True), {})
        cache.get((0, True))          # 0 becomes most recently used
        cache.put((2, True), {})      # evicts 1
        assert (1, True) not in cache
        assert (0, True) in cache and (2, True) in cache
        assert cache.evictions == 1

    @pytest.mark.parametrize("capacity", [0, -1, -100])
    def test_degenerate_capacity_disables_cache(self, capacity):
        """``capacity <= 0`` means "no caching" -- never a crash or growth."""
        cache = ReconstructionCache(capacity=capacity)
        assert cache.disabled
        assert cache.capacity == 0
        for t in range(50):
            cache.put((t, True), {1: np.zeros(2)})
            assert cache.get((t, True)) is None     # nothing is ever stored
        assert len(cache) == 0
        assert cache.evictions == 0                 # rejected puts are not evictions
        assert cache.hits == 0 and cache.misses == 50
        cache.clear()                               # must not KeyError
        assert cache.stats()["misses"] == 50

    def test_disabled_slice_cache_end_to_end(self, fitted_ppq_s, porto_small):
        """A summary serving with a disabled slice cache answers identically."""
        engine = fitted_ppq_s.engine
        summary = fitted_ppq_s.summary
        probes = random_probes(porto_small, 8, seed=12)
        want = [engine.strq(x, y, t).candidates for x, y, t in probes]
        original = summary.slice_cache
        summary.slice_cache = ReconstructionCache(capacity=0)
        try:
            got = [engine.strq(x, y, t).candidates for x, y, t in probes]
            assert len(summary.slice_cache) == 0
        finally:
            summary.slice_cache = original
        assert want == got

    def test_clear_keeps_counters(self):
        cache = ReconstructionCache(capacity=2)
        cache.put((0, True), {})
        cache.get((0, True))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_counters_coherent_across_clear(self):
        """hits + misses keeps counting monotonically through clear()."""
        cache = ReconstructionCache(capacity=2)
        cache.put((0, True), {})
        cache.get((0, True))      # hit
        cache.get((1, True))      # miss
        cache.clear()
        cache.get((0, True))      # miss again: clear() emptied the store
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2
        assert stats["hits"] + stats["misses"] == 3


class TestSummarySliceCache:
    def test_slice_matches_per_point_reconstruction(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[5]
        slice_ = summary.reconstruct_slice(t)
        assert set(slice_) == set(summary.trajectories_at(t))
        for tid, point in slice_.items():
            assert point.tobytes() == summary.reconstruct_point(tid, t).tobytes()

    def test_repeated_access_hits_cache(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[6]
        tid = summary.trajectories_at(t)[0]
        summary.reconstruct_point_cached(tid, t)
        hits_before = summary.slice_cache.hits
        first = summary.reconstruct_point_cached(tid, t)
        second = summary.reconstruct_point_cached(tid, t)
        assert summary.slice_cache.hits >= hits_before + 2
        assert first is second  # served from the same cached entry

    def test_negative_caching_for_absent_trajectories(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[0]
        assert summary.reconstruct_point_cached(987_654, t) is None
        assert summary.reconstruct_point_cached(987_654, t) is None

    def test_add_record_invalidates(self, fitted_ppq_s):
        summary = fitted_ppq_s.summary
        t = summary.timestamps[1]
        summary.reconstruct_slice(t)
        assert len(summary.slice_cache) > 0
        summary.add_record(summary.records[t])  # re-adding still invalidates
        assert len(summary.slice_cache) == 0

"""Tests for the Douglas-Peucker / SQUISH line-simplification baselines."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.line_simplification import (
    LineSimplificationSummarizer,
    douglas_peucker_mask,
    squish_mask,
)
from repro.metrics.accuracy import reconstruction_errors


def zigzag(n=30, amplitude=0.01):
    """A zig-zag trajectory whose corners must be retained."""
    xs = np.linspace(0.0, 1.0, n)
    ys = amplitude * (np.arange(n) % 2)
    return np.column_stack([xs, ys])


class TestDouglasPeucker:
    def test_straight_line_keeps_only_endpoints(self):
        points = np.column_stack([np.linspace(0, 1, 50), np.linspace(0, 2, 50)])
        keep = douglas_peucker_mask(points, tolerance=1e-9)
        assert keep[0] and keep[-1]
        assert keep.sum() == 2

    def test_zigzag_keeps_corners_for_tight_tolerance(self):
        points = zigzag()
        keep = douglas_peucker_mask(points, tolerance=1e-6)
        assert keep.sum() == len(points)

    def test_loose_tolerance_drops_zigzag(self):
        points = zigzag(amplitude=0.001)
        keep = douglas_peucker_mask(points, tolerance=0.1)
        assert keep.sum() == 2

    def test_short_inputs(self):
        assert douglas_peucker_mask(np.zeros((0, 2)), 0.1).sum() == 0
        assert douglas_peucker_mask(np.zeros((1, 2)), 0.1).sum() == 1
        assert douglas_peucker_mask(np.zeros((2, 2)), 0.1).sum() == 2

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=3, max_value=60), st.floats(min_value=1e-4, max_value=0.1),
           st.integers(min_value=0, max_value=1000))
    def test_retained_points_bound_deviation(self, n, tolerance, seed):
        """Every dropped point lies within the tolerance of the kept polyline."""
        rng = np.random.default_rng(seed)
        points = np.cumsum(rng.normal(scale=0.01, size=(n, 2)), axis=0)
        keep = douglas_peucker_mask(points, tolerance)
        kept = np.flatnonzero(keep)
        for left, right in zip(kept, kept[1:]):
            segment = points[left:right + 1]
            if len(segment) <= 2:
                continue
            from repro.baselines.line_simplification import _perpendicular_distances

            distances = _perpendicular_distances(segment[1:-1], points[left], points[right])
            assert np.all(distances <= tolerance + 1e-12)


class TestSquish:
    def test_keeps_endpoints(self):
        points = zigzag()
        keep = squish_mask(points, tolerance=0.5)
        assert keep[0] and keep[-1]

    def test_straight_line_reduces_to_endpoints(self):
        points = np.column_stack([np.linspace(0, 1, 40), np.zeros(40)])
        keep = squish_mask(points, tolerance=1e-6)
        assert keep.sum() == 2

    def test_tight_tolerance_keeps_corners(self):
        points = zigzag(amplitude=0.05)
        keep = squish_mask(points, tolerance=1e-4)
        assert keep.sum() > 2

    def test_short_inputs(self):
        assert squish_mask(np.zeros((2, 2)), 0.1).sum() == 2


class TestSummarizer:
    def test_validation(self):
        with pytest.raises(ValueError):
            LineSimplificationSummarizer(tolerance=0.0)
        with pytest.raises(ValueError):
            LineSimplificationSummarizer(tolerance=0.1, algorithm="nope")

    @pytest.mark.parametrize("algorithm", ["douglas-peucker", "squish"])
    def test_every_point_reconstructed(self, porto_small, algorithm):
        summarizer = LineSimplificationSummarizer(tolerance=0.0005, algorithm=algorithm)
        summary = summarizer.summarize(porto_small, t_max=20)
        truncated = porto_small.truncate(20)
        assert summary.num_points == truncated.num_points
        assert len(summary.reconstructions) == truncated.num_points
        assert summary.method in ("Douglas-Peucker", "SQUISH")

    def test_interpolated_error_is_reasonable(self, porto_small):
        summarizer = LineSimplificationSummarizer(tolerance=0.0002)
        summary = summarizer.summarize(porto_small, t_max=30)
        errors = reconstruction_errors(summary, porto_small, t_max=30)
        # Douglas-Peucker bounds the perpendicular deviation; interpolation at
        # the original timestamps stays within a small multiple of it on the
        # smooth synthetic workload.
        assert float(np.median(errors)) < 0.002

    def test_tighter_tolerance_keeps_more_and_compresses_less(self, porto_small):
        tight = LineSimplificationSummarizer(tolerance=0.00005).summarize(porto_small, t_max=30)
        loose = LineSimplificationSummarizer(tolerance=0.002).summarize(porto_small, t_max=30)
        assert tight.storage_bits > loose.storage_bits
        assert tight.compression_ratio() < loose.compression_ratio()

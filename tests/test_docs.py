"""Docs stay honest: links resolve and README examples execute.

These tests mirror the CI docs job so a broken doc fails locally too:
every relative link/anchor in the repo's markdown must resolve, and the
``>>>`` examples in the README are executed with doctest.
"""

from __future__ import annotations

import doctest
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402

MARKDOWN_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)


def test_markdown_files_exist():
    assert REPO_ROOT / "README.md" in MARKDOWN_FILES
    assert any(p.name == "ARCHITECTURE.md" for p in MARKDOWN_FILES)
    assert any(p.name == "ARTIFACT_FORMAT.md" for p in MARKDOWN_FILES)


@pytest.mark.parametrize("path", MARKDOWN_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(path):
    problems = check_links.check_file(path, REPO_ROOT)
    assert problems == []


def test_link_checker_flags_broken_links(tmp_path):
    doc = tmp_path / "broken.md"
    doc.write_text("[missing](no_such_file.md) and [bad](#no-such-anchor)\n")
    problems = check_links.check_file(doc, tmp_path.parent)
    assert len(problems) == 2
    assert any("missing target" in p for p in problems)
    assert any("missing anchor" in p for p in problems)


def test_github_anchor_rules():
    assert check_links.github_anchor("Save & serve") == "save--serve"
    assert check_links.github_anchor("CLI commands") == "cli-commands"
    assert check_links.github_anchor("`repro info`") == "repro-info"


def test_readme_doctest_examples():
    """The README's ``>>>`` quickstart snippets actually run."""
    results = doctest.testfile(
        str(REPO_ROOT / "README.md"),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, "README lost its doctest examples"
    assert results.failed == 0

"""Tests for the TrajectorySummary container and its storage accounting."""

import numpy as np
import pytest

from repro.core.config import CQCConfig, PPQConfig
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.core.summary import SummaryStorage, TimestepRecord, TrajectorySummary
from repro.core.codebook import Codebook


@pytest.fixture(scope="module")
def summary(porto_small):
    quantizer = PartitionwisePredictiveQuantizer(PPQConfig(), CQCConfig())
    return quantizer.summarize(porto_small)


class TestReconstruction:
    def test_reconstruct_point_matches_cache(self, summary, porto_small):
        tid = porto_small.trajectory_ids[0]
        point = summary.reconstruct_point(tid, 3)
        assert point is not None and point.shape == (2,)

    def test_missing_point_returns_none(self, summary):
        assert summary.reconstruct_point(10_000, 0) is None
        assert summary.reconstruct_point(0, 10_000) is None

    def test_reconstruct_path_stops_at_trajectory_end(self, summary, porto_small):
        tid = porto_small.trajectory_ids[0]
        length = len(porto_small.get(tid))
        path = summary.reconstruct_path(tid, length - 2, 10)
        assert len(path) == 2

    def test_reconstruct_path_empty_when_absent(self, summary):
        assert summary.reconstruct_path(10_000, 0, 5).shape == (0, 2)

    def test_recompute_matches_cached_reconstruction(self, porto_small):
        """Reconstruction recomputed purely from the summary parameters must
        equal the online reconstruction cached during quantization."""
        quantizer = PartitionwisePredictiveQuantizer(PPQConfig(), CQCConfig(enabled=False))
        original = quantizer.summarize(porto_small, t_max=15)
        # A fresh summary object with the same records/codebook but an empty
        # reconstruction cache.
        rebuilt = TrajectorySummary(original.config, original.cqc_config,
                                    original.codebook, original.cqc_coder)
        for record in original.records.values():
            rebuilt.add_record(record)
        tid = porto_small.trajectory_ids[0]
        for t in range(0, 15, 3):
            a = original.reconstruct_point(tid, t, use_cqc=False)
            b = rebuilt.reconstruct_point(tid, t, use_cqc=False)
            if a is None:
                assert b is None
            else:
                np.testing.assert_allclose(a, b, atol=1e-9)

    def test_use_cqc_false_returns_base_reconstruction(self, summary, porto_small):
        tid = porto_small.trajectory_ids[0]
        base = summary.reconstruct_point(tid, 5, use_cqc=False)
        refined = summary.reconstruct_point(tid, 5, use_cqc=True)
        truth = porto_small.get(tid).point_at(5)
        # The refined point should not be farther from the truth than the base.
        assert (np.linalg.norm(truth - refined)
                <= np.linalg.norm(truth - base) + 1e-12)


class TestAccessors:
    def test_timestamps_sorted(self, summary):
        assert summary.timestamps == sorted(summary.timestamps)

    def test_trajectories_at(self, summary, porto_small):
        expected = sorted(int(t) for t in porto_small.time_slice(0).traj_ids)
        assert summary.trajectories_at(0) == expected

    def test_trajectories_at_missing_timestamp(self, summary):
        assert summary.trajectories_at(10_000) == []

    def test_num_codewords_positive(self, summary):
        assert summary.num_codewords > 0


class TestStorageAccounting:
    def test_storage_fields_positive(self, summary):
        storage = summary.storage()
        assert storage.codebook_bits > 0
        assert storage.codeword_index_bits > 0
        assert storage.coefficient_bits > 0
        assert storage.cqc_bits > 0
        assert storage.total_bits == (
            storage.codebook_bits + storage.codeword_index_bits
            + storage.coefficient_bits + storage.partition_assignment_bits
            + storage.cqc_bits
        )

    def test_total_bytes(self):
        storage = SummaryStorage(codebook_bits=16)
        assert storage.total_bytes == 2.0

    def test_compression_ratio_definition(self, summary):
        ratio = summary.compression_ratio()
        raw_bits = summary.num_points * 2 * 8 * 8
        assert ratio == pytest.approx(raw_bits / summary.storage().total_bits)

    def test_basic_variant_has_no_cqc_bits(self, porto_small):
        quantizer = PartitionwisePredictiveQuantizer(PPQConfig(), CQCConfig(enabled=False))
        basic = quantizer.summarize(porto_small, t_max=10)
        assert basic.storage().cqc_bits == 0

    def test_empty_summary_ratio_is_infinite(self):
        summary = TrajectorySummary(PPQConfig(), CQCConfig(enabled=False), Codebook())
        assert summary.compression_ratio() == float("inf")


class TestTimestepRecord:
    def test_counts(self):
        record = TimestepRecord(t=0)
        record.codeword_index = {1: 0, 2: 1}
        record.coefficients = {0: np.zeros(2)}
        assert record.num_points == 2
        assert record.num_partitions == 1

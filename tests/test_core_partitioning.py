"""Tests for the partitioning machinery (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import PPQConfig
from repro.core.partitioning import IncrementalPartitioner, partition_points


class TestPartitionPoints:
    def test_single_cluster_when_threshold_is_large(self):
        points = np.random.default_rng(0).normal(scale=0.01, size=(50, 2))
        labels, centroids, rounds = partition_points(points, epsilon_p=10.0)
        assert len(np.unique(labels)) == 1
        assert rounds == 1

    def test_threshold_enforced(self):
        rng = np.random.default_rng(1)
        points = np.vstack([
            rng.normal(loc=0.0, scale=0.01, size=(40, 2)),
            rng.normal(loc=1.0, scale=0.01, size=(40, 2)),
        ])
        labels, centroids, _ = partition_points(points, epsilon_p=0.2, seed=3)
        deviations = np.linalg.norm(points - centroids[labels], axis=1)
        assert np.all(deviations <= 0.2)

    def test_more_clusters_for_tighter_threshold(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(0, 1, size=(120, 2))
        _, centroids_loose, _ = partition_points(points, epsilon_p=0.5, seed=0)
        _, centroids_tight, _ = partition_points(points, epsilon_p=0.1, seed=0)
        assert len(centroids_tight) >= len(centroids_loose)

    def test_empty_input(self):
        labels, centroids, rounds = partition_points(np.empty((0, 2)), epsilon_p=0.1)
        assert len(labels) == 0
        assert rounds == 0

    def test_max_partitions_cap(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 1, size=(60, 2))
        labels, centroids, _ = partition_points(points, epsilon_p=1e-9, max_partitions=8)
        assert len(centroids) <= max(8, 60)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=80), st.floats(min_value=0.05, max_value=1.0))
    def test_every_point_within_threshold_property(self, n, eps):
        rng = np.random.default_rng(n)
        points = rng.uniform(0, 1, size=(n, 2))
        labels, centroids, _ = partition_points(points, epsilon_p=eps, seed=1)
        deviations = np.linalg.norm(points - centroids[labels], axis=1)
        # Either the bound holds or the partitioner hit the cap (n points).
        assert np.all(deviations <= eps + 1e-9) or len(centroids) >= min(n, 256)


class TestIncrementalPartitioner:
    def _two_cluster_features(self, n_per=20, separation=1.0, jitter=0.01, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(loc=0.0, scale=jitter, size=(n_per, 2))
        b = rng.normal(loc=separation, scale=jitter, size=(n_per, 2))
        features = np.vstack([a, b])
        traj_ids = np.arange(2 * n_per)
        return traj_ids, features

    def test_initial_partitioning_separates_clusters(self):
        traj_ids, features = self._two_cluster_features()
        partitioner = IncrementalPartitioner(PPQConfig(epsilon_p=0.2))
        groups = partitioner.update(traj_ids, features)
        assert partitioner.num_partitions >= 2
        # Points of the two clusters must not share a partition.
        pid_of = {}
        for pid, rows in groups.items():
            for row in rows:
                pid_of[int(traj_ids[row])] = pid
        first_cluster_pids = {pid_of[i] for i in range(20)}
        second_cluster_pids = {pid_of[i] for i in range(20, 40)}
        assert not (first_cluster_pids & second_cluster_pids)

    def test_carry_over_preserves_co_membership_when_stable(self):
        traj_ids, features = self._two_cluster_features()
        partitioner = IncrementalPartitioner(PPQConfig(epsilon_p=0.2))
        partitioner.update(traj_ids, features)
        before = {tid: partitioner.partition_of(tid) for tid in traj_ids}
        # Same features again: no re-splits may happen (only merges are
        # allowed on stable data), so trajectories that shared a partition
        # must still share one.
        partitioner.update(traj_ids, features + 1e-5)
        after = {tid: partitioner.partition_of(tid) for tid in traj_ids}
        assert partitioner.stats["resplits"] == 0
        for a in traj_ids:
            for b in traj_ids:
                if before[a] == before[b]:
                    assert after[a] == after[b]

    def test_new_trajectories_get_assigned(self):
        traj_ids, features = self._two_cluster_features()
        partitioner = IncrementalPartitioner(PPQConfig(epsilon_p=0.2))
        partitioner.update(traj_ids, features)
        new_ids = np.arange(100, 105)
        new_features = np.full((5, 2), 3.0)
        groups = partitioner.update(
            np.concatenate([traj_ids, new_ids]),
            np.vstack([features, new_features]),
        )
        assert all(partitioner.partition_of(int(tid)) is not None for tid in new_ids)
        total_rows = sum(len(rows) for rows in groups.values())
        assert total_rows == len(traj_ids) + 5

    def test_resplit_when_partition_drifts_apart(self):
        traj_ids, features = self._two_cluster_features(separation=0.05)
        config = PPQConfig(epsilon_p=0.2)
        partitioner = IncrementalPartitioner(config)
        partitioner.update(traj_ids, features)
        assert partitioner.num_partitions == 1
        # Second half of the trajectories moves far away -> threshold violated
        # -> the partition must be re-split.
        drifted = features.copy()
        drifted[20:] += 5.0
        partitioner.update(traj_ids, drifted)
        assert partitioner.num_partitions >= 2
        assert partitioner.stats["resplits"] >= 1

    def test_merge_of_converging_partitions(self):
        traj_ids, features = self._two_cluster_features(separation=2.0)
        config = PPQConfig(epsilon_p=0.3)
        partitioner = IncrementalPartitioner(config)
        partitioner.update(traj_ids, features)
        assert partitioner.num_partitions >= 2
        # Both clusters converge onto the same location -> centroids get close
        # -> partitions merge (at most one merge per partition per step).
        converged = np.zeros_like(features)
        partitioner.update(traj_ids, converged)
        assert partitioner.stats["merges"] >= 1

    def test_groups_are_disjoint_and_complete(self):
        traj_ids, features = self._two_cluster_features()
        partitioner = IncrementalPartitioner(PPQConfig(epsilon_p=0.2))
        groups = partitioner.update(traj_ids, features)
        seen = sorted(int(row) for rows in groups.values() for row in rows)
        assert seen == list(range(len(traj_ids)))

    def test_alignment_validation(self):
        partitioner = IncrementalPartitioner(PPQConfig())
        with pytest.raises(ValueError):
            partitioner.update(np.arange(3), np.zeros((2, 2)))

"""Tests for the coordinate quadtree template."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cqc.quadtree import CoordinateQuadtree


class TestConstruction:
    def test_single_cell(self):
        tree = CoordinateQuadtree(1, 1)
        assert tree.num_cells == 1
        assert tree.encode_cell(0, 0) == ""

    def test_all_cells_coded(self):
        tree = CoordinateQuadtree(5, 5)
        assert tree.num_cells == 25

    def test_paper_example_code_length(self):
        """The paper's 5x5 example produces 6-bit codes (3 levels)."""
        tree = CoordinateQuadtree(5, 5)
        assert tree.code_length == 6

    def test_power_of_two_grid(self):
        tree = CoordinateQuadtree(4, 4)
        assert tree.num_cells == 16
        assert tree.code_length == 4

    def test_rectangular_grid(self):
        tree = CoordinateQuadtree(3, 7)
        assert tree.num_cells == 21

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CoordinateQuadtree(0, 3)


class TestCoding:
    def test_codes_are_unique(self):
        tree = CoordinateQuadtree(6, 6)
        codes = [tree.encode_cell(ix, iy) for ix, iy in tree.cells()]
        assert len(set(codes)) == len(codes)

    def test_roundtrip_all_cells(self):
        tree = CoordinateQuadtree(7, 5)
        for ix, iy in tree.cells():
            code = tree.encode_cell(ix, iy)
            assert tree.decode_cell(code) == (ix, iy)

    def test_unknown_cell_raises(self):
        tree = CoordinateQuadtree(3, 3)
        with pytest.raises(KeyError):
            tree.encode_cell(5, 5)
        with pytest.raises(KeyError):
            tree.encode_cell(-1, 0)

    def test_unknown_code_raises(self):
        tree = CoordinateQuadtree(3, 3)
        with pytest.raises(KeyError):
            tree.decode_cell("000000000000")

    def test_codes_are_even_length(self):
        """Every level contributes exactly two bits (a quadrant label)."""
        tree = CoordinateQuadtree(9, 9)
        for ix, iy in tree.cells():
            assert len(tree.encode_cell(ix, iy)) % 2 == 0

    def test_code_length_is_logarithmic(self):
        """Code length is 2 * ceil(log2(side)) bits."""
        for side, expected in [(2, 2), (3, 4), (4, 4), (5, 6), (8, 6), (9, 8)]:
            tree = CoordinateQuadtree(side, side)
            assert tree.code_length == expected, f"side={side}"

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=24), st.integers(min_value=1, max_value=24))
    def test_roundtrip_property(self, nx, ny):
        tree = CoordinateQuadtree(nx, ny)
        assert tree.num_cells == nx * ny
        for ix, iy in tree.cells():
            assert tree.decode_cell(tree.encode_cell(ix, iy)) == (ix, iy)

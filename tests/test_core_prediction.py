"""Tests for the linear predictor and AR(k) feature extraction."""

import numpy as np
import pytest

from repro.core.prediction import (
    LinearPredictor,
    build_history_tensor,
    estimate_ar_coefficients,
)


def constant_velocity_history(n=50, order=2, seed=0):
    """Points moving with constant velocity: x_t = 2*x_{t-1} - x_{t-2}."""
    rng = np.random.default_rng(seed)
    start = rng.normal(size=(n, 2))
    velocity = rng.normal(scale=0.1, size=(n, 2))
    prev1 = start + velocity          # position at t-1
    prev2 = start                     # position at t-2
    target = start + 2 * velocity     # position at t
    history = np.stack([prev1, prev2], axis=1)
    return history, target


class TestLinearPredictor:
    def test_recovers_constant_velocity_model(self):
        history, target = constant_velocity_history()
        predictor = LinearPredictor(order=2)
        coeffs = predictor.fit(history, target)
        # The exact solution is P1 = 2, P2 = -1.
        assert coeffs[0] == pytest.approx(2.0, abs=1e-4)
        assert coeffs[1] == pytest.approx(-1.0, abs=1e-4)

    def test_prediction_error_is_small_for_learnable_data(self):
        history, target = constant_velocity_history(seed=3)
        predictor = LinearPredictor(order=2)
        predictor.fit(history, target)
        predictions = predictor.predict(history)
        errors = np.linalg.norm(predictions - target, axis=1)
        assert errors.max() < 1e-6

    def test_unfitted_predictor_uses_persistence(self):
        predictor = LinearPredictor(order=2)
        history = np.array([[[1.0, 2.0], [0.0, 0.0]]])
        prediction = predictor.predict(history)
        np.testing.assert_allclose(prediction[0], [1.0, 2.0])

    def test_fit_empty_falls_back_to_persistence(self):
        predictor = LinearPredictor(order=3)
        coeffs = predictor.fit(np.empty((0, 3, 2)), np.empty((0, 2)))
        np.testing.assert_allclose(coeffs, [1.0, 0.0, 0.0])

    def test_shape_validation(self):
        predictor = LinearPredictor(order=2)
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((5, 3, 2)), np.zeros((5, 2)))
        with pytest.raises(ValueError):
            predictor.fit(np.zeros((5, 2, 2)), np.zeros((4, 2)))

    def test_order_validation(self):
        with pytest.raises(ValueError):
            LinearPredictor(order=0)

    def test_collinear_history_is_stable(self):
        """Identical lags (stationary object) must not blow up numerically."""
        history = np.zeros((20, 2, 2))
        history[:] = 1.0
        target = np.ones((20, 2))
        predictor = LinearPredictor(order=2)
        coeffs = predictor.fit(history, target)
        assert np.all(np.isfinite(coeffs))
        predictions = predictor.predict(history)
        np.testing.assert_allclose(predictions, target, atol=1e-6)


class TestARCoefficients:
    def test_shape(self):
        histories = np.random.default_rng(0).normal(size=(10, 3, 2))
        targets = np.random.default_rng(1).normal(size=(10, 2))
        coeffs = estimate_ar_coefficients(histories, targets)
        assert coeffs.shape == (10, 3)

    def test_stationary_point_has_unit_lag1_coefficient(self):
        """A stationary trajectory's current point equals its lag-1 point, so
        the normalised correlation feature for lag 1 is 1."""
        point = np.array([0.3, 0.4])
        histories = np.tile(point, (5, 1, 1))
        targets = np.tile(point, (5, 1))
        coeffs = estimate_ar_coefficients(histories, targets)
        np.testing.assert_allclose(coeffs[:, 0], 1.0, atol=1e-4)

    def test_different_dynamics_yield_different_features(self):
        """Fast movers and stationary objects must be distinguishable --
        the property the PPQ-A partitioning relies on."""
        stationary_history = np.tile(np.array([0.5, 0.5]), (1, 2, 1))
        stationary_target = np.array([[0.5, 0.5]])
        moving_history = np.array([[[1.0, 1.0], [0.5, 0.5]]])
        moving_target = np.array([[2.0, 2.0]])
        a = estimate_ar_coefficients(stationary_history, stationary_target)
        b = estimate_ar_coefficients(moving_history, moving_target)
        assert not np.allclose(a, b)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            estimate_ar_coefficients(np.zeros((5, 2)), np.zeros((5, 2)))
        with pytest.raises(ValueError):
            estimate_ar_coefficients(np.zeros((5, 2, 2)), np.zeros((4, 2)))


class TestBuildHistoryTensor:
    def test_stacks_in_order(self):
        recent = np.ones((3, 2))
        older = np.zeros((3, 2))
        tensor = build_history_tensor([recent, older])
        assert tensor.shape == (3, 2, 2)
        np.testing.assert_array_equal(tensor[:, 0], recent)
        np.testing.assert_array_equal(tensor[:, 1], older)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            build_history_tensor([])

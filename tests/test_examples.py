"""Smoke tests for the runnable examples.

The examples are part of the public deliverable, so we make sure they run end
to end.  Only the two fast ones are executed as subprocesses; the heavier
studies are exercised indirectly by the benchmark harness.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def _run_example(name: str, timeout: int = 240) -> subprocess.CompletedProcess:
    env = {"PYTHONPATH": str(SRC_DIR)}
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


@pytest.mark.parametrize("name, expected", [
    ("quickstart.py", "STRQ"),
    ("compression_study.py", "PPQ-A"),
])
def test_example_runs_and_prints_expected_output(name, expected):
    result = _run_example(name)
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout


def test_example_files_exist():
    expected = {"quickstart.py", "fleet_monitoring.py", "compression_study.py",
                "disk_io_study.py"}
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert expected <= present

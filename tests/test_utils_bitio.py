"""Tests for repro.utils.bitio."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_write_bit_and_length(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bit(0)
        assert writer.bit_length == 2
        assert writer.to_bitstring() == "10"

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.to_bitstring() == "101"

    def test_write_bits_zero_width(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.bit_length == 0

    def test_write_bits_overflow_raises(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(8, 3)

    def test_invalid_bit_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_bit(2)

    def test_write_code(self):
        writer = BitWriter()
        writer.write_code("0110")
        assert writer.to_bitstring() == "0110"

    def test_write_code_invalid_char(self):
        with pytest.raises(ValueError):
            BitWriter().write_code("01x")

    def test_to_bytes_padding(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.to_bytes() == b"\xa0"

    def test_negative_value_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(-1, 4)


class TestBitReader:
    def test_read_bits_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b11010, 5)
        reader = BitReader(writer.to_bytes(), bit_length=writer.bit_length)
        assert reader.read_bits(5) == 0b11010

    def test_read_from_bitstring(self):
        reader = BitReader("1011")
        assert reader.read_bits(4) == 0b1011

    def test_eof_raises(self):
        reader = BitReader("1")
        reader.read_bit()
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_remaining(self):
        reader = BitReader("1010")
        reader.read_bit()
        assert reader.remaining == 3


class TestUnaryAndGamma:
    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in [0, 1, 5]:
            writer.write_unary(value)
        reader = BitReader(writer.to_bitstring())
        assert [reader.read_unary() for _ in range(3)] == [0, 1, 5]

    def test_unary_negative_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_elias_gamma_roundtrip(self):
        writer = BitWriter()
        values = [1, 2, 3, 7, 100, 12345]
        for value in values:
            writer.write_elias_gamma(value)
        reader = BitReader(writer.to_bitstring())
        assert [reader.read_elias_gamma() for _ in values] == values

    def test_elias_gamma_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BitWriter().write_elias_gamma(0)

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=50))
    def test_elias_gamma_roundtrip_property(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_elias_gamma(value)
        reader = BitReader(writer.to_bytes(), bit_length=writer.bit_length)
        assert [reader.read_elias_gamma() for _ in values] == values

    @given(st.lists(st.integers(min_value=0, max_value=2**20 - 1), min_size=1, max_size=50))
    def test_fixed_width_roundtrip_property(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_bits(value, 20)
        reader = BitReader(writer.to_bytes(), bit_length=writer.bit_length)
        assert [reader.read_bits(20) for _ in values] == values

"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import ensure_in_range, ensure_points_array, ensure_positive


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive("x", 0.5) == 0.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            ensure_positive("x", 0.0)
        with pytest.raises(ValueError):
            ensure_positive("x", -1.0)

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="epsilon"):
            ensure_positive("epsilon", -1)


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert ensure_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert ensure_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range("x", 1.5, 0.0, 1.0)


class TestEnsurePointsArray:
    def test_list_of_pairs(self):
        arr = ensure_points_array([[0.0, 1.0], [2.0, 3.0]])
        assert arr.shape == (2, 2)
        assert arr.dtype == float

    def test_single_pair_is_promoted(self):
        arr = ensure_points_array([1.0, 2.0])
        assert arr.shape == (1, 2)

    def test_empty_rejected_by_default(self):
        with pytest.raises(ValueError, match="at least one point"):
            ensure_points_array([])

    def test_empty_allowed_when_opted_in(self):
        arr = ensure_points_array([], allow_empty=True)
        assert arr.shape == (0, 2)
        arr = ensure_points_array(np.empty((0, 2)), allow_empty=True)
        assert arr.shape == (0, 2)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            ensure_points_array([[0.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            ensure_points_array([[np.inf, 1.0], [0.0, 0.0]])

    def test_nan_rejected_even_with_allow_empty(self):
        with pytest.raises(ValueError, match="non-finite"):
            ensure_points_array([[0.0, 1.0], [np.nan, 2.0]], allow_empty=True)

    def test_error_names_first_bad_row(self):
        with pytest.raises(ValueError, match="index 1"):
            ensure_points_array([[0.0, 1.0], [np.nan, 2.0]])

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            ensure_points_array(np.zeros((3, 3)))

    def test_wrong_1d_length_rejected(self):
        with pytest.raises(ValueError):
            ensure_points_array([1.0, 2.0, 3.0])

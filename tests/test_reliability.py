"""Fault-matrix tests for the reliability layer (fault injection, retry,
graceful degradation).

The acceptance criterion under test: with faults injected into the decode
path (every TPI cell decode, Huffman decode, or bit read), STRQ/TPQ answered
through a degrading :class:`QueryEngine` return results *identical* to the
fault-free path -- the engine quarantines the failing cell, recomputes its
postings from the summary reconstructions, and retries.

``CHAOS_SEED`` parameterises the probabilistic cases; CI runs the suite once
with the fixed default and once with a randomized seed (echoed in the log),
so a failure is always reproducible by exporting the same value.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import PPQTrajectory
from repro.data.synthetic import generate_porto_like
from repro.index.grid import PostingDecodeError
from repro.queries.batch import Workload
from repro.queries.engine import QueryEngine
from repro.reliability import (
    INJECTION_POINTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    QueryError,
    RetryExhaustedError,
    RetryPolicy,
    inject_faults,
    is_transient_error,
    recompute_cell_postings,
)
from repro.reliability import faults as faults_module
from repro.storage import load_model

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "1337"))

#: Decode-path points where a persistent fault is recoverable by cell repair.
DECODE_POINTS = ("index.cell_decode", "huffman.decode", "bitio.read")


# ---------------------------------------------------------------------- #
# fixtures -- module-local system: quarantine repairs mutate grid caches,
# so these tests must not share the session-scoped fitted fixtures.
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dataset():
    # Small on purpose: persistent-fault tests quarantine and repair every
    # decoded cell, and repair cost grows with cells x period length.
    return generate_porto_like(num_trajectories=15, max_length=35, seed=11)


@pytest.fixture(scope="module")
def system(dataset):
    return PPQTrajectory.ppq_s().fit(dataset)


@pytest.fixture(scope="module")
def probes(dataset):
    rng = np.random.default_rng(CHAOS_SEED)
    ids = dataset.trajectory_ids
    out = []
    while len(out) < 15:
        traj = dataset.get(int(rng.choice(ids)))
        row = int(rng.integers(0, len(traj)))
        out.append((float(traj.points[row, 0]), float(traj.points[row, 1]),
                    int(traj.timestamps[row])))
    return out


@pytest.fixture(scope="module")
def clean_results(system, probes):
    """Fault-free scalar answers, computed once on the model's own engine."""
    strq = [system.strq(x, y, t) for x, y, t in probes]
    tpq = [system.tpq(x, y, t, length=6) for x, y, t in probes]
    assert any(r.candidates for r in strq), "probes never hit the index"
    return strq, tpq


def fresh_engine(system, **kwargs):
    """A new engine with a freshly built index -- no caches can mask faults."""
    return QueryEngine(system.summary, system.engine.index_config,
                       raw_dataset=system.engine.raw_dataset, **kwargs)


def assert_strq_equal(a, b):
    assert a.candidates == b.candidates
    assert sorted(a.reconstructed) == sorted(b.reconstructed)
    for tid in a.reconstructed:
        assert np.array_equal(a.reconstructed[tid], b.reconstructed[tid])


def assert_tpq_equal(a, b):
    assert sorted(a.paths) == sorted(b.paths)
    for tid in a.paths:
        assert np.array_equal(a.paths[tid], b.paths[tid])


# ---------------------------------------------------------------------- #
# fault plan / injector mechanics
# ---------------------------------------------------------------------- #
class TestFaultInjection:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan().add("index.bogus")
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan.from_spec(["storage.section_read", "nope"])

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan().add("bitio.read", probability=1.5)

    def test_inactive_by_default(self):
        assert faults_module.ACTIVE is None

    def test_context_manager_restores_previous(self):
        plan = FaultPlan().add("bitio.read")
        with inject_faults(plan) as outer:
            assert faults_module.ACTIVE is outer
            with inject_faults(FaultPlan()) as inner:
                assert faults_module.ACTIVE is inner
            assert faults_module.ACTIVE is outer
        assert faults_module.ACTIVE is None

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with inject_faults(FaultPlan()):
                raise RuntimeError("boom")
        assert faults_module.ACTIVE is None

    def test_max_fires_limits_faults(self):
        injector = FaultInjector(FaultPlan().add("bitio.read", max_fires=2))
        fired = 0
        for _ in range(5):
            try:
                injector.check("bitio.read")
            except FaultError:
                fired += 1
        assert fired == 2
        assert injector.fired == {"bitio.read": 2}
        assert injector.checked == {"bitio.read": 5}
        assert injector.total_fired == 2

    def test_key_scoped_rule(self):
        injector = FaultInjector(FaultPlan().add("index.cell_decode", key=(1, 2)))
        injector.check("index.cell_decode", key=(0, 0))  # no fault
        with pytest.raises(FaultError) as err:
            injector.check("index.cell_decode", key=(1, 2))
        assert err.value.key == (1, 2)
        assert err.value.point == "index.cell_decode"

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            injector = FaultInjector(
                FaultPlan(seed=seed).add("huffman.decode", probability=0.5))
            fires = []
            for _ in range(64):
                try:
                    injector.check("huffman.decode")
                    fires.append(False)
                except FaultError:
                    fires.append(True)
            return fires

        assert pattern(CHAOS_SEED) == pattern(CHAOS_SEED)
        assert any(pattern(CHAOS_SEED)) and not all(pattern(CHAOS_SEED))

    def test_transient_flag_propagates(self):
        injector = FaultInjector(FaultPlan().add("bitio.read", transient=True))
        with pytest.raises(FaultError) as err:
            injector.check("bitio.read")
        assert err.value.transient
        assert is_transient_error(err.value)

    def test_every_injection_point_is_reachable(self, system, probes, tmp_path):
        """Each named point fires somewhere on the save/load/query path."""
        path = tmp_path / "m.ppq"
        system.save(path)
        t0 = system.summary.timestamps[0]
        tid = sorted(system.summary.trajectories_at(t0))[0]

        def exercise_everything():
            for step in (
                lambda: load_model(path),
                lambda: [fresh_engine(system).strq(px, py, pt)
                         for px, py, pt in probes],
                lambda: system.summary.reconstruct_point(tid, t0),
            ):
                try:
                    step()
                except Exception:  # noqa: BLE001 - faults are the point here
                    pass

        for point in INJECTION_POINTS:
            plan = FaultPlan().add(point, max_fires=1)
            with inject_faults(plan) as injector:
                exercise_everything()
            assert injector.total_fired >= 1, f"{point} never fired"


# ---------------------------------------------------------------------- #
# retry policy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)

    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise FaultError("bitio.read", transient=True)
            return "ok"

        sleeps = []
        policy = RetryPolicy(max_retries=3, backoff=0.1, multiplier=2.0)
        assert policy.call(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(backoff=1.0, multiplier=10.0, max_backoff=2.5)
        assert policy.delay_for(0) == pytest.approx(1.0)
        assert policy.delay_for(1) == pytest.approx(2.5)
        assert policy.delay_for(5) == pytest.approx(2.5)

    def test_exhaustion_raises_with_last_error(self):
        def always_fails():
            raise FaultError("bitio.read", transient=True)

        policy = RetryPolicy(max_retries=2, backoff=0.0)
        with pytest.raises(RetryExhaustedError) as err:
            policy.call(always_fails, sleep=lambda _: None)
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, FaultError)
        assert not err.value.deadline_exceeded

    def test_non_transient_error_propagates_raw(self):
        def fails():
            raise FaultError("index.cell_decode", transient=False)

        with pytest.raises(FaultError):
            RetryPolicy(max_retries=5, backoff=0.0).call(fails, sleep=lambda _: None)

    def test_deadline_stops_retrying(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        def always_fails():
            clock["now"] += 0.4
            raise FaultError("bitio.read", transient=True)

        policy = RetryPolicy(max_retries=50, backoff=0.1, deadline=1.0)
        with pytest.raises(RetryExhaustedError) as err:
            policy.call(always_fails, sleep=fake_sleep, clock=fake_clock)
        assert err.value.deadline_exceeded
        assert err.value.attempts < 50

    def test_custom_retryable_predicate(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("spurious")
            return 42

        policy = RetryPolicy(max_retries=1, backoff=0.0)
        assert policy.call(flaky, retryable=lambda e: isinstance(e, ValueError),
                           sleep=lambda _: None) == 42


# ---------------------------------------------------------------------- #
# graceful degradation -- the acceptance criterion
# ---------------------------------------------------------------------- #
class TestGracefulDegradation:
    @pytest.mark.parametrize("point", DECODE_POINTS)
    def test_scalar_queries_identical_under_persistent_faults(
            self, system, probes, clean_results, point):
        """Faults in every cell decode must not change a single answer."""
        clean_strq, clean_tpq = clean_results
        engine = fresh_engine(system)
        plan = FaultPlan(seed=CHAOS_SEED).add(point)
        with inject_faults(plan) as injector:
            for (x, y, t), want in zip(probes, clean_strq):
                assert_strq_equal(want, engine.strq(x, y, t))
            for (x, y, t), want in zip(probes, clean_tpq):
                assert_tpq_equal(want, engine.tpq(x, y, t, length=6))
        assert injector.total_fired > 0, f"{point} never fired; test is vacuous"
        assert engine.quarantined, "no cell was quarantined"
        for record in engine.quarantined:
            assert record.period_start <= record.period_end
            assert record.reason

    @pytest.mark.parametrize("point", DECODE_POINTS)
    def test_batch_queries_identical_under_persistent_faults(
            self, system, probes, point):
        # The batched lookups scan whole periods, so a handful of probes
        # already exercises quarantine/repair across many cells; more probes
        # only add runtime, not coverage.
        workload = Workload.from_obj(
            [{"type": ("strq", "tpq")[i % 2], "x": x, "y": y, "t": t,
              "length": 6}
             for i, (x, y, t) in enumerate(probes[:6])])
        clean = system.engine.run_batch(workload)
        engine = fresh_engine(system)
        plan = FaultPlan(seed=CHAOS_SEED).add(point)
        with inject_faults(plan) as injector:
            faulted = engine.run_batch(workload, isolate=True)
        assert injector.total_fired > 0
        assert not any(isinstance(r, QueryError) for r in faulted)
        for want, got in zip(clean, faulted):
            assert type(want) is type(got)
            if hasattr(want, "paths"):
                assert_tpq_equal(want, got)
            else:
                assert_strq_equal(want, got)

    def test_probabilistic_faults_also_degrade_cleanly(
            self, system, probes, clean_results):
        clean_strq, _ = clean_results
        engine = fresh_engine(system)
        plan = FaultPlan(seed=CHAOS_SEED).add("index.cell_decode", probability=0.5)
        with inject_faults(plan):
            for (x, y, t), want in zip(probes, clean_strq):
                assert_strq_equal(want, engine.strq(x, y, t))

    def test_fail_fast_mode_raises(self, system, probes):
        engine = fresh_engine(system, on_fault="raise")
        plan = FaultPlan().add("index.cell_decode")
        with inject_faults(plan):
            with pytest.raises(PostingDecodeError):
                for x, y, t in probes:
                    engine.strq(x, y, t)
        assert not engine.quarantined

    def test_transient_faults_absorbed_by_retry(self, system, probes, clean_results):
        """A flaky lookup that fails twice then succeeds is retried away."""
        clean_strq, _ = clean_results
        engine = fresh_engine(system, retry_policy=RetryPolicy(max_retries=3,
                                                               backoff=0.0))
        plan = FaultPlan().add("index.tpi_lookup", max_fires=2, transient=True)
        with inject_faults(plan) as injector:
            for (x, y, t), want in zip(probes, clean_strq):
                assert_strq_equal(want, engine.strq(x, y, t))
        assert injector.total_fired == 2
        assert not engine.quarantined  # retries sufficed; nothing was repaired

    def test_transient_decode_faults_absorbed_by_retry(self, system, probes,
                                                       clean_results):
        clean_strq, _ = clean_results
        engine = fresh_engine(system, retry_policy=RetryPolicy(max_retries=3,
                                                               backoff=0.0))
        plan = FaultPlan().add("summary.reconstruct", max_fires=2, transient=True)
        with inject_faults(plan):
            for (x, y, t), want in zip(probes, clean_strq):
                assert_strq_equal(want, engine.strq(x, y, t))

    def test_persistent_transient_marked_fault_exhausts_then_degrades(
            self, system, probes, clean_results):
        """Retries run out against persistent corruption; repair still wins."""
        clean_strq, _ = clean_results
        engine = fresh_engine(system, retry_policy=RetryPolicy(max_retries=1,
                                                               backoff=0.0))
        plan = FaultPlan(seed=CHAOS_SEED).add("index.cell_decode", transient=True)
        with inject_faults(plan):
            for (x, y, t), want in zip(probes, clean_strq):
                assert_strq_equal(want, engine.strq(x, y, t))
        assert engine.quarantined

    def test_unguarded_engine_fails_without_reliability_layer(self, system, probes):
        """Sanity: the faults are real -- without degradation they surface."""
        engine = fresh_engine(system, on_fault="raise")
        plan = FaultPlan().add("bitio.read")
        with inject_faults(plan):
            with pytest.raises((PostingDecodeError, FaultError)):
                for x, y, t in probes:
                    engine.strq(x, y, t)

    def test_recomputed_postings_match_stored_postings(self, system):
        """The repair path rebuilds exactly what the artifact stored."""
        engine = fresh_engine(system)
        checked = 0
        for period in engine.index.periods:
            for grid in period.index.grids:
                for cell in list(grid._cells)[:3]:
                    recovered = recompute_cell_postings(
                        system.summary, grid, cell, period.start, period.end)
                    assert recovered == sorted(grid.ids_in_cell(cell))
                    checked += 1
            if checked >= 12:
                break
        assert checked > 0

    def test_repair_is_durable_across_queries(self, system, probes, clean_results):
        """Once repaired, a cell keeps serving after faults are disarmed."""
        clean_strq, _ = clean_results
        engine = fresh_engine(system)
        with inject_faults(FaultPlan().add("index.cell_decode")):
            for x, y, t in probes:
                engine.strq(x, y, t)
        quarantined = len(engine.quarantined)
        assert quarantined > 0
        # Faults off: the patched cells still answer identically.
        for (x, y, t), want in zip(probes, clean_strq):
            assert_strq_equal(want, engine.strq(x, y, t))
        assert len(engine.quarantined) == quarantined


# ---------------------------------------------------------------------- #
# per-query isolation in run_batch
# ---------------------------------------------------------------------- #
class TestBatchIsolation:
    def test_exact_without_raw_raises_unless_isolated(self, system, probes):
        engine = QueryEngine(system.summary, system.engine.index_config,
                             raw_dataset=None)
        x, y, t = probes[0]
        workload = Workload.from_obj([
            {"type": "strq", "x": x, "y": y, "t": t},
            {"type": "exact", "x": x, "y": y, "t": t},
        ])
        with pytest.raises(RuntimeError, match="raw dataset"):
            engine.run_batch(workload)
        results = engine.run_batch(workload, isolate=True)
        assert not isinstance(results[0], QueryError)
        assert isinstance(results[1], QueryError)
        assert results[1].index == 1
        assert results[1].kind == "exact"
        assert results[1].error_type == "RuntimeError"
        assert "raw dataset" in results[1].message

    def test_isolated_errors_keep_positions_aligned(self, system, probes):
        """Failing queries produce records in place; the rest still answer."""
        engine = fresh_engine(system, on_fault="raise")
        workload = Workload.from_obj(
            [{"type": "strq", "x": x, "y": y, "t": t} for x, y, t in probes])
        plan = FaultPlan(seed=CHAOS_SEED).add("index.cell_decode",
                                              probability=0.7)
        with inject_faults(plan):
            results = engine.run_batch(workload, isolate=True)
        assert len(results) == len(probes)
        errors = [r for r in results if isinstance(r, QueryError)]
        assert errors, "no query failed; isolation test is vacuous"
        for err in errors:
            assert results[err.index] is err
            assert err.kind == "strq"
            assert err.error_type

    def test_query_error_from_exception_captures_transience(self):
        err = QueryError.from_exception(3, "tpq",
                                        FaultError("bitio.read", transient=True))
        assert err.index == 3 and err.kind == "tpq"
        assert err.transient
        persistent = QueryError.from_exception(0, "strq", ValueError("bad"))
        assert not persistent.transient


# ---------------------------------------------------------------------- #
# storage fault injection
# ---------------------------------------------------------------------- #
class TestStorageFaults:
    def test_section_read_fault_fails_load(self, system, tmp_path):
        path = tmp_path / "m.ppq"
        system.save(path)
        plan = FaultPlan().add("storage.section_read", key="RECORDS")
        with inject_faults(plan) as injector:
            with pytest.raises(FaultError):
                load_model(path)
        assert injector.fired.get("storage.section_read") == 1

    def test_load_succeeds_with_faults_disarmed(self, system, tmp_path):
        path = tmp_path / "m.ppq"
        system.save(path)
        loaded = load_model(path)
        assert loaded.summary.num_points == system.summary.num_points

"""Cross-module property-based tests of the paper's core invariants.

These complement the per-module unit tests by checking, on randomly generated
workloads, the three guarantees the system's correctness rests on:

* Definition 3.2 / Equation 3 -- the base reconstruction error never exceeds
  ``epsilon1``;
* Lemma 3 -- the CQC-refined reconstruction error never exceeds
  ``sqrt(2)/2 * g_s``;
* Section 5.2 -- STRQ with local search has recall 1 against the ground truth
  of Definition 5.2.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CQCConfig, IndexConfig, PPQConfig, PPQTrajectory, PartitionCriterion
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.metrics.accuracy import precision_recall, reconstruction_errors
from repro.queries.exact import ground_truth_cell_members


def random_walk_dataset(num_traj: int, length: int, step_scale: float,
                        seed: int) -> TrajectoryDataset:
    """Small random-walk workload used as the property-test input."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(num_traj):
        start = rng.uniform(-0.05, 0.05, size=2)
        steps = rng.normal(scale=step_scale, size=(length, 2))
        trajectories.append(Trajectory(traj_id=i, points=start + np.cumsum(steps, axis=0)))
    return TrajectoryDataset(trajectories)


workload = st.builds(
    random_walk_dataset,
    num_traj=st.integers(min_value=2, max_value=8),
    length=st.integers(min_value=5, max_value=25),
    step_scale=st.floats(min_value=1e-5, max_value=5e-4),
    seed=st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dataset=workload, epsilon=st.floats(min_value=2e-4, max_value=5e-3),
       criterion=st.sampled_from(list(PartitionCriterion)))
def test_base_reconstruction_error_bound(dataset, epsilon, criterion):
    """Equation 3: every point is reconstructed within epsilon1 (no CQC)."""
    eps_p = 0.01 if criterion is PartitionCriterion.AUTOCORRELATION else 0.05
    quantizer = PartitionwisePredictiveQuantizer(
        PPQConfig(epsilon1=epsilon, epsilon_p=eps_p, criterion=criterion),
        CQCConfig(enabled=False),
    )
    summary = quantizer.summarize(dataset)
    errors = reconstruction_errors(summary, dataset)
    assert len(errors) == dataset.num_points
    assert float(np.max(errors)) <= epsilon + 1e-9


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dataset=workload, grid_fraction=st.floats(min_value=0.1, max_value=0.9))
def test_cqc_refined_error_bound(dataset, grid_fraction):
    """Lemma 3: the CQC-refined error never exceeds sqrt(2)/2 * g_s."""
    epsilon = 0.001
    grid = epsilon * grid_fraction
    quantizer = PartitionwisePredictiveQuantizer(
        PPQConfig(epsilon1=epsilon), CQCConfig(grid_size=grid)
    )
    summary = quantizer.summarize(dataset)
    errors = reconstruction_errors(summary, dataset)
    assert float(np.max(errors)) <= np.sqrt(2.0) / 2.0 * grid + 1e-9


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(dataset=workload, seed=st.integers(min_value=0, max_value=1_000))
def test_strq_local_search_recall_is_one(dataset, seed):
    """Section 5.2: local search never misses a true STRQ answer."""
    system = PPQTrajectory.ppq_s(cqc_config=CQCConfig(), index_config=IndexConfig())
    system.fit(dataset)
    rng = np.random.default_rng(seed)
    cell = system.index_config.grid_cell
    for _ in range(5):
        tid = int(rng.choice(dataset.trajectory_ids))
        traj = dataset.get(tid)
        t = int(rng.integers(0, len(traj)))
        x, y = traj.points[t]
        result = system.strq(x, y, t, local_search=True)
        truth = ground_truth_cell_members(dataset, x, y, t, cell)
        _, recall = precision_recall(result.candidates, truth)
        assert recall == pytest.approx(1.0)

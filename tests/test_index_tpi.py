"""Tests for the temporal partition-based index (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.config import IndexConfig
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.index.tpi import TemporalPartitionIndex


def drifting_dataset(num_traj=20, length=30, drift_at=15, seed=0):
    """Trajectories that stay in one area then jump to a different one.

    The jump at ``drift_at`` empties the original rectangles, which forces the
    TPI to re-build.
    """
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(num_traj):
        base = rng.normal(scale=0.01, size=2)
        points = np.tile(base, (length, 1)) + rng.normal(scale=0.001, size=(length, 2))
        points[drift_at:] += 5.0
        trajectories.append(Trajectory(traj_id=i, points=points))
    return TrajectoryDataset(trajectories)


def stable_dataset(num_traj=20, length=30, seed=1):
    """Trajectories that jitter around fixed positions (stable distribution)."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(num_traj):
        base = rng.normal(scale=0.01, size=2)
        jitter = rng.normal(scale=0.0002, size=(length, 2))
        trajectories.append(Trajectory(traj_id=i, points=base + jitter))
    return TrajectoryDataset(trajectories)


class TestBuild:
    def test_stable_data_keeps_one_period(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.5, epsilon_d=0.5))
        tpi.build(stable_dataset())
        assert tpi.num_periods == 1
        assert tpi.stats.num_rebuilds == 0

    def test_drifting_data_triggers_rebuild(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.5, epsilon_d=0.5))
        tpi.build(drifting_dataset())
        assert tpi.num_periods >= 2
        assert tpi.stats.num_rebuilds >= 1

    def test_periods_cover_all_timestamps_contiguously(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005))
        dataset = drifting_dataset()
        tpi.build(dataset)
        covered = []
        for period in tpi.periods:
            assert period.start <= period.end
            covered.extend(range(period.start, period.end + 1))
        assert sorted(covered) == dataset.timestamps

    def test_uncovered_points_trigger_insertion(self):
        """New trajectories appearing in a fresh area must produce insertions
        (not rebuilds) when the existing rectangles keep their density."""
        rng = np.random.default_rng(3)
        trajectories = []
        for i in range(15):
            base = rng.normal(scale=0.01, size=2)
            points = np.tile(base, (20, 1)) + rng.normal(scale=0.0005, size=(20, 2))
            trajectories.append(Trajectory(traj_id=i, points=points))
        # A latecomer far away, active only from t=5.
        late_points = np.tile([3.0, 3.0], (15, 1)) + rng.normal(scale=0.0005, size=(15, 2))
        trajectories.append(Trajectory(traj_id=99, points=late_points,
                                       timestamps=np.arange(5, 20)))
        dataset = TrajectoryDataset(trajectories)
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.9, epsilon_d=0.9))
        tpi.build(dataset)
        assert tpi.stats.num_insertions >= 1
        # The latecomer must be findable at a later timestamp.
        assert 99 in tpi.lookup(3.0, 3.0, 10) or 99 in tpi.lookup_local(3.0, 3.0, 10, 0.002)

    def test_higher_epsilon_d_means_fewer_periods(self):
        dataset = drifting_dataset(drift_at=10)
        strict = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                    epsilon_d=0.05)).build(dataset)
        loose = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                   epsilon_d=0.95)).build(dataset)
        assert loose.num_periods <= strict.num_periods


class TestLookup:
    def test_lookup_finds_indexed_trajectory(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.002)).build(dataset)
        traj = dataset.get(0)
        t = 7
        x, y = traj.points[t]
        assert 0 in tpi.lookup(x, y, t)

    def test_lookup_unknown_time_is_empty(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig()).build(dataset)
        assert tpi.lookup(0.0, 0.0, 10_000) == []

    def test_period_for_binary_search(self):
        dataset = drifting_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005)).build(dataset)
        for t in dataset.timestamps:
            period = tpi.period_for(t)
            assert period is not None
            assert period.start <= t <= period.end
        assert tpi.period_for(-5) is None

    def test_lookup_local_is_superset_of_plain(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.002)).build(dataset)
        traj = dataset.get(3)
        x, y = traj.points[5]
        plain = set(tpi.lookup(x, y, 5))
        local = set(tpi.lookup_local(x, y, 5, radius=0.001))
        assert plain <= local


class TestStatistics:
    def test_stats_filled_by_build(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig()).build(dataset)
        assert tpi.stats.num_periods == tpi.num_periods
        assert tpi.stats.build_seconds > 0.0
        assert tpi.stats.index_bits == tpi.storage_bits()
        assert tpi.storage_megabytes() == pytest.approx(tpi.storage_bits() / 8.0 / (1 << 20))

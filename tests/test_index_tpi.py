"""Tests for the temporal partition-based index (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.config import IndexConfig
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.index.tpi import TemporalPartitionIndex, TimePeriod


def drifting_dataset(num_traj=20, length=30, drift_at=15, seed=0):
    """Trajectories that stay in one area then jump to a different one.

    The jump at ``drift_at`` empties the original rectangles, which forces the
    TPI to re-build.
    """
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(num_traj):
        base = rng.normal(scale=0.01, size=2)
        points = np.tile(base, (length, 1)) + rng.normal(scale=0.001, size=(length, 2))
        points[drift_at:] += 5.0
        trajectories.append(Trajectory(traj_id=i, points=points))
    return TrajectoryDataset(trajectories)


def stable_dataset(num_traj=20, length=30, seed=1):
    """Trajectories that jitter around fixed positions (stable distribution)."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(num_traj):
        base = rng.normal(scale=0.01, size=2)
        jitter = rng.normal(scale=0.0002, size=(length, 2))
        trajectories.append(Trajectory(traj_id=i, points=base + jitter))
    return TrajectoryDataset(trajectories)


class TestBuild:
    def test_stable_data_keeps_one_period(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.5, epsilon_d=0.5))
        tpi.build(stable_dataset())
        assert tpi.num_periods == 1
        assert tpi.stats.num_rebuilds == 0

    def test_drifting_data_triggers_rebuild(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.5, epsilon_d=0.5))
        tpi.build(drifting_dataset())
        assert tpi.num_periods >= 2
        assert tpi.stats.num_rebuilds >= 1

    def test_periods_cover_all_timestamps_contiguously(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005))
        dataset = drifting_dataset()
        tpi.build(dataset)
        covered = []
        for period in tpi.periods:
            assert period.start <= period.end
            covered.extend(range(period.start, period.end + 1))
        assert sorted(covered) == dataset.timestamps

    def test_uncovered_points_trigger_insertion(self):
        """New trajectories appearing in a fresh area must produce insertions
        (not rebuilds) when the existing rectangles keep their density."""
        rng = np.random.default_rng(3)
        trajectories = []
        for i in range(15):
            base = rng.normal(scale=0.01, size=2)
            points = np.tile(base, (20, 1)) + rng.normal(scale=0.0005, size=(20, 2))
            trajectories.append(Trajectory(traj_id=i, points=points))
        # A latecomer far away, active only from t=5.
        late_points = np.tile([3.0, 3.0], (15, 1)) + rng.normal(scale=0.0005, size=(15, 2))
        trajectories.append(Trajectory(traj_id=99, points=late_points,
                                       timestamps=np.arange(5, 20)))
        dataset = TrajectoryDataset(trajectories)
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.9, epsilon_d=0.9))
        tpi.build(dataset)
        assert tpi.stats.num_insertions >= 1
        # The latecomer must be findable at a later timestamp.
        assert 99 in tpi.lookup(3.0, 3.0, 10) or 99 in tpi.lookup_local(3.0, 3.0, 10, 0.002)

    def test_higher_epsilon_d_means_fewer_periods(self):
        dataset = drifting_dataset(drift_at=10)
        strict = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                    epsilon_d=0.05)).build(dataset)
        loose = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                   epsilon_d=0.95)).build(dataset)
        assert loose.num_periods <= strict.num_periods


class TestLookup:
    def test_lookup_finds_indexed_trajectory(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.002)).build(dataset)
        traj = dataset.get(0)
        t = 7
        x, y = traj.points[t]
        assert 0 in tpi.lookup(x, y, t)

    def test_lookup_unknown_time_is_empty(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig()).build(dataset)
        assert tpi.lookup(0.0, 0.0, 10_000) == []

    def test_period_for_binary_search(self):
        dataset = drifting_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005)).build(dataset)
        for t in dataset.timestamps:
            period = tpi.period_for(t)
            assert period is not None
            assert period.start <= t <= period.end
        assert tpi.period_for(-5) is None

    def test_lookup_local_is_superset_of_plain(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.002)).build(dataset)
        traj = dataset.get(3)
        x, y = traj.points[5]
        plain = set(tpi.lookup(x, y, 5))
        local = set(tpi.lookup_local(x, y, 5, radius=0.001))
        assert plain <= local


class TestStatistics:
    def test_stats_filled_by_build(self):
        dataset = stable_dataset()
        tpi = TemporalPartitionIndex(IndexConfig()).build(dataset)
        assert tpi.stats.num_periods == tpi.num_periods
        assert tpi.stats.build_seconds > 0.0
        assert tpi.stats.index_bits == tpi.storage_bits()
        assert tpi.storage_megabytes() == pytest.approx(tpi.storage_bits() / 8.0 / (1 << 20))


class TestBatchScalarBoundaryEquivalence:
    """Property tests: the vectorised ``period_indices_for`` / ``lookup_batch``
    path must agree with the scalar ``period_for`` / ``lookup`` path at every
    period boundary (the ``searchsorted(..., side="right") - 1`` edge cases).
    """

    def _index_of(self, tpi, period):
        return -1 if period is None else tpi.periods.index(period)

    def _boundary_ts(self, periods):
        """Every period start/end plus its off-by-one neighbours."""
        ts = set()
        for period in periods:
            ts.update((period.start - 1, period.start, period.start + 1,
                       period.end - 1, period.end, period.end + 1))
        ts.update((min(p.start for p in periods) - 10,
                   max(p.end for p in periods) + 10))
        return sorted(ts)

    def test_built_index_boundaries_agree(self):
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.5, epsilon_d=0.5))
        tpi.build(drifting_dataset())
        assert tpi.num_periods >= 2, "need several periods; test is vacuous"
        ts = self._boundary_ts(tpi.periods)
        vectorised = tpi.period_indices_for(np.asarray(ts))
        for t, got in zip(ts, vectorised):
            assert got == self._index_of(tpi, tpi.period_for(t)), f"t={t}"

    def test_fabricated_gapped_periods_agree(self):
        """Gaps between periods must map to -1, exactly like the scalar path.

        The build path tiles periods contiguously, but nothing in the lookup
        contract requires it -- the vectorised path has to handle gaps too.
        """
        tpi = TemporalPartitionIndex(IndexConfig())
        tpi.periods = [TimePeriod(0, 4, None), TimePeriod(10, 14, None),
                       TimePeriod(15, 15, None), TimePeriod(20, 29, None)]
        ts = self._boundary_ts(tpi.periods)
        vectorised = tpi.period_indices_for(np.asarray(ts))
        for t, got in zip(ts, vectorised):
            assert got == self._index_of(tpi, tpi.period_for(t)), f"t={t}"

    def test_randomized_period_layouts_agree(self):
        rng = np.random.default_rng(2024)
        for _ in range(25):
            periods, t = [], 0
            for _ in range(int(rng.integers(1, 9))):
                t += int(rng.integers(0, 4))          # occasional gap
                end = t + int(rng.integers(0, 6))     # single-point periods too
                periods.append(TimePeriod(t, end, None))
                t = end + 1
            tpi = TemporalPartitionIndex(IndexConfig())
            tpi.periods = periods
            span = np.arange(periods[0].start - 3, periods[-1].end + 4)
            vectorised = tpi.period_indices_for(span)
            for ts, got in zip(span, vectorised):
                assert got == self._index_of(tpi, tpi.period_for(int(ts))), \
                    f"t={ts} layout={[(p.start, p.end) for p in periods]}"

    def test_empty_index_and_empty_batch(self):
        tpi = TemporalPartitionIndex(IndexConfig())
        assert tpi.period_indices_for(np.asarray([0, 5])).tolist() == [-1, -1]
        tpi.periods = [TimePeriod(0, 9, None)]
        assert tpi.period_indices_for(np.asarray([], dtype=np.int64)).tolist() == []

    def test_lookup_batch_agrees_at_boundaries(self):
        dataset = drifting_dataset()
        tpi = TemporalPartitionIndex(IndexConfig(epsilon_s=1.0, grid_cell=0.005,
                                                 epsilon_c=0.5, epsilon_d=0.5))
        tpi.build(dataset)
        assert tpi.num_periods >= 2
        boundary_ts = self._boundary_ts(tpi.periods)
        traj = dataset.get(0)
        probes = [(float(traj.points[min(max(t, 0), len(traj) - 1), 0]),
                   float(traj.points[min(max(t, 0), len(traj) - 1), 1]), t)
                  for t in boundary_ts]
        xs, ys, ts = (np.asarray(v) for v in zip(*probes))
        batched = tpi.lookup_batch(xs, ys, ts)
        hits = 0
        for (x, y, t), got in zip(probes, batched):
            assert got == tpi.lookup(x, y, t), f"t={t}"
            hits += bool(got)
        assert hits, "no probe hit the index; comparison is vacuous"

"""Round-trip and integrity tests for the model-artifact storage layer.

The contract under test is the acceptance criterion of the save/load
subsystem: a model fitted once, saved, and loaded back answers STRQ/TPQ/
exact workloads (scalar and batched) *identically* to the in-memory model,
and corrupted or truncated artifacts fail with a clear :class:`ArtifactError`
instead of returning garbage results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PPQTrajectory
from repro.core.config import CQCConfig
from repro.data.synthetic import generate_porto_like
from repro.queries.batch import Workload
from repro.storage import (
    ArtifactChecksumError,
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    inspect_model,
    load_model,
    save_model,
)
from repro.storage.format import FORMAT_VERSION, MAGIC, pack_artifact


@pytest.fixture(scope="module")
def dataset():
    return generate_porto_like(num_trajectories=25, max_length=45, seed=11)


@pytest.fixture(scope="module", params=["ppq_s", "ppq_a", "basic"])
def fitted(request, dataset):
    """Fitted systems covering CQC-on (both criteria) and CQC-off."""
    if request.param == "ppq_s":
        system = PPQTrajectory.ppq_s()
    elif request.param == "ppq_a":
        system = PPQTrajectory.ppq_a()
    else:
        system = PPQTrajectory.ppq_s(cqc_config=CQCConfig(enabled=False))
    return system.fit(dataset)


@pytest.fixture()
def saved(fitted, tmp_path):
    path = tmp_path / "model.ppq"
    fitted.save(path)
    return fitted, path


def _query_probes(dataset, n=25, seed=3):
    """(x, y, t) probes drawn from real points so candidates are non-trivial."""
    rng = np.random.default_rng(seed)
    probes = []
    ids = dataset.trajectory_ids
    while len(probes) < n:
        traj = dataset.get(int(rng.choice(ids)))
        row = int(rng.integers(0, len(traj)))
        probes.append((float(traj.points[row, 0]), float(traj.points[row, 1]),
                       int(traj.timestamps[row])))
    return probes


def test_scalar_queries_identical_after_roundtrip(saved, dataset):
    original, path = saved
    loaded = PPQTrajectory.load(path)
    some_candidates = False
    for x, y, t in _query_probes(dataset):
        a = original.strq(x, y, t)
        b = loaded.strq(x, y, t)
        assert a.candidates == b.candidates
        assert set(a.reconstructed) == set(b.reconstructed)
        for tid in a.reconstructed:
            assert np.array_equal(a.reconstructed[tid], b.reconstructed[tid])
        some_candidates = some_candidates or bool(a.candidates)

        ta = original.tpq(x, y, t, length=6)
        tb = loaded.tpq(x, y, t, length=6)
        assert set(ta.paths) == set(tb.paths)
        for tid in ta.paths:
            assert np.array_equal(ta.paths[tid], tb.paths[tid])

        ea = original.exact(x, y, t)
        eb = loaded.exact(x, y, t)
        assert ea.candidates == eb.candidates
        assert ea.matches == eb.matches
        assert ea.visited_ratio == eb.visited_ratio
    assert some_candidates, "probe set never hit the index; test is vacuous"


def test_batch_workload_identical_after_roundtrip(saved, dataset):
    original, path = saved
    loaded = PPQTrajectory.load(path)
    specs = []
    for i, (x, y, t) in enumerate(_query_probes(dataset, n=18, seed=9)):
        kind = ("strq", "tpq", "exact")[i % 3]
        spec = {"type": kind, "x": x, "y": y, "t": t}
        if kind == "tpq":
            spec["length"] = 5
        specs.append(spec)
    workload = Workload.from_obj(specs)
    for a, b in zip(original.run_batch(workload), loaded.run_batch(workload)):
        assert type(a) is type(b)
        if hasattr(a, "paths"):
            assert set(a.paths) == set(b.paths)
            for tid in a.paths:
                assert np.array_equal(a.paths[tid], b.paths[tid])
        elif hasattr(a, "matches"):
            assert a.candidates == b.candidates
            assert a.matches == b.matches
        else:
            assert a.candidates == b.candidates


def test_reconstruction_and_summary_state_roundtrip(saved):
    original, path = saved
    loaded = PPQTrajectory.load(path)
    orig, rest = original.summary, loaded.summary
    assert orig.timestamps == rest.timestamps
    assert orig.num_points == rest.num_points
    assert np.array_equal(orig.codebook.codewords, rest.codebook.codewords)
    for t in orig.timestamps:
        a, b = orig.records[t], rest.records[t]
        assert a.partition_of == b.partition_of
        assert a.codeword_index == b.codeword_index
        assert a.cqc_codes == b.cqc_codes
        assert sorted(a.coefficients) == sorted(b.coefficients)
        for pid in a.coefficients:
            assert np.array_equal(a.coefficients[pid], b.coefficients[pid])
    # Reconstructions (CQC-refined) are identical for every stored point.
    for t in orig.timestamps:
        for tid in orig.trajectories_at(t):
            assert np.array_equal(orig.reconstruct_point(tid, t),
                                  rest.reconstruct_point(tid, t))


def test_index_roundtrip_state(saved):
    original, path = saved
    loaded = PPQTrajectory.load(path)
    a, b = original.engine.index, loaded.engine.index
    assert a.num_periods == b.num_periods
    assert [(p.start, p.end) for p in a.periods] == [(p.start, p.end) for p in b.periods]
    assert a.storage_bits() == b.storage_bits()
    for pa, pb in zip(a.periods, b.periods):
        assert pa.index.num_rectangles == pb.index.num_rectangles
        assert pa.index.num_indexed_ids == pb.index.num_indexed_ids
        assert pa.index.baseline_density == pytest.approx(pb.index.baseline_density)


def test_save_requires_fitted_model(tmp_path):
    with pytest.raises(RuntimeError, match="fit"):
        PPQTrajectory.ppq_s().save(tmp_path / "nope.ppq")


def test_save_without_raw_disables_exact(saved, tmp_path, dataset):
    original, _ = saved
    path = tmp_path / "noraw.ppq"
    original.save(path, include_raw=False)
    loaded = PPQTrajectory.load(path)
    x, y, t = _query_probes(dataset, n=1)[0]
    assert loaded.strq(x, y, t).candidates == original.strq(x, y, t).candidates
    with pytest.raises(RuntimeError, match="raw dataset"):
        loaded.exact(x, y, t)


def test_inspect_model_reports_sections(saved):
    _, path = saved
    info = inspect_model(path)
    assert info.format_version == FORMAT_VERSION
    assert info.checksums_ok
    names = [section.name for section in info.sections]
    assert names[:5] == ["CONFIG", "CODEBOOK", "RECORDS", "RECON", "INDEX"]
    assert info.config is not None and "ppq" in info.config
    assert info.file_size == path.stat().st_size
    assert all(section.length > 0 for section in info.sections)


def test_corrupted_payload_raises_checksum_error(saved, tmp_path):
    """Flipping any payload byte must fail the load with a checksum error."""
    _, path = saved
    blob = bytearray(path.read_bytes())
    info = inspect_model(path)
    for section in info.sections:
        corrupt = bytearray(blob)
        corrupt[section.offset + section.length // 2] ^= 0xFF
        bad = tmp_path / f"bad_{section.name}.ppq"
        bad.write_bytes(bytes(corrupt))
        with pytest.raises(ArtifactChecksumError):
            load_model(bad)
        # info still describes the damaged file instead of raising.
        damaged = inspect_model(bad)
        assert not damaged.checksums_ok
        assert [s.crc_ok for s in damaged.sections].count(False) == 1


def test_every_byte_flip_is_detected(saved, tmp_path):
    """Whole-file sweep: a flip anywhere raises ArtifactError, never garbage."""
    _, path = saved
    blob = bytearray(path.read_bytes())
    rng = np.random.default_rng(5)
    for offset in sorted(rng.choice(len(blob), size=40, replace=False).tolist()):
        corrupt = bytearray(blob)
        corrupt[offset] ^= 0xFF
        bad = tmp_path / "flip.ppq"
        bad.write_bytes(bytes(corrupt))
        with pytest.raises(ArtifactError):
            load_model(bad)


def test_truncated_artifact_raises(saved, tmp_path):
    _, path = saved
    blob = path.read_bytes()
    for cut in (0, 4, 20, 100, len(blob) - 1):
        bad = tmp_path / "short.ppq"
        bad.write_bytes(blob[:cut])
        with pytest.raises(ArtifactError):
            load_model(bad)


def test_not_an_artifact_raises(tmp_path):
    bad = tmp_path / "random.bin"
    bad.write_bytes(b"definitely not a model artifact, sorry" * 10)
    with pytest.raises(ArtifactFormatError, match="magic"):
        load_model(bad)


def test_newer_format_version_rejected(tmp_path):
    blob = bytearray(pack_artifact([("CONFIG", b"{}")]))
    assert blob[:8] == MAGIC
    blob[8] = FORMAT_VERSION + 1  # little-endian u32 version field
    bad = tmp_path / "future.ppq"
    bad.write_bytes(bytes(blob))
    with pytest.raises(ArtifactVersionError, match="newer"):
        load_model(bad)


def test_missing_section_raises(tmp_path):
    blob = pack_artifact([("CONFIG", b"{}")])
    bad = tmp_path / "partial.ppq"
    bad.write_bytes(blob)
    with pytest.raises(ArtifactFormatError, match="missing"):
        load_model(bad)


def test_module_level_save_load_match_methods(saved, tmp_path, dataset):
    """save_model/load_model and the PPQTrajectory methods are one API."""
    original, _ = saved
    path = tmp_path / "func.ppq"
    assert save_model(original, path) == path
    loaded = load_model(path)
    x, y, t = _query_probes(dataset, n=1, seed=21)[0]
    assert loaded.strq(x, y, t).candidates == original.strq(x, y, t).candidates


# ---------------------------------------------------------------------- #
# salvage loading (strict=False)
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def salvage_saved(dataset, tmp_path_factory):
    """One fitted+saved system reused by every salvage case below."""
    system = PPQTrajectory.ppq_s().fit(dataset)
    path = tmp_path_factory.mktemp("salvage") / "model.ppq"
    system.save(path)
    return system, path


def _flip_section_byte(path, tmp_path, name):
    """Copy the artifact with one byte flipped inside section ``name``."""
    blob = bytearray(path.read_bytes())
    section = next(s for s in inspect_model(path).sections if s.name == name)
    blob[section.offset + section.length // 2] ^= 0xFF
    bad = tmp_path / f"flip_{name}.ppq"
    bad.write_bytes(bytes(blob))
    return bad


def _assert_strq_equal(a_system, b_system, dataset):
    hits = False
    for x, y, t in _query_probes(dataset, n=12, seed=17):
        ra, rb = a_system.strq(x, y, t), b_system.strq(x, y, t)
        assert ra.candidates == rb.candidates
        for tid in ra.reconstructed:
            assert np.array_equal(ra.reconstructed[tid], rb.reconstructed[tid])
        hits = hits or bool(ra.candidates)
    assert hits, "probe set never hit the index; comparison is vacuous"


def test_salvage_rebuilds_corrupt_index(salvage_saved, tmp_path, dataset):
    original, path = salvage_saved
    bad = _flip_section_byte(path, tmp_path, "INDEX")
    with pytest.raises(ArtifactChecksumError):
        load_model(bad)  # default stays strict
    loaded = load_model(bad, strict=False)
    report = loaded.load_report
    assert report is not None and not report.clean
    assert report.rebuilt == ["INDEX"]
    assert not report.dropped and not report.lost
    # The rebuilt TPI serves queries identical to the undamaged model.
    _assert_strq_equal(original, loaded, dataset)


def test_salvage_recomputes_corrupt_reconstructions(salvage_saved, tmp_path, dataset):
    original, path = salvage_saved
    bad = _flip_section_byte(path, tmp_path, "RECON")
    loaded = load_model(bad, strict=False)
    assert loaded.load_report.rebuilt == ["RECON"]
    for t in original.summary.timestamps[:10]:
        for tid in original.summary.trajectories_at(t):
            assert np.array_equal(original.summary.reconstruct_point(tid, t),
                                  loaded.summary.reconstruct_point(tid, t))
    _assert_strq_equal(original, loaded, dataset)


def test_salvage_drops_corrupt_rawdata(salvage_saved, tmp_path, dataset):
    original, path = salvage_saved
    bad = _flip_section_byte(path, tmp_path, "RAWDATA")
    with pytest.warns(RuntimeWarning, match="exact"):
        loaded = load_model(bad, strict=False)
    report = loaded.load_report
    assert report.dropped == ["RAWDATA"]
    assert "exact queries" in report.lost
    assert any("lost capabilities" in line for line in report.lines())
    x, y, t = _query_probes(dataset, n=1, seed=23)[0]
    with pytest.raises(RuntimeError, match="raw dataset"):
        loaded.exact(x, y, t)
    _assert_strq_equal(original, loaded, dataset)  # approx queries unaffected


@pytest.mark.parametrize("section", ["CONFIG", "CODEBOOK", "RECORDS"])
def test_salvage_cannot_recover_required_sections(salvage_saved, tmp_path, section):
    _, path = salvage_saved
    bad = _flip_section_byte(path, tmp_path, section)
    with pytest.raises(ArtifactChecksumError):
        load_model(bad, strict=False)


def test_salvage_of_truncated_tail(salvage_saved, tmp_path, dataset):
    """A tail truncation (mid-RAWDATA) salvages into a query-able system."""
    original, path = salvage_saved
    blob = path.read_bytes()
    rawdata = next(s for s in inspect_model(path).sections if s.name == "RAWDATA")
    bad = tmp_path / "truncated.ppq"
    bad.write_bytes(blob[: rawdata.offset + rawdata.length // 3])
    with pytest.raises(ArtifactError):
        load_model(bad)
    with pytest.warns(RuntimeWarning):
        loaded = load_model(bad, strict=False)
    assert "RAWDATA" in loaded.load_report.dropped
    _assert_strq_equal(original, loaded, dataset)


def test_non_strict_load_of_clean_artifact_reports_all_ok(salvage_saved):
    _, path = salvage_saved
    loaded = load_model(path, strict=False)
    report = loaded.load_report
    assert report.clean
    assert [s.status for s in report.sections] == ["ok"] * len(report.sections)

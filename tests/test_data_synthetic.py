"""Tests for the synthetic workload generators."""

import numpy as np
from repro.data.synthetic import (
    GEOLIFE_LIKE,
    PORTO_LIKE,
    SyntheticConfig,
    generate_dataset,
    generate_geolife_like,
    generate_porto_like,
)
from repro.utils.geo import DEGREE_TO_METERS


class TestGenerators:
    def test_porto_like_basic_properties(self):
        dataset = generate_porto_like(num_trajectories=10, max_length=60, seed=1)
        assert len(dataset) == 10
        assert all(len(traj) >= 30 for traj in dataset)
        assert all(len(traj) <= 60 for traj in dataset)

    def test_geolife_like_has_larger_extent_than_porto(self):
        porto = generate_porto_like(num_trajectories=10, max_length=60, seed=1)
        geolife = generate_geolife_like(num_trajectories=10, max_length=120, seed=1)
        p_box = porto.bounding_box()
        g_box = geolife.bounding_box()
        p_extent = max(p_box[2] - p_box[0], p_box[3] - p_box[1])
        g_extent = max(g_box[2] - g_box[0], g_box[3] - g_box[1])
        assert g_extent > p_extent

    def test_determinism(self):
        a = generate_porto_like(num_trajectories=5, max_length=40, seed=7)
        b = generate_porto_like(num_trajectories=5, max_length=40, seed=7)
        for tid in a.trajectory_ids:
            np.testing.assert_array_equal(a.get(tid).points, b.get(tid).points)

    def test_different_seeds_differ(self):
        a = generate_porto_like(num_trajectories=5, max_length=40, seed=1)
        b = generate_porto_like(num_trajectories=5, max_length=40, seed=2)
        assert not np.array_equal(a.get(0).points, b.get(0).points)

    def test_motion_is_smooth(self):
        """Consecutive displacements should be bounded by speed * interval."""
        config = SyntheticConfig(num_trajectories=5, min_length=30, max_length=30,
                                 mean_speed_mps=10.0, sampling_interval_s=15.0,
                                 noise_std_m=0.0, seed=3)
        dataset = generate_dataset(config)
        max_step_deg = 10.0 * 2.5 * 15.0 / DEGREE_TO_METERS * 1.5  # speed cap x margin
        for traj in dataset:
            steps = np.linalg.norm(np.diff(traj.points, axis=0), axis=1)
            assert np.all(steps <= max_step_deg)

    def test_autocorrelation_present(self):
        """Consecutive displacement vectors should be positively correlated --
        the property PPQ's prediction step exploits."""
        dataset = generate_porto_like(num_trajectories=10, max_length=100, seed=11)
        correlations = []
        for traj in dataset:
            deltas = np.diff(traj.points, axis=0)
            if len(deltas) < 3:
                continue
            a = deltas[:-1].ravel()
            b = deltas[1:].ravel()
            correlations.append(np.corrcoef(a, b)[0, 1])
        assert np.mean(correlations) > 0.5

    def test_hotspot_starts_within_region(self):
        dataset = generate_porto_like(num_trajectories=20, max_length=40, seed=5)
        cx, cy = PORTO_LIKE.center
        for traj in dataset:
            start = traj.points[0]
            assert abs(start[0] - cx) < 0.3
            assert abs(start[1] - cy) < 0.3

    def test_speed_mix_used_by_geolife_config(self):
        assert len(GEOLIFE_LIKE.speed_mix) > 1

    def test_config_validation_happens_downstream(self):
        # A degenerate config should still produce a valid dataset object.
        config = SyntheticConfig(num_trajectories=1, min_length=30, max_length=30, seed=0)
        dataset = generate_dataset(config)
        assert dataset.num_points == 30

    def test_all_trajectories_start_at_t0(self):
        dataset = generate_porto_like(num_trajectories=4, max_length=40, seed=2)
        for traj in dataset:
            assert traj.timestamps[0] == 0

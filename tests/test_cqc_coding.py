"""Tests for the CQC coder (offset encoding and the Lemma 3 bound)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cqc.coding import CQCCoder


class TestConstruction:
    def test_cells_cover_error_disc(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.00045)
        # ceil(0.001/0.00045) = 3 -> 7 cells per side.
        assert coder.cells_per_side == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CQCCoder(epsilon=0.0, grid_size=0.1)
        with pytest.raises(ValueError):
            CQCCoder(epsilon=0.1, grid_size=0.0)

    def test_residual_bound_is_lemma3(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.0005)
        assert coder.residual_bound == pytest.approx(np.sqrt(2) / 2 * 0.0005)

    def test_code_length_positive_and_fixed(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.00045)
        assert coder.code_length > 0
        code = coder.encode_offset([0.0002, -0.0004])
        assert len(code) == coder.code_length


class TestEncodeDecode:
    def test_zero_offset_maps_to_center(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.0005)
        decoded = coder.decode_offset(coder.encode_offset([0.0, 0.0]))
        np.testing.assert_allclose(decoded, [0.0, 0.0], atol=1e-12)

    def test_lemma3_bound_for_in_disc_offsets(self):
        """For every offset within epsilon the decoded offset deviates by at
        most sqrt(2)/2 * g_s (Lemma 3)."""
        coder = CQCCoder(epsilon=0.001, grid_size=0.00025)
        rng = np.random.default_rng(0)
        angles = rng.uniform(0, 2 * np.pi, size=500)
        radii = rng.uniform(0, 0.001, size=500)
        offsets = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        for offset in offsets:
            decoded = coder.decode_offset(coder.encode_offset(offset))
            assert np.linalg.norm(offset - decoded) <= coder.residual_bound + 1e-12

    def test_out_of_disc_offsets_are_clamped(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.0005)
        decoded = coder.decode_offset(coder.encode_offset([0.01, 0.01]))
        # Clamped to the outermost cell, still finite and within the template.
        assert np.all(np.abs(decoded) <= 0.001 + 0.0005)

    def test_distinct_cells_get_distinct_codes(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.0002)
        code_a = coder.encode_offset([0.0008, 0.0])
        code_b = coder.encode_offset([-0.0008, 0.0])
        assert code_a != code_b

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=1e-4, max_value=1e-2),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_lemma3_property(self, epsilon, grid_fraction, unit_x, unit_y):
        """Lemma 3 as a property over random (epsilon, g_s, offset) triples."""
        grid_size = epsilon * grid_fraction
        coder = CQCCoder(epsilon=epsilon, grid_size=grid_size)
        offset = np.array([unit_x, unit_y]) * epsilon / np.sqrt(2.0)
        decoded = coder.decode_offset(coder.encode_offset(offset))
        assert np.linalg.norm(offset - decoded) <= coder.residual_bound + 1e-12

    def test_cell_of_offset_clamps(self):
        coder = CQCCoder(epsilon=0.001, grid_size=0.0005)
        ix, iy = coder.cell_of_offset([1.0, -1.0])
        assert 0 <= ix < coder.cells_per_side
        assert 0 <= iy < coder.cells_per_side

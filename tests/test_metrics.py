"""Tests for the evaluation metrics."""

import time

import numpy as np
import pytest

from repro.baselines.common import BaselineSummary
from repro.core.config import CQCConfig, PPQConfig
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.metrics.accuracy import (
    aggregate_precision_recall,
    mean_absolute_error,
    path_mean_absolute_error,
    precision_recall,
    reconstruction_errors,
)
from repro.metrics.compression import compression_report, summary_size_bits
from repro.metrics.timing import Timer


def perfect_summary(dataset):
    """A baseline summary reconstructing every point exactly."""
    summary = BaselineSummary(method="perfect")
    for slice_ in dataset.iter_time_slices():
        for tid, point in zip(slice_.traj_ids, slice_.points):
            summary.reconstructions[(int(tid), slice_.t)] = point.copy()
    summary.num_points = dataset.num_points
    summary.storage_bits = dataset.num_points * 128
    return summary


def shifted_summary(dataset, shift):
    """A summary whose every reconstruction is offset by a constant vector."""
    summary = BaselineSummary(method="shifted")
    for slice_ in dataset.iter_time_slices():
        for tid, point in zip(slice_.traj_ids, slice_.points):
            summary.reconstructions[(int(tid), slice_.t)] = point + shift
    summary.num_points = dataset.num_points
    summary.storage_bits = 1
    return summary


@pytest.fixture(scope="module")
def tiny_dataset():
    return TrajectoryDataset([
        Trajectory(0, np.array([[0.0, 0.0], [0.001, 0.001], [0.002, 0.002]])),
        Trajectory(1, np.array([[0.01, 0.01], [0.011, 0.011]])),
    ])


class TestMAE:
    def test_perfect_summary_has_zero_mae(self, tiny_dataset):
        mae = mean_absolute_error(perfect_summary(tiny_dataset), tiny_dataset)
        assert mae == pytest.approx(0.0)

    def test_constant_shift_gives_exact_mae(self, tiny_dataset):
        shift = np.array([0.001, 0.0])
        summary = shifted_summary(tiny_dataset, shift)
        # 0.001 degrees = 111 metres.
        assert mean_absolute_error(summary, tiny_dataset) == pytest.approx(111.0)
        assert mean_absolute_error(summary, tiny_dataset, in_meters=False) == pytest.approx(0.001)

    def test_missing_reconstructions_are_skipped(self, tiny_dataset):
        summary = BaselineSummary(method="partial")
        summary.reconstructions[(0, 0)] = np.array([0.0, 0.0])
        errors = reconstruction_errors(summary, tiny_dataset)
        assert len(errors) == 1

    def test_empty_summary_gives_nan(self, tiny_dataset):
        assert np.isnan(mean_absolute_error(BaselineSummary(method="empty"), tiny_dataset))


class TestPrecisionRecall:
    def test_perfect_retrieval(self):
        assert precision_recall([1, 2, 3], [1, 2, 3]) == (1.0, 1.0)

    def test_partial_retrieval(self):
        precision, recall = precision_recall([1, 2, 4, 5], [1, 2, 3])
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(2 / 3)

    def test_empty_cases(self):
        assert precision_recall([], []) == (1.0, 1.0)
        assert precision_recall([1], []) == (0.0, 1.0)
        assert precision_recall([], [1]) == (0.0, 0.0)

    def test_aggregate(self):
        precision, recall = aggregate_precision_recall([(1.0, 0.5), (0.0, 1.0)])
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.75)
        nan_p, nan_r = aggregate_precision_recall([])
        assert np.isnan(nan_p) and np.isnan(nan_r)


class TestPathMAE:
    def test_shifted_path_error(self, tiny_dataset):
        summary = shifted_summary(tiny_dataset, np.array([0.0, 0.001]))
        mae = path_mean_absolute_error(summary, tiny_dataset, [(0, 0)], length=3)
        assert mae == pytest.approx(111.0)

    def test_longer_paths_accumulate_real_quantizer_error(self, porto_small):
        quantizer = PartitionwisePredictiveQuantizer(PPQConfig(), CQCConfig(enabled=False))
        summary = quantizer.summarize(porto_small)
        queries = [(tid, 0) for tid in porto_small.trajectory_ids[:10]]
        short = path_mean_absolute_error(summary, porto_small, queries, length=5)
        long = path_mean_absolute_error(summary, porto_small, queries, length=30)
        assert short <= long * 1.5  # short windows should not be wildly worse

    def test_empty_queries_give_nan(self, tiny_dataset):
        summary = perfect_summary(tiny_dataset)
        assert np.isnan(path_mean_absolute_error(summary, tiny_dataset, [], length=5))


class TestCompressionReport:
    def test_report_for_ppq_summary(self, porto_small):
        quantizer = PartitionwisePredictiveQuantizer(PPQConfig(), CQCConfig())
        summary = quantizer.summarize(porto_small, t_max=10)
        report = compression_report(summary)
        assert report.method == "PPQ-trajectory"
        assert report.num_points == summary.num_points
        assert report.summary_bits == summary_size_bits(summary)
        assert report.compression_ratio == pytest.approx(summary.compression_ratio())

    def test_report_for_baseline_summary(self, tiny_dataset):
        summary = perfect_summary(tiny_dataset)
        report = compression_report(summary)
        assert report.method == "perfect"
        assert report.compression_ratio == pytest.approx(1.0)
        assert report.summary_megabytes > 0.0


class TestTimer:
    def test_context_manager(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_restart_and_stop(self):
        timer = Timer()
        timer.restart()
        elapsed = timer.stop()
        assert elapsed >= 0.0
        assert timer.stop() == elapsed  # idempotent once stopped

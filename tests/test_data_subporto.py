"""Tests for the sub-Porto construction used by the REST experiment."""

import numpy as np
import pytest

from repro.data.subporto import build_sub_porto
from repro.data.synthetic import generate_porto_like


@pytest.fixture(scope="module")
def source():
    return generate_porto_like(num_trajectories=20, max_length=60, seed=17)


class TestBuildSubPorto:
    def test_pool_size(self, source):
        split = build_sub_porto(source, num_base=10, variants_per_base=4, seed=1)
        total = len(split.compress_set) + len(split.reference_set)
        assert total == 10 * 5  # each base trajectory plus four variants

    def test_compress_fraction(self, source):
        split = build_sub_porto(source, num_base=10, variants_per_base=4,
                                compress_fraction=0.1, seed=1)
        total = len(split.compress_set) + len(split.reference_set)
        assert len(split.compress_set) == max(1, round(total * 0.1))

    def test_sets_are_disjoint(self, source):
        split = build_sub_porto(source, num_base=10, variants_per_base=2, seed=2)
        # IDs are assigned from a single counter, so disjointness is by ID.
        assert not (set(split.compress_set.trajectory_ids)
                    & set(split.reference_set.trajectory_ids))

    def test_variants_are_similar_to_base(self, source):
        """Down-sampled noisy variants stay within a small deviation of the base."""
        split = build_sub_porto(source, num_base=3, variants_per_base=4,
                                downsample_step=2, noise_std_m=5.0, seed=3)
        pool = list(split.reference_set) + list(split.compress_set)
        # Group by construction: base trajectories are the ones whose length
        # matches a source trajectory exactly.  For at least one variant, the
        # nearest source trajectory should be within ~50 m on average.
        source_points = [traj.points for traj in source]
        close_found = 0
        for traj in pool:
            for sp in source_points:
                m = min(len(traj.points), len(sp[::2]))
                if m < 5:
                    continue
                dist = np.linalg.norm(traj.points[:m] - sp[::2][:m], axis=1).mean()
                if dist < 50.0 / 111_000.0:
                    close_found += 1
                    break
        assert close_found > 0

    def test_deterministic(self, source):
        a = build_sub_porto(source, num_base=5, seed=9)
        b = build_sub_porto(source, num_base=5, seed=9)
        assert a.compress_set.trajectory_ids == b.compress_set.trajectory_ids

    def test_invalid_arguments(self, source):
        with pytest.raises(ValueError):
            build_sub_porto(source, num_base=0)
        with pytest.raises(ValueError):
            build_sub_porto(source, num_base=5, variants_per_base=-1)

    def test_empty_source_rejected(self, source):
        empty = source.restrict([])
        with pytest.raises(ValueError):
            build_sub_porto(empty, num_base=5)

"""Tests for the simulated page store and disk-backed index."""

import pytest

from repro.core.config import IndexConfig
from repro.data.synthetic import generate_porto_like
from repro.index.disk import POINT_RECORD_BYTES, DiskBackedIndex, PageStore


class TestPageStore:
    def test_allocate_and_append(self):
        store = PageStore(page_size_bytes=100)
        page = store.allocate()
        assert store.append(page, 60)
        assert store.append(page, 40)
        assert not store.append(page, 1)

    def test_append_unknown_page(self):
        store = PageStore(page_size_bytes=100)
        with pytest.raises(IndexError):
            store.append(3, 10)

    def test_write_sequence_page_count(self):
        store = PageStore(page_size_bytes=100)
        start, num = store.write_sequence(250)
        assert (start, num) == (0, 3)
        start, num = store.write_sequence(10)
        assert num == 1

    def test_write_sequence_zero_bytes_uses_one_page(self):
        store = PageStore(page_size_bytes=100)
        _, num = store.write_sequence(0)
        assert num == 1

    def test_read_counting(self):
        store = PageStore(page_size_bytes=100)
        store.write_sequence(250)
        store.read_range(0, 3)
        assert store.reads == 3
        with pytest.raises(IndexError):
            store.read_page(99)

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PageStore(page_size_bytes=0)


class TestDiskBackedIndex:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_porto_like(num_trajectories=20, max_length=40, seed=21)

    def test_build_and_query(self, dataset):
        index = DiskBackedIndex(IndexConfig(page_size_bytes=4096)).build(dataset)
        traj = dataset.get(0)
        t = 5
        result = index.query(traj.points[t][0], traj.points[t][1], t)
        assert 0 in result
        assert index.num_ios > 0

    def test_query_unknown_time(self, dataset):
        index = DiskBackedIndex(IndexConfig(page_size_bytes=4096)).build(dataset)
        assert index.query(0.0, 0.0, 99_999) == []

    def test_query_before_build_raises(self):
        index = DiskBackedIndex(IndexConfig())
        with pytest.raises(RuntimeError):
            index.query(0.0, 0.0, 0)

    def test_per_timestamp_layout_has_more_periods(self, dataset):
        tpi_layout = DiskBackedIndex(IndexConfig(page_size_bytes=4096),
                                     per_timestamp=False).build(dataset)
        pi_layout = DiskBackedIndex(IndexConfig(page_size_bytes=4096),
                                    per_timestamp=True).build(dataset)
        assert pi_layout.tpi.num_periods >= tpi_layout.tpi.num_periods
        assert pi_layout.tpi.num_periods == len(dataset.timestamps)

    def test_per_timestamp_queries_fewer_pages_per_query(self, dataset):
        """A per-timestamp layout touches only that timestamp's pages, so its
        per-query I/O is no higher than the TPI layout's."""
        config = IndexConfig(page_size_bytes=1024)
        tpi_layout = DiskBackedIndex(config, per_timestamp=False).build(dataset)
        pi_layout = DiskBackedIndex(config, per_timestamp=True).build(dataset)
        traj = dataset.get(3)
        t = 10
        x, y = traj.points[t]
        tpi_layout.reset_io_counters()
        pi_layout.reset_io_counters()
        tpi_layout.query(x, y, t)
        pi_layout.query(x, y, t)
        assert pi_layout.num_ios <= tpi_layout.num_ios

    def test_reset_io_counters(self, dataset):
        index = DiskBackedIndex(IndexConfig(page_size_bytes=4096)).build(dataset)
        traj = dataset.get(0)
        index.query(traj.points[0][0], traj.points[0][1], 0)
        index.reset_io_counters()
        assert index.num_ios == 0

    def test_sizes_are_positive(self, dataset):
        index = DiskBackedIndex(IndexConfig(page_size_bytes=4096)).build(dataset)
        assert index.index_size_megabytes() > 0.0
        assert index.data_size_megabytes() > 0.0
        # The paged data must at least hold every point record.
        assert index.data_size_megabytes() * (1 << 20) >= dataset.num_points * POINT_RECORD_BYTES

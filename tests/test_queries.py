"""Tests for STRQ, TPQ, exact-match queries and the query engine."""

import numpy as np
import pytest

from repro.metrics.accuracy import precision_recall
from repro.queries.exact import ground_truth_cell_members
from repro.queries.strq import spatio_temporal_range_query
from repro.queries.tpq import reconstruct_paths_for_ids, trajectory_path_query


class TestSTRQ:
    def test_query_point_trajectory_is_found(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[0])
        t = 12
        x, y = traj.points[t]
        result = fitted_ppq_s.strq(x, y, t)
        assert traj.traj_id in result.candidates

    def test_local_search_gives_full_recall(self, fitted_ppq_s, porto_small):
        """With CQC + local search the candidate list must contain every true
        answer (recall 1), for a batch of random queries."""
        rng = np.random.default_rng(0)
        cell = fitted_ppq_s.index_config.grid_cell
        for _ in range(25):
            tid = int(rng.choice(porto_small.trajectory_ids))
            traj = porto_small.get(tid)
            t = int(rng.integers(0, len(traj)))
            x, y = traj.points[t]
            result = fitted_ppq_s.strq(x, y, t, local_search=True)
            truth = ground_truth_cell_members(porto_small, x, y, t, cell)
            _, recall = precision_recall(result.candidates, truth)
            assert recall == pytest.approx(1.0)

    def test_reconstructed_positions_attached(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[1])
        t = 8
        x, y = traj.points[t]
        result = fitted_ppq_s.strq(x, y, t)
        for tid in result.candidates:
            assert tid in result.reconstructed
            assert result.reconstructed[tid].shape == (2,)

    def test_unknown_time_returns_empty(self, fitted_ppq_s):
        result = fitted_ppq_s.strq(0.0, 0.0, 99_999)
        assert result.candidates == []

    def test_function_level_api_without_summary(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[0])
        x, y = traj.points[5]
        result = spatio_temporal_range_query(fitted_ppq_s.engine.index, x, y, 5)
        assert result.reconstructed == {}


class TestTPQ:
    def test_paths_start_near_query(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[0])
        t = 10
        x, y = traj.points[t]
        result = fitted_ppq_s.tpq(x, y, t, length=10)
        assert traj.traj_id in result.paths
        path = result.paths[traj.traj_id]
        assert len(path) <= 10
        # First reconstructed point is close to the true position at t.
        assert np.linalg.norm(path[0] - traj.points[t]) < 0.001

    def test_path_follows_true_trajectory(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[2])
        t = 5
        length = 15
        x, y = traj.points[t]
        result = fitted_ppq_s.tpq(x, y, t, length=length)
        path = result.paths[traj.traj_id]
        truth = traj.points[t:t + len(path)]
        errors = np.linalg.norm(path - truth, axis=1)
        assert errors.max() < 0.001  # bounded by eps1 anyway

    def test_invalid_length(self, fitted_ppq_s):
        with pytest.raises(ValueError):
            fitted_ppq_s.tpq(0.0, 0.0, 0, length=0)

    def test_reconstruct_paths_for_ids_protocol(self, fitted_ppq_s, porto_small):
        ids = porto_small.trajectory_ids[:5]
        paths = reconstruct_paths_for_ids(fitted_ppq_s.summary, ids, t=3, length=8)
        assert set(paths) == set(ids)
        for path in paths.values():
            assert len(path) <= 8

    def test_function_level_api(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[0])
        x, y = traj.points[7]
        result = trajectory_path_query(
            fitted_ppq_s.engine.index, fitted_ppq_s.summary, x, y, 7, 5
        )
        assert traj.traj_id in result.paths


class TestExactMatch:
    def test_matches_equal_ground_truth(self, fitted_ppq_s, porto_small):
        rng = np.random.default_rng(1)
        cell = fitted_ppq_s.index_config.grid_cell
        for _ in range(20):
            tid = int(rng.choice(porto_small.trajectory_ids))
            traj = porto_small.get(tid)
            t = int(rng.integers(0, len(traj)))
            x, y = traj.points[t]
            result = fitted_ppq_s.exact(x, y, t)
            truth = ground_truth_cell_members(porto_small, x, y, t, cell)
            assert sorted(result.matches) == truth

    def test_visited_ratio_is_small(self, fitted_ppq_s, porto_small):
        """The summary-based filter must prune most trajectories."""
        traj = porto_small.get(porto_small.trajectory_ids[0])
        t = 6
        x, y = traj.points[t]
        result = fitted_ppq_s.exact(x, y, t)
        assert 0.0 < result.visited_ratio < 0.5

    def test_candidates_superset_of_matches(self, fitted_ppq_s, porto_small):
        traj = porto_small.get(porto_small.trajectory_ids[3])
        t = 9
        x, y = traj.points[t]
        result = fitted_ppq_s.exact(x, y, t)
        assert set(result.matches) <= set(result.candidates)


class TestQueryEngine:
    def test_predict_next_positions(self, fitted_ppq_s, porto_small):
        tid = porto_small.trajectory_ids[0]
        forecast = fitted_ppq_s.predict_next_positions(tid, t=20, horizon=5)
        assert forecast.shape == (5, 2)
        # The one-step forecast should stay within a plausible movement range.
        last = fitted_ppq_s.reconstruct(tid, 20)
        assert np.linalg.norm(forecast[0] - last) < 0.01

    def test_predict_for_unknown_trajectory(self, fitted_ppq_s):
        forecast = fitted_ppq_s.predict_next_positions(99_999, t=5, horizon=3)
        assert forecast.shape == (0, 2)

    def test_local_search_radius_exposed(self, fitted_ppq_s):
        radius = fitted_ppq_s.engine.local_search_radius
        assert radius is not None and radius > 0.0

    def test_exact_requires_raw_dataset(self, porto_small, fitted_ppq_s):
        from repro.queries.engine import QueryEngine

        engine = QueryEngine(fitted_ppq_s.summary, fitted_ppq_s.index_config, raw_dataset=None)
        with pytest.raises(RuntimeError):
            engine.exact(0.0, 0.0, 0)

"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import (
    EXIT_ARTIFACT,
    EXIT_QUERY,
    EXIT_USAGE,
    EXIT_WORKLOAD,
    build_parser,
    build_system,
    load_dataset,
    main,
    run_compress,
    run_query,
)
from repro.storage import inspect_model


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_requires_dataset_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress"])

    def test_synthetic_defaults(self):
        args = build_parser().parse_args(["compress", "--synthetic", "porto"])
        assert args.synthetic == "porto"
        assert args.variant == "ppq-a"
        assert args.trajectories == 100

    def test_query_requires_coordinates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--synthetic", "porto"])


class TestBuilders:
    def test_load_synthetic_dataset(self):
        args = build_parser().parse_args(
            ["compress", "--synthetic", "porto", "--trajectories", "5"]
        )
        dataset = load_dataset(args)
        assert len(dataset) == 5

    def test_build_system_variants(self):
        for variant, expected in [("ppq-a", "ppq"), ("ppq-s", "ppq"), ("epq", "epq")]:
            args = build_parser().parse_args(
                ["compress", "--synthetic", "porto", "--variant", variant]
            )
            system = build_system(args)
            assert system.variant == expected

    def test_no_cqc_flag(self):
        args = build_parser().parse_args(
            ["compress", "--synthetic", "porto", "--no-cqc"]
        )
        system = build_system(args)
        assert not system.cqc_config.enabled


class TestCommands:
    def test_compress_prints_statistics(self):
        out = io.StringIO()
        args = build_parser().parse_args(
            ["compress", "--synthetic", "porto", "--trajectories", "8", "--seed", "3"]
        )
        assert run_compress(args, out=out) == 0
        text = out.getvalue()
        assert "codewords" in text
        assert "compression ratio" in text

    def test_query_finds_known_trajectory(self):
        args = build_parser().parse_args(
            ["query", "--synthetic", "porto", "--trajectories", "8", "--seed", "3",
             "--x", "0", "--y", "0", "--t", "5", "--length", "4"]
        )
        # Use the actual position of trajectory 0 at t=5 as the query point.
        dataset = load_dataset(args)
        point = dataset.get(0).points[5]
        args.x, args.y = float(point[0]), float(point[1])
        out = io.StringIO()
        assert run_query(args, out=out) == 0
        assert "STRQ" in out.getvalue()

    def test_main_dispatch(self, capsys):
        code = main(["compress", "--synthetic", "porto", "--trajectories", "5", "--seed", "1"])
        assert code == 0
        assert "points" in capsys.readouterr().out


@pytest.fixture(scope="module")
def saved_model(tmp_path_factory):
    """A small saved artifact shared by the exit-code and chaos tests."""
    path = tmp_path_factory.mktemp("cli") / "model.ppq"
    code = main(["save", "--synthetic", "porto", "--trajectories", "8",
                 "--seed", "3", "--output", str(path)])
    assert code == 0
    return path


class TestExitCodes:
    def test_missing_artifact_is_usage_error(self, tmp_path, capsys):
        assert main(["load", str(tmp_path / "nope.ppq")]) == EXIT_USAGE
        assert "cannot read artifact" in capsys.readouterr().err

    def test_malformed_artifact_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "garbage.ppq"
        bad.write_bytes(b"this is not a model artifact" * 8)
        assert main(["load", str(bad)]) == EXIT_ARTIFACT
        assert main(["info", str(bad)]) == EXIT_ARTIFACT
        assert main(["query", "--model", str(bad), "--x", "0", "--y", "0",
                     "--t", "0"]) == EXIT_ARTIFACT
        err = capsys.readouterr().err
        assert "error: artifact" in err

    def test_corrupt_artifact_strict_vs_salvage(self, saved_model, tmp_path, capsys):
        section = next(s for s in inspect_model(saved_model).sections
                       if s.name == "INDEX")
        blob = bytearray(saved_model.read_bytes())
        blob[section.offset + section.length // 2] ^= 0xFF
        bad = tmp_path / "corrupt.ppq"
        bad.write_bytes(bytes(blob))

        assert main(["load", str(bad)]) == EXIT_ARTIFACT
        capsys.readouterr()
        assert main(["load", "--no-strict", str(bad)]) == 0
        out = capsys.readouterr().out
        assert "salvaged" in out
        assert "INDEX: rebuilt" in out

    def test_bad_workload_exit_code(self, saved_model, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"type": "bogus", "x": 0, "y": 0, "t": 0}]))
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(bad)]) == EXIT_WORKLOAD
        assert "invalid workload" in capsys.readouterr().err

    def test_missing_workload_file_is_usage_error(self, saved_model, tmp_path):
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(tmp_path / "none.json")]) == EXIT_USAGE

    def test_failed_query_exit_code(self, tmp_path, capsys):
        """Exact queries against a --no-raw artifact fail with EXIT_QUERY."""
        path = tmp_path / "noraw.ppq"
        assert main(["save", "--synthetic", "porto", "--trajectories", "6",
                     "--seed", "3", "--output", str(path), "--no-raw"]) == 0
        workload = tmp_path / "exact.json"
        workload.write_text(json.dumps([{"type": "exact", "x": 0, "y": 0, "t": 0}]))
        capsys.readouterr()
        assert main(["query", "--model", str(path),
                     "--workload", str(workload)]) == EXIT_QUERY
        err = capsys.readouterr().err
        assert "query #0 (exact) failed" in err

    def test_good_workload_still_exits_zero(self, saved_model, tmp_path, capsys):
        workload = tmp_path / "ok.json"
        workload.write_text(json.dumps([{"type": "strq", "x": 0, "y": 0, "t": 0}]))
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(workload)]) == 0
        assert "workload" in capsys.readouterr().out

    @pytest.mark.parametrize("payload", [
        ["strq"],                                       # entry is a string
        [{"x": 0, "y": 0, "t": 0}],                     # missing kind
        [{"type": "strq", "y": 0, "t": 0}],             # missing coordinate
        [{"type": "strq", "x": "a", "y": 0, "t": 0}],   # non-numeric field
        [{"type": "tpq", "x": 0, "y": 0, "t": 0}],      # tpq without length
        {"queries": "strq"},                            # queries not a list
        "just a string",
    ])
    def test_malformed_workloads_exit_code_four(self, saved_model, tmp_path,
                                                capsys, payload):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(bad)]) == EXIT_WORKLOAD
        assert "invalid workload" in capsys.readouterr().err

    def test_unparseable_json_workload_exit_code_four(self, saved_model,
                                                      tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json at all")
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(bad)]) == EXIT_WORKLOAD
        assert "invalid workload" in capsys.readouterr().err

    def test_empty_workload_exits_zero(self, saved_model, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"queries": []}))
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(empty)]) == 0
        assert "0 queries" in capsys.readouterr().out


class TestParallelQuery:
    def test_jobs_requires_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--synthetic", "porto",
                                       "--x", "0", "--y", "0", "--t", "0",
                                       "--jobs", "2"])

    def test_jobs_must_be_positive(self, tmp_path):
        workload = tmp_path / "w.json"
        workload.write_text(json.dumps([{"type": "strq", "x": 0, "y": 0, "t": 0}]))
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--synthetic", "porto",
                                       "--workload", str(workload),
                                       "--jobs", "0"])

    def test_parallel_workload_runs(self, saved_model, tmp_path, capsys):
        workload = tmp_path / "par.json"
        workload.write_text(json.dumps(
            [{"type": ("strq", "tpq")[i % 2], "x": 0, "y": 0, "t": i % 5,
              "length": 4} for i in range(8)]))
        assert main(["query", "--model", str(saved_model),
                     "--workload", str(workload), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out and "2 worker processes" in out


class TestChaos:
    def test_chaos_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_chaos_rejects_unknown_fault_point(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--synthetic", "porto",
                                       "--fault-points", "bogus.point"])

    def test_chaos_degrade_is_equivalent(self, saved_model, capsys):
        code = main(["chaos", "--model", str(saved_model), "--queries", "8",
                     "--fault-points", "index.cell_decode", "--fault-seed", "5"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "fault seed          : 5" in out
        assert "equivalence         : ok" in out
        assert "query errors        : 0" in out

    def test_chaos_fail_fast_surfaces_errors(self, saved_model, capsys):
        code = main(["chaos", "--model", str(saved_model), "--queries", "4",
                     "--mode", "fail-fast"])
        captured = capsys.readouterr()
        assert code == EXIT_QUERY
        assert "FAILED" in captured.out
        assert "not equivalent" in captured.err

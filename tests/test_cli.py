"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, build_system, load_dataset, main, run_compress, run_query


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_requires_dataset_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress"])

    def test_synthetic_defaults(self):
        args = build_parser().parse_args(["compress", "--synthetic", "porto"])
        assert args.synthetic == "porto"
        assert args.variant == "ppq-a"
        assert args.trajectories == 100

    def test_query_requires_coordinates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--synthetic", "porto"])


class TestBuilders:
    def test_load_synthetic_dataset(self):
        args = build_parser().parse_args(
            ["compress", "--synthetic", "porto", "--trajectories", "5"]
        )
        dataset = load_dataset(args)
        assert len(dataset) == 5

    def test_build_system_variants(self):
        for variant, expected in [("ppq-a", "ppq"), ("ppq-s", "ppq"), ("epq", "epq")]:
            args = build_parser().parse_args(
                ["compress", "--synthetic", "porto", "--variant", variant]
            )
            system = build_system(args)
            assert system.variant == expected

    def test_no_cqc_flag(self):
        args = build_parser().parse_args(
            ["compress", "--synthetic", "porto", "--no-cqc"]
        )
        system = build_system(args)
        assert not system.cqc_config.enabled


class TestCommands:
    def test_compress_prints_statistics(self):
        out = io.StringIO()
        args = build_parser().parse_args(
            ["compress", "--synthetic", "porto", "--trajectories", "8", "--seed", "3"]
        )
        assert run_compress(args, out=out) == 0
        text = out.getvalue()
        assert "codewords" in text
        assert "compression ratio" in text

    def test_query_finds_known_trajectory(self):
        args = build_parser().parse_args(
            ["query", "--synthetic", "porto", "--trajectories", "8", "--seed", "3",
             "--x", "0", "--y", "0", "--t", "5", "--length", "4"]
        )
        # Use the actual position of trajectory 0 at t=5 as the query point.
        dataset = load_dataset(args)
        point = dataset.get(0).points[5]
        args.x, args.y = float(point[0]), float(point[1])
        out = io.StringIO()
        assert run_query(args, out=out) == 0
        assert "STRQ" in out.getvalue()

    def test_main_dispatch(self, capsys):
        code = main(["compress", "--synthetic", "porto", "--trajectories", "5", "--seed", "1"])
        assert code == 0
        assert "points" in capsys.readouterr().out

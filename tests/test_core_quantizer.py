"""Tests for the incremental error-bounded quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codebook import Codebook
from repro.core.quantizer import IncrementalQuantizer, kmeans


class TestErrorBound:
    def test_single_batch_respects_bound(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(scale=0.01, size=(200, 2))
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=0.005)
        indices = quantizer.quantize(vectors, cb)
        errors = np.linalg.norm(vectors - cb.reconstruct(indices), axis=1)
        assert np.all(errors <= 0.005 + 1e-12)

    def test_bound_holds_across_batches_with_shared_codebook(self):
        rng = np.random.default_rng(1)
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=0.01)
        for batch in range(5):
            vectors = rng.normal(scale=0.02, size=(100, 2)) + batch * 0.01
            indices = quantizer.quantize(vectors, cb)
            errors = np.linalg.norm(vectors - cb.reconstruct(indices), axis=1)
            assert np.all(errors <= 0.01 + 1e-12)

    def test_codebook_reuse_limits_growth(self):
        """Quantizing the same data twice must not add new codewords."""
        rng = np.random.default_rng(2)
        vectors = rng.normal(scale=0.01, size=(100, 2))
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=0.01)
        quantizer.quantize(vectors, cb)
        size_after_first = len(cb)
        quantizer.quantize(vectors, cb)
        assert len(cb) == size_after_first

    def test_empty_input(self):
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=0.01)
        indices = quantizer.quantize(np.empty((0, 2)), cb)
        assert len(indices) == 0
        assert len(cb) == 0

    def test_single_vector(self):
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=1e-6)
        indices = quantizer.quantize(np.array([[5.0, 5.0]]), cb)
        np.testing.assert_allclose(cb.reconstruct(indices)[0], [5.0, 5.0])

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            IncrementalQuantizer(epsilon=0.0)

    def test_budget_cap_still_respects_bound(self):
        """Even with a tiny per-step codeword budget the bound must hold
        (the fallback adds violating vectors verbatim)."""
        rng = np.random.default_rng(3)
        vectors = rng.uniform(-1.0, 1.0, size=(64, 2))
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=0.01, max_new_codewords_per_step=4)
        indices = quantizer.quantize(vectors, cb)
        errors = np.linalg.norm(vectors - cb.reconstruct(indices), axis=1)
        assert np.all(errors <= 0.01 + 1e-12)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=120),
        st.floats(min_value=0.005, max_value=0.5),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_error_bound_property(self, n, epsilon, seed):
        """Invariant of Equation 3: every vector within epsilon of its codeword."""
        rng = np.random.default_rng(seed)
        vectors = rng.uniform(-1.0, 1.0, size=(n, 2))
        cb = Codebook()
        quantizer = IncrementalQuantizer(epsilon=epsilon, seed=seed)
        indices = quantizer.quantize(vectors, cb)
        errors = np.linalg.norm(vectors - cb.reconstruct(indices), axis=1)
        assert np.all(errors <= epsilon + 1e-9)

    def test_smaller_epsilon_needs_more_codewords(self):
        rng = np.random.default_rng(4)
        vectors = rng.uniform(-0.5, 0.5, size=(400, 2))
        sizes = {}
        for eps in (0.2, 0.02):
            cb = Codebook()
            IncrementalQuantizer(epsilon=eps, seed=0).quantize(vectors, cb)
            sizes[eps] = len(cb)
        assert sizes[0.02] > sizes[0.2]


class TestKmeansHelper:
    def test_basic_clustering(self):
        points = np.vstack([np.zeros((20, 2)), np.ones((20, 2)) * 10.0])
        centroids, labels = kmeans(points, 2, seed=0)
        assert centroids.shape == (2, 2)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
        assert labels[0] != labels[-1]

    def test_k_clamped_to_n(self):
        points = np.zeros((3, 2))
        centroids, labels = kmeans(points, 10, seed=0)
        assert len(centroids) == 3

    def test_arbitrary_dimensionality(self):
        points = np.random.default_rng(0).normal(size=(30, 4))
        centroids, labels = kmeans(points, 3, seed=1)
        assert centroids.shape == (3, 4)
        assert labels.shape == (30,)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)

"""Tests for the local-search cell enumeration helpers."""

import math

import pytest

from repro.cqc.local_search import cells_within_radius, neighbor_cells, search_radius


class TestSearchRadius:
    def test_formula(self):
        assert search_radius(1.0) == pytest.approx(math.sqrt(2) / 2)

    def test_scales_linearly(self):
        assert search_radius(2.0) == pytest.approx(2 * search_radius(1.0))


class TestNeighborCells:
    def test_three_by_three_block(self):
        cells = neighbor_cells((5, 5))
        assert len(cells) == 9
        assert (5, 5) in cells
        assert (4, 4) in cells and (6, 6) in cells

    def test_exclude_center(self):
        cells = neighbor_cells((0, 0), include_center=False)
        assert len(cells) == 8
        assert (0, 0) not in cells


class TestCellsWithinRadius:
    def test_radius_smaller_than_cell_returns_at_most_four(self):
        cells = cells_within_radius((0.55, 0.55), radius=0.1, origin=(0.0, 0.0), cell_size=1.0)
        assert (0, 0) in cells
        assert len(cells) <= 4

    def test_large_radius_covers_many_cells(self):
        cells = cells_within_radius((5.0, 5.0), radius=2.5, origin=(0.0, 0.0), cell_size=1.0)
        # The disc of radius 2.5 around (5,5) spans cells 2..7 in each axis.
        assert (4, 4) in cells
        assert (7, 5) in cells
        assert (0, 0) not in cells

    def test_cells_actually_intersect_disc(self):
        point = (3.3, 4.7)
        radius = 1.7
        cells = cells_within_radius(point, radius, origin=(0.0, 0.0), cell_size=1.0)
        for ix, iy in cells:
            nearest_x = min(max(point[0], ix), ix + 1.0)
            nearest_y = min(max(point[1], iy), iy + 1.0)
            assert (nearest_x - point[0]) ** 2 + (nearest_y - point[1]) ** 2 <= radius ** 2 + 1e-9

    def test_query_cell_always_included(self):
        cells = cells_within_radius((2.5, 2.5), radius=0.01, origin=(0.0, 0.0), cell_size=1.0)
        assert (2, 2) in cells

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            cells_within_radius((0.0, 0.0), 1.0, (0.0, 0.0), 0.0)

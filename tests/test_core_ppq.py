"""Tests for E-PQ and PPQ (the paper's core quantizers)."""

import numpy as np
import pytest

from repro.core.config import CQCConfig, PPQConfig, PartitionCriterion
from repro.core.epq import ErrorBoundedPredictiveQuantizer
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.metrics.accuracy import mean_absolute_error, reconstruction_errors
from repro.utils.geo import meters_to_degrees


class TestErrorBoundInvariant:
    """The central guarantee: the base reconstruction is within epsilon1."""

    @pytest.mark.parametrize("criterion", [PartitionCriterion.SPATIAL,
                                           PartitionCriterion.AUTOCORRELATION])
    def test_ppq_base_reconstruction_is_error_bounded(self, porto_small, criterion):
        eps_p = 0.1 if criterion is PartitionCriterion.SPATIAL else 0.01
        config = PPQConfig(epsilon1=0.001, epsilon_p=eps_p, criterion=criterion)
        quantizer = PartitionwisePredictiveQuantizer(config, CQCConfig(enabled=False))
        summary = quantizer.summarize(porto_small)
        errors = reconstruction_errors(summary, porto_small)
        assert len(errors) == porto_small.num_points
        assert np.max(errors) <= config.epsilon1 + 1e-9

    def test_epq_base_reconstruction_is_error_bounded(self, porto_small):
        config = PPQConfig(epsilon1=0.002)
        quantizer = ErrorBoundedPredictiveQuantizer(config, CQCConfig(enabled=False))
        summary = quantizer.summarize(porto_small)
        errors = reconstruction_errors(summary, porto_small)
        assert np.max(errors) <= config.epsilon1 + 1e-9

    def test_cqc_tightens_the_bound(self, porto_small):
        """With CQC the residual error is bounded by sqrt(2)/2 * g_s (Lemma 3)."""
        config = PPQConfig(epsilon1=0.001)
        cqc = CQCConfig(grid_size=meters_to_degrees(50.0))
        quantizer = PartitionwisePredictiveQuantizer(config, cqc)
        summary = quantizer.summarize(porto_small)
        errors = reconstruction_errors(summary, porto_small)
        bound = np.sqrt(2.0) / 2.0 * cqc.grid_size
        assert np.max(errors) <= bound + 1e-9


class TestSummaryContents:
    def test_every_point_is_summarised(self, porto_small, default_ppq_config):
        quantizer = PartitionwisePredictiveQuantizer(default_ppq_config, CQCConfig())
        summary = quantizer.summarize(porto_small)
        assert summary.num_points == porto_small.num_points

    def test_t_max_limits_processing(self, porto_small, default_ppq_config):
        quantizer = PartitionwisePredictiveQuantizer(default_ppq_config, CQCConfig())
        summary = quantizer.summarize(porto_small, t_max=10)
        assert max(summary.timestamps) <= 10

    def test_records_hold_coefficients_and_codes(self, porto_small, default_ppq_config):
        quantizer = PartitionwisePredictiveQuantizer(default_ppq_config, CQCConfig())
        summary = quantizer.summarize(porto_small, t_max=5)
        for record in summary.records.values():
            assert record.num_partitions >= 1
            assert record.num_points >= 1
            assert len(record.cqc_codes) == record.num_points
            for coeffs in record.coefficients.values():
                assert coeffs.shape == (default_ppq_config.prediction_order,)

    def test_basic_variant_has_no_cqc_codes(self, porto_small, default_ppq_config):
        quantizer = PartitionwisePredictiveQuantizer(
            default_ppq_config, CQCConfig(enabled=False)
        )
        summary = quantizer.summarize(porto_small, t_max=5)
        assert summary.cqc_coder is None
        assert all(not record.cqc_codes for record in summary.records.values())

    def test_partition_history_is_tracked(self, porto_small, default_ppq_config):
        quantizer = PartitionwisePredictiveQuantizer(default_ppq_config, CQCConfig())
        quantizer.summarize(porto_small, t_max=10)
        assert len(quantizer.partition_history) > 0
        assert all(q >= 1 for q in quantizer.partition_history)

    def test_timings_recorded(self, porto_small, default_ppq_config):
        quantizer = PartitionwisePredictiveQuantizer(default_ppq_config, CQCConfig())
        quantizer.summarize(porto_small, t_max=10)
        assert quantizer.timings["total"] > 0.0
        assert quantizer.timings["quantization"] >= 0.0


class TestPredictionBenefit:
    def test_prediction_shrinks_codebook_on_predictable_data(self, straight_line_dataset):
        """On perfectly linear motion the predictive codebook stays tiny while
        the non-predictive one must tile the whole spatial extent."""
        eps = 0.0002
        with_prediction = PartitionwisePredictiveQuantizer(
            PPQConfig(epsilon1=eps, use_prediction=True), CQCConfig(enabled=False)
        ).summarize(straight_line_dataset)
        without_prediction = PartitionwisePredictiveQuantizer(
            PPQConfig(epsilon1=eps, use_prediction=False), CQCConfig(enabled=False)
        ).summarize(straight_line_dataset)
        assert with_prediction.num_codewords < without_prediction.num_codewords

    def test_epq_single_partition(self, porto_small):
        quantizer = ErrorBoundedPredictiveQuantizer(PPQConfig(), CQCConfig())
        summary = quantizer.summarize(porto_small, t_max=10)
        assert summary.max_partitions() == 1

    def test_ppq_uses_multiple_partitions_when_needed(self, porto_small):
        config = PPQConfig(epsilon_p=0.01)  # tight spatial threshold
        quantizer = PartitionwisePredictiveQuantizer(config, CQCConfig())
        summary = quantizer.summarize(porto_small, t_max=10)
        assert summary.max_partitions() > 1


class TestMAEOrdering:
    def test_cqc_variant_has_lower_mae_than_basic(self, porto_small):
        config = PPQConfig(epsilon1=0.001)
        basic = PartitionwisePredictiveQuantizer(
            config, CQCConfig(enabled=False)).summarize(porto_small)
        full = PartitionwisePredictiveQuantizer(config, CQCConfig()).summarize(porto_small)
        assert mean_absolute_error(full, porto_small) < mean_absolute_error(basic, porto_small)

"""End-to-end tests of the PPQTrajectory facade."""

import numpy as np
import pytest

from repro import CQCConfig, IndexConfig, PPQConfig, PPQTrajectory, PartitionCriterion
from repro.metrics.accuracy import mean_absolute_error


class TestConstruction:
    def test_defaults(self):
        system = PPQTrajectory()
        assert system.variant == "ppq"
        assert system.ppq_config.epsilon1 == pytest.approx(0.001)

    def test_invalid_variant(self):
        with pytest.raises(ValueError):
            PPQTrajectory(variant="bogus")

    def test_ppq_a_factory(self):
        system = PPQTrajectory.ppq_a()
        assert system.ppq_config.criterion is PartitionCriterion.AUTOCORRELATION
        assert system.ppq_config.epsilon_p == pytest.approx(0.01)

    def test_ppq_s_factory(self):
        system = PPQTrajectory.ppq_s()
        assert system.ppq_config.criterion is PartitionCriterion.SPATIAL

    def test_epq_variant_uses_single_partition(self, porto_small):
        system = PPQTrajectory(variant="epq")
        system.fit(porto_small, t_max=8, build_index=False)
        assert system.summary.max_partitions() == 1


class TestLifecycle:
    def test_query_before_fit_raises(self):
        system = PPQTrajectory()
        with pytest.raises(RuntimeError):
            system.strq(0.0, 0.0, 0)
        with pytest.raises(RuntimeError):
            system.compression_ratio()

    def test_fit_without_index_blocks_queries_but_allows_reconstruction(self, porto_small):
        system = PPQTrajectory()
        system.fit(porto_small, t_max=10, build_index=False)
        assert system.reconstruct(porto_small.trajectory_ids[0], 3) is not None
        with pytest.raises(RuntimeError):
            system.strq(0.0, 0.0, 0)

    def test_full_fit_enables_all_queries(self, fitted_ppq_s, porto_small):
        tid = porto_small.trajectory_ids[0]
        traj = porto_small.get(tid)
        x, y = traj.points[4]
        assert fitted_ppq_s.strq(x, y, 4).candidates
        assert fitted_ppq_s.tpq(x, y, 4, length=5).paths
        assert fitted_ppq_s.exact(x, y, 4).matches is not None

    def test_reconstruction_error_within_cqc_bound(self, fitted_ppq_s, porto_small):
        coder = fitted_ppq_s.summary.cqc_coder
        bound = coder.residual_bound
        rng = np.random.default_rng(0)
        for _ in range(30):
            tid = int(rng.choice(porto_small.trajectory_ids))
            traj = porto_small.get(tid)
            t = int(rng.integers(0, len(traj)))
            reconstruction = fitted_ppq_s.reconstruct(tid, t)
            assert np.linalg.norm(reconstruction - traj.points[t]) <= bound + 1e-12

    def test_compression_ratio_above_one(self, fitted_ppq_s):
        assert fitted_ppq_s.compression_ratio() > 1.0

    def test_num_codewords_positive(self, fitted_ppq_s):
        assert fitted_ppq_s.num_codewords() > 0


class TestVariantOrdering:
    """Relative behaviours the paper reports, checked end to end."""

    def test_ppq_beats_no_prediction_on_codebook_size(self, porto_small):
        ppq = PPQTrajectory(ppq_config=PPQConfig(), cqc_config=CQCConfig(enabled=False))
        ppq.fit(porto_small, build_index=False)
        no_pred = PPQTrajectory(
            ppq_config=PPQConfig(use_prediction=False), cqc_config=CQCConfig(enabled=False)
        )
        no_pred.fit(porto_small, build_index=False)
        assert ppq.num_codewords() <= no_pred.num_codewords()

    def test_cqc_reduces_mae(self, porto_small):
        basic = PPQTrajectory(cqc_config=CQCConfig(enabled=False))
        basic.fit(porto_small, build_index=False)
        full = PPQTrajectory(cqc_config=CQCConfig())
        full.fit(porto_small, build_index=False)
        assert (mean_absolute_error(full.summary, porto_small)
                < mean_absolute_error(basic.summary, porto_small))

    def test_geolife_like_also_supported(self, geolife_small):
        system = PPQTrajectory.ppq_a(index_config=IndexConfig(epsilon_s=5.0))
        system.fit(geolife_small, t_max=30)
        mae = mean_absolute_error(system.summary, geolife_small, t_max=30)
        # Bounded by the CQC bound (about 35 m for the default 50 m grid).
        assert mae < 40.0

"""Tests for the PQ / RQ / Q-trajectory baselines."""

import numpy as np
import pytest

from repro.baselines.common import (
    BaselineSummary,
    codeword_budget_for_bits,
    index_bits_for_codewords,
)
from repro.baselines.product_quantization import ProductQuantizationSummarizer, _kmeans_1d
from repro.baselines.q_trajectory import QTrajectorySummarizer
from repro.baselines.residual_quantization import ResidualQuantizationSummarizer
from repro.metrics.accuracy import mean_absolute_error, reconstruction_errors


class TestCommonHelpers:
    def test_codeword_budget(self):
        assert codeword_budget_for_bits(5) == 32
        with pytest.raises(ValueError):
            codeword_budget_for_bits(0)

    def test_index_bits(self):
        assert index_bits_for_codewords(1) == 1
        assert index_bits_for_codewords(2) == 1
        assert index_bits_for_codewords(5) == 3

    def test_baseline_summary_reconstruction_interface(self):
        summary = BaselineSummary(method="test")
        summary.reconstructions[(1, 0)] = np.array([0.0, 0.0])
        summary.reconstructions[(1, 1)] = np.array([1.0, 1.0])
        assert summary.reconstruct_point(1, 0) is not None
        assert summary.reconstruct_point(2, 0) is None
        path = summary.reconstruct_path(1, 0, 5)
        assert len(path) == 2  # stops at the first missing timestamp

    def test_baseline_summary_to_dataset(self):
        summary = BaselineSummary(method="test")
        summary.reconstructions[(3, 0)] = np.array([0.0, 0.0])
        summary.reconstructions[(3, 1)] = np.array([1.0, 1.0])
        dataset = summary.to_dataset()
        assert len(dataset) == 1
        assert len(dataset.get(3)) == 2

    def test_compression_ratio(self):
        summary = BaselineSummary(method="test", num_points=10, storage_bits=160)
        assert summary.compression_ratio() == pytest.approx(10 * 128 / 160)
        empty = BaselineSummary(method="test")
        assert empty.compression_ratio() == float("inf")


class TestProductQuantization:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ProductQuantizationSummarizer()
        with pytest.raises(ValueError):
            ProductQuantizationSummarizer(bits=8, epsilon=0.1)
        with pytest.raises(ValueError):
            ProductQuantizationSummarizer(bits=1)
        with pytest.raises(ValueError):
            ProductQuantizationSummarizer(epsilon=-1.0)

    def test_every_point_reconstructed(self, porto_small):
        summary = ProductQuantizationSummarizer(bits=6).summarize(porto_small, t_max=10)
        truncated = porto_small.truncate(10)
        assert summary.num_points == truncated.num_points
        assert len(summary.reconstructions) == truncated.num_points

    def test_epsilon_mode_respects_bound(self, porto_small):
        eps = 0.01
        summary = ProductQuantizationSummarizer(epsilon=eps).summarize(porto_small, t_max=5)
        errors = reconstruction_errors(summary, porto_small, t_max=5)
        assert np.max(errors) <= eps + 1e-9

    def test_more_bits_means_lower_mae(self, porto_small):
        low = ProductQuantizationSummarizer(bits=2).summarize(porto_small, t_max=8)
        high = ProductQuantizationSummarizer(bits=8).summarize(porto_small, t_max=8)
        assert (mean_absolute_error(high, porto_small, t_max=8)
                <= mean_absolute_error(low, porto_small, t_max=8))

    def test_kmeans_1d(self):
        values = np.concatenate([np.zeros(10), np.ones(10) * 5.0])
        centroids, labels = _kmeans_1d(values, 2)
        assert len(centroids) == 2
        assert labels[0] != labels[-1]
        centroids_single, labels_single = _kmeans_1d(values, 1)
        assert len(centroids_single) == 1


class TestResidualQuantization:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ResidualQuantizationSummarizer()
        with pytest.raises(ValueError):
            ResidualQuantizationSummarizer(bits=8, stages=0)
        with pytest.raises(ValueError):
            ResidualQuantizationSummarizer(bits=1, stages=2)

    def test_epsilon_mode_respects_bound(self, porto_small):
        eps = 0.01
        summary = ResidualQuantizationSummarizer(epsilon=eps).summarize(porto_small, t_max=5)
        errors = reconstruction_errors(summary, porto_small, t_max=5)
        assert np.max(errors) <= eps + 1e-9

    def test_second_stage_improves_over_first(self, porto_small):
        one_stage = ResidualQuantizationSummarizer(bits=4, stages=1).summarize(porto_small, t_max=8)
        two_stage = ResidualQuantizationSummarizer(bits=8, stages=2).summarize(porto_small, t_max=8)
        assert (mean_absolute_error(two_stage, porto_small, t_max=8)
                <= mean_absolute_error(one_stage, porto_small, t_max=8))

    def test_storage_accounting_positive(self, porto_small):
        summary = ResidualQuantizationSummarizer(bits=6).summarize(porto_small, t_max=5)
        assert summary.storage_bits > 0
        assert summary.num_codewords > 0


class TestQTrajectory:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            QTrajectorySummarizer()
        with pytest.raises(ValueError):
            QTrajectorySummarizer(bits=0)

    def test_epsilon_mode_respects_bound(self, porto_small):
        eps = 0.005
        summary = QTrajectorySummarizer(epsilon=eps).summarize(porto_small, t_max=10)
        errors = reconstruction_errors(summary, porto_small, t_max=10)
        assert np.max(errors) <= eps + 1e-9

    def test_needs_more_codewords_than_ppq(self, porto_small):
        """Without prediction, the codebook must tile raw space -- it ends up
        larger than the predictive codebook at the same bound (the paper's
        central ablation)."""
        from repro.core.config import CQCConfig, PPQConfig
        from repro.core.ppq import PartitionwisePredictiveQuantizer

        eps = 0.001
        q_summary = QTrajectorySummarizer(epsilon=eps).summarize(porto_small)
        ppq_summary = PartitionwisePredictiveQuantizer(
            PPQConfig(epsilon1=eps), CQCConfig(enabled=False)
        ).summarize(porto_small)
        assert q_summary.num_codewords > ppq_summary.num_codewords

    def test_fixed_bits_mode(self, porto_small):
        summary = QTrajectorySummarizer(bits=4).summarize(porto_small, t_max=6)
        truncated = porto_small.truncate(6)
        assert summary.num_points == truncated.num_points
        assert summary.num_codewords > 0

"""Tests for the per-rectangle grid index."""

import numpy as np
import pytest

from repro.index.grid import GridIndex
from repro.index.rectangles import Rect


@pytest.fixture()
def grid():
    return GridIndex(Rect(0.0, 0.0, 10.0, 10.0), cell_size=1.0)


class TestInsertAndLookup:
    def test_insert_and_lookup(self, grid):
        ids = np.array([1, 2, 3])
        points = np.array([[0.5, 0.5], [0.6, 0.4], [5.5, 5.5]])
        inserted = grid.insert(ids, points)
        assert inserted == 3
        assert sorted(grid.lookup(0.5, 0.5)) == [1, 2]
        assert grid.lookup(5.1, 5.9) == [3]

    def test_points_outside_rect_ignored(self, grid):
        inserted = grid.insert(np.array([9]), np.array([[20.0, 20.0]]))
        assert inserted == 0
        assert grid.num_indexed_ids == 0

    def test_lookup_outside_rect_empty(self, grid):
        grid.insert(np.array([1]), np.array([[0.5, 0.5]]))
        assert grid.lookup(50.0, 50.0) == []

    def test_duplicate_ids_in_cell_stored_once(self, grid):
        grid.insert(np.array([7, 7]), np.array([[0.1, 0.1], [0.2, 0.2]]))
        assert grid.lookup(0.15, 0.15) == [7]

    def test_incremental_insert_extends_posting_list(self, grid):
        grid.insert(np.array([1]), np.array([[0.5, 0.5]]))
        grid.insert(np.array([2]), np.array([[0.4, 0.6]]))
        assert sorted(grid.lookup(0.5, 0.5)) == [1, 2]

    def test_alignment_validation(self, grid):
        with pytest.raises(ValueError):
            grid.insert(np.array([1, 2]), np.array([[0.0, 0.0]]))

    def test_cell_of_is_globally_anchored(self, grid):
        # Cell boundaries sit at multiples of the cell size in absolute
        # coordinates, so the same point maps to the same cell in every grid.
        assert grid.cell_of(0.5, 0.5) == (0, 0)
        assert grid.cell_of(1.0, 2.7) == (1, 2)
        assert grid.cell_of(-0.1, 0.0) == (-1, 0)

    def test_lookup_cells_union(self, grid):
        grid.insert(np.array([1, 2]), np.array([[0.5, 0.5], [1.5, 0.5]]))
        result = grid.lookup_cells([(0, 0), (1, 0), (5, 5)])
        assert result == {1, 2}

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(Rect(0, 0, 1, 1), cell_size=0.0)


class TestStatistics:
    def test_counts(self, grid):
        grid.insert(np.array([1, 2, 3]), np.array([[0.5, 0.5], [0.6, 0.6], [3.5, 3.5]]))
        assert grid.num_nonempty_cells == 2
        assert grid.num_indexed_ids == 3

    def test_density_definition(self):
        grid = GridIndex(Rect(0.0, 0.0, 2.0, 2.0), cell_size=1.0)
        grid.insert(np.array([1, 2]), np.array([[0.5, 0.5], [1.5, 1.5]]))
        # TRD = postings / area = 2 / 4.
        assert grid.density() == pytest.approx(0.5)

    def test_count_for_points(self, grid):
        points = np.array([[0.5, 0.5], [100.0, 100.0], [9.0, 9.0]])
        assert grid.count_for_points(points) == 2
        assert grid.count_for_points(np.empty((0, 2))) == 0

    def test_storage_bits_grow_with_content(self, grid):
        empty_bits = grid.storage_bits()
        grid.insert(np.arange(50), np.random.default_rng(0).uniform(0, 10, size=(50, 2)))
        assert grid.storage_bits() > empty_bits

    def test_num_cells_dimensions(self):
        grid = GridIndex(Rect(0.0, 0.0, 2.5, 1.2), cell_size=1.0)
        assert grid.num_cells_x == 3
        assert grid.num_cells_y == 2

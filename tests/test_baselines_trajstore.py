"""Tests for the TrajStore baseline."""

import numpy as np
import pytest

from repro.baselines.trajstore import TrajStore, TrajStoreSummarizer
from repro.index.rectangles import Rect
from repro.metrics.accuracy import reconstruction_errors


@pytest.fixture()
def store():
    return TrajStore(Rect(0.0, 0.0, 10.0, 10.0), cell_capacity=8, page_size_bytes=256)


class TestAdaptiveQuadtree:
    def test_cells_split_when_capacity_exceeded(self, store):
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 10, size=(100, 2))
        store.insert_slice(0, np.arange(100), points)
        assert store.num_splits >= 1
        leaves = store.leaves()
        assert all(leaf.num_points <= 8 or leaf.depth >= store.max_depth for leaf in leaves)

    def test_all_points_stored(self, store):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 10, size=(60, 2))
        store.insert_slice(0, np.arange(60), points)
        stored = sum(leaf.num_points for leaf in store.leaves())
        assert stored == 60

    def test_leaf_for_locates_point(self, store):
        points = np.array([[1.0, 1.0], [9.0, 9.0]])
        store.insert_slice(0, np.array([1, 2]), points)
        leaf = store.leaf_for(1.0, 1.0)
        assert leaf is not None
        assert (1, 0) in leaf.keys

    def test_leaf_for_out_of_bounds(self, store):
        assert store.leaf_for(100.0, 100.0) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TrajStore(Rect(0, 0, 1, 1), cell_capacity=0)


class TestDiskLayoutAndQuery:
    def test_query_counts_ios_and_filters_by_time(self, store):
        rng = np.random.default_rng(2)
        for t in range(5):
            points = rng.uniform(0, 10, size=(20, 2))
            store.insert_slice(t, np.arange(20), points)
        store.layout_on_pages()
        leaf = store.leaves()[0]
        # Query any point of a non-empty leaf.
        non_empty = next(c for c in store.leaves() if c.num_points)
        x, y = non_empty.points[0]
        t = non_empty.keys[0][1]
        result = store.query(x, y, t)
        assert non_empty.keys[0][0] in result
        assert store.num_ios >= 1

    def test_query_empty_cell(self, store):
        store.layout_on_pages()
        assert store.query(5.0, 5.0, 0) == []

    def test_index_size(self, store):
        rng = np.random.default_rng(3)
        store.insert_slice(0, np.arange(30), rng.uniform(0, 10, size=(30, 2)))
        assert store.index_size_megabytes() > 0.0


class TestTrajStoreSummarizer:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            TrajStoreSummarizer()
        with pytest.raises(ValueError):
            TrajStoreSummarizer(bits=6, epsilon=0.1)

    def test_every_point_reconstructed(self, porto_small):
        summary = TrajStoreSummarizer(bits=6, cell_capacity=64).summarize(porto_small, t_max=10)
        truncated = porto_small.truncate(10)
        assert summary.num_points == truncated.num_points
        assert len(summary.reconstructions) == truncated.num_points
        assert summary.extras["num_cells"] >= 1

    def test_epsilon_mode_respects_bound(self, porto_small):
        eps = 0.01
        summary = TrajStoreSummarizer(epsilon=eps, cell_capacity=64).summarize(porto_small, t_max=5)
        errors = reconstruction_errors(summary, porto_small, t_max=5)
        assert np.max(errors) <= eps + 1e-9

    def test_budget_distributed_by_cell_population(self, porto_small):
        summary = TrajStoreSummarizer(bits=5, cell_capacity=32).summarize(porto_small, t_max=8)
        assert summary.num_codewords > 0
        assert summary.storage_bits > 0

"""Tests for the REST reference-based compression baseline."""

import numpy as np
import pytest

from repro.baselines.rest import RESTCompressor, _MatchToken, _RawToken
from repro.data.subporto import build_sub_porto
from repro.data.synthetic import generate_porto_like
from repro.data.trajectory import Trajectory, TrajectoryDataset


@pytest.fixture(scope="module")
def subporto_split():
    source = generate_porto_like(num_trajectories=15, max_length=60, seed=41)
    return build_sub_porto(source, num_base=10, variants_per_base=3,
                           compress_fraction=0.1, noise_std_m=5.0, seed=4)


class TestConstruction:
    def test_invalid_parameters(self):
        ref = TrajectoryDataset([Trajectory(0, np.zeros((5, 2)))])
        with pytest.raises(ValueError):
            RESTCompressor(ref, deviation=0.0)
        with pytest.raises(ValueError):
            RESTCompressor(ref, deviation=0.1, min_match_length=0)
        with pytest.raises(ValueError):
            RESTCompressor(ref, deviation=0.1, min_match_length=4, max_match_length=2)


class TestCompression:
    def test_identical_trajectory_compresses_to_one_token(self):
        points = np.cumsum(np.ones((20, 2)) * 0.001, axis=0)
        reference = TrajectoryDataset([Trajectory(0, points)])
        compressor = RESTCompressor(reference, deviation=0.0005, max_match_length=32)
        target = TrajectoryDataset([Trajectory(1, points.copy())])
        summary = compressor.compress(target)
        tokens = summary.tokens[1]
        assert len(tokens) == 1
        assert isinstance(tokens[0], _MatchToken)
        assert tokens[0].length == 20
        assert summary.matched_fraction() == 1.0

    def test_max_match_length_caps_tokens(self):
        points = np.cumsum(np.ones((20, 2)) * 0.001, axis=0)
        reference = TrajectoryDataset([Trajectory(0, points)])
        compressor = RESTCompressor(reference, deviation=0.0005, max_match_length=5)
        summary = compressor.compress(TrajectoryDataset([Trajectory(1, points.copy())]))
        tokens = summary.tokens[1]
        assert all(tok.length <= 5 for tok in tokens if isinstance(tok, _MatchToken))
        assert len(tokens) >= 4  # 20 points / 5 per token
        # Reconstruction is still exact.
        np.testing.assert_allclose(compressor.reconstruct(summary, 1), points)

    def test_unmatchable_trajectory_stays_raw(self):
        reference = TrajectoryDataset([Trajectory(0, np.zeros((10, 2)))])
        compressor = RESTCompressor(reference, deviation=0.0001)
        far_away = np.ones((8, 2)) * 100.0
        summary = compressor.compress(TrajectoryDataset([Trajectory(1, far_away)]))
        assert all(isinstance(tok, _RawToken) for tok in summary.tokens[1])
        assert summary.compression_ratio() <= 1.0

    def test_reconstruction_within_deviation(self, subporto_split):
        deviation = 100.0 / 111_000.0
        compressor = RESTCompressor(subporto_split.reference_set, deviation=deviation)
        summary = compressor.compress(subporto_split.compress_set)
        for traj in subporto_split.compress_set:
            reconstruction = compressor.reconstruct(summary, traj.traj_id)
            assert len(reconstruction) == len(traj.points)
            errors = np.linalg.norm(reconstruction - traj.points, axis=1)
            assert np.max(errors) <= deviation + 1e-12

    def test_repetitive_data_compresses_better_than_random(self, subporto_split):
        deviation = 200.0 / 111_000.0
        compressor = RESTCompressor(subporto_split.reference_set, deviation=deviation)
        good = compressor.compress(subporto_split.compress_set)

        rng = np.random.default_rng(0)
        random_traj = TrajectoryDataset([
            Trajectory(0, rng.uniform(-10, 10, size=(50, 2)))
        ])
        bad = compressor.compress(random_traj)
        assert good.compression_ratio() > bad.compression_ratio()

    def test_larger_deviation_does_not_reduce_ratio(self, subporto_split):
        tight = RESTCompressor(subporto_split.reference_set, deviation=20.0 / 111_000.0)
        loose = RESTCompressor(subporto_split.reference_set, deviation=400.0 / 111_000.0)
        ratio_tight = tight.compress(subporto_split.compress_set).compression_ratio()
        ratio_loose = loose.compress(subporto_split.compress_set).compression_ratio()
        assert ratio_loose >= ratio_tight

    def test_reconstruct_unknown_trajectory_raises(self, subporto_split):
        compressor = RESTCompressor(subporto_split.reference_set, deviation=0.001)
        summary = compressor.compress(subporto_split.compress_set)
        with pytest.raises(KeyError):
            compressor.reconstruct(summary, 10_000)

    def test_storage_accounting(self, subporto_split):
        compressor = RESTCompressor(subporto_split.reference_set, deviation=0.001)
        summary = compressor.compress(subporto_split.compress_set)
        assert summary.storage_bits > 0
        assert summary.num_points == subporto_split.compress_set.num_points

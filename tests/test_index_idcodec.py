"""Tests for the delta + Huffman trajectory-ID codec."""

import pytest
from hypothesis import given, strategies as st

from repro.index.idcodec import compress_ids, decompress_ids, raw_id_bits


class TestRoundtrip:
    def test_simple(self):
        ids = [10, 3, 7, 42, 11]
        compressed = compress_ids(ids)
        assert decompress_ids(compressed) == sorted(set(ids))

    def test_duplicates_are_removed(self):
        compressed = compress_ids([5, 5, 5, 2])
        assert decompress_ids(compressed) == [2, 5]
        assert compressed.count == 2

    def test_empty(self):
        compressed = compress_ids([])
        assert compressed.count == 0
        assert decompress_ids(compressed) == []
        assert compressed.storage_bits == 64  # header only

    def test_single_id(self):
        compressed = compress_ids([123])
        assert decompress_ids(compressed) == [123]

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=0, max_size=400))
    def test_roundtrip_property(self, ids):
        compressed = compress_ids(ids)
        assert decompress_ids(compressed) == sorted(set(ids))

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=400))
    def test_count_matches(self, ids):
        compressed = compress_ids(ids)
        assert compressed.count == len(set(ids))


class TestCompressionEffectiveness:
    def test_dense_lists_compress_well(self):
        """Consecutive IDs (delta = 1 everywhere) should beat 32-bit storage."""
        ids = list(range(1000, 2000))
        compressed = compress_ids(ids)
        assert compressed.storage_bits < raw_id_bits(ids)

    def test_storage_includes_table_and_header(self):
        compressed = compress_ids([1, 2, 3])
        assert compressed.storage_bits > compressed.bit_length
        assert compressed.storage_bytes == pytest.approx(compressed.storage_bits / 8.0)

    def test_raw_id_bits(self):
        assert raw_id_bits([1, 2, 3]) == 96
        assert raw_id_bits([1, 2, 3], bits_per_id=64) == 192

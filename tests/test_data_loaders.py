"""Tests for the real-dataset loaders (exercised on small fixture files)."""

import pytest

from repro.data.loaders import iter_dataset_chunks, load_plt_directory, load_porto_csv
from repro.data.synthetic import generate_porto_like


@pytest.fixture()
def porto_csv(tmp_path):
    """A tiny CSV in the Porto taxi challenge format."""
    lines = [
        'TRIP_ID,CALL_TYPE,POLYLINE',
        '1,A,"[[-8.61, 41.14], [-8.62, 41.15], [-8.63, 41.16]]"',
        '2,B,"[[-8.60, 41.10], [-8.61, 41.11]]"',
        '3,C,"[]"',
        '4,A,"' + str([[-8.6 + 0.001 * i, 41.1 + 0.001 * i] for i in range(35)]) + '"',
    ]
    path = tmp_path / "porto.csv"
    path.write_text("\n".join(lines), encoding="utf-8")
    return path


@pytest.fixture()
def plt_directory(tmp_path):
    """A tiny GeoLife-style directory with two .plt files."""
    root = tmp_path / "geolife" / "000" / "Trajectory"
    root.mkdir(parents=True)
    header = "\n".join(["Geolife trajectory", "WGS 84", "Altitude is in Feet",
                        "Reserved 3", "0,2,255,My Track,0,0,2,8421376", "0"])
    long_points = "\n".join(
        f"{39.9 + 0.001 * i},{116.3 + 0.001 * i},0,100,39000,2008-10-23,02:53:04"
        for i in range(40)
    )
    (root / "20081023025304.plt").write_text(header + "\n" + long_points, encoding="utf-8")
    short_points = "\n".join(
        f"{39.9},{116.3},0,100,39000,2008-10-23,02:53:04" for _ in range(5)
    )
    (root / "20081023030000.plt").write_text(header + "\n" + short_points, encoding="utf-8")
    return tmp_path / "geolife"


class TestPortoLoader:
    def test_min_length_filter(self, porto_csv):
        dataset = load_porto_csv(str(porto_csv), min_length=30)
        assert len(dataset) == 1
        assert len(dataset.get(0)) == 35

    def test_loads_all_when_threshold_low(self, porto_csv):
        dataset = load_porto_csv(str(porto_csv), min_length=2)
        assert len(dataset) == 3  # the empty polyline row is always dropped

    def test_coordinates_are_lon_lat(self, porto_csv):
        dataset = load_porto_csv(str(porto_csv), min_length=2)
        first = dataset.get(0).points[0]
        assert first[0] == pytest.approx(-8.61)
        assert first[1] == pytest.approx(41.14)

    def test_max_trajectories_cap(self, porto_csv):
        dataset = load_porto_csv(str(porto_csv), min_length=2, max_trajectories=1)
        assert len(dataset) == 1

    def test_missing_polyline_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,B\n1,2\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_porto_csv(str(path))

    def test_malformed_polyline_raises(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text('POLYLINE\n"[[-8.6, 41.1], [-8.6"\n', encoding="utf-8")
        with pytest.raises(ValueError):
            load_porto_csv(str(path), min_length=1)


class TestGeoLifeLoader:
    def test_min_length_filter(self, plt_directory):
        dataset = load_plt_directory(str(plt_directory), min_length=30)
        assert len(dataset) == 1
        assert len(dataset.get(0)) == 40

    def test_lon_lat_order(self, plt_directory):
        dataset = load_plt_directory(str(plt_directory), min_length=30)
        first = dataset.get(0).points[0]
        # x should be the longitude (~116), y the latitude (~39).
        assert first[0] == pytest.approx(116.3)
        assert first[1] == pytest.approx(39.9)

    def test_max_trajectories_cap(self, plt_directory):
        dataset = load_plt_directory(str(plt_directory), min_length=1, max_trajectories=1)
        assert len(dataset) == 1


class TestChunking:
    def test_iter_dataset_chunks_covers_everything(self):
        dataset = generate_porto_like(num_trajectories=10, max_length=35, seed=3)
        chunks = list(iter_dataset_chunks(dataset, chunk_size=4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        seen = sorted(tid for chunk in chunks for tid in chunk.trajectory_ids)
        assert seen == dataset.trajectory_ids

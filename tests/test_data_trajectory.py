"""Tests for the trajectory data model."""

import numpy as np
import pytest

from repro.data.trajectory import Trajectory, TrajectoryDataset


def make_dataset():
    t0 = Trajectory(traj_id=0, points=np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]]))
    t1 = Trajectory(traj_id=1, points=np.array([[5.0, 5.0], [6.0, 6.0]]))
    t2 = Trajectory(traj_id=2, points=np.array([[9.0, 9.0]]), timestamps=np.array([2]))
    return TrajectoryDataset([t0, t1, t2])


class TestTrajectory:
    def test_default_timestamps(self):
        traj = Trajectory(traj_id=0, points=np.zeros((4, 2)))
        np.testing.assert_array_equal(traj.timestamps, [0, 1, 2, 3])

    def test_length_and_duration(self):
        traj = Trajectory(traj_id=0, points=np.zeros((4, 2)))
        assert len(traj) == 4
        assert traj.duration == 3

    def test_mismatched_timestamps_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(traj_id=0, points=np.zeros((3, 2)), timestamps=np.array([0, 1]))

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(traj_id=0, points=np.zeros((3, 2)), timestamps=np.array([0, 2, 1]))

    def test_point_at(self):
        traj = Trajectory(traj_id=0, points=np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(traj.point_at(1), [3.0, 4.0])
        assert traj.point_at(5) is None

    def test_segment(self):
        traj = Trajectory(traj_id=0, points=np.arange(10).reshape(5, 2))
        segment = traj.segment(1, 3)
        assert segment.shape == (3, 2)

    def test_bounding_box(self):
        traj = Trajectory(traj_id=0, points=np.array([[0.0, 5.0], [2.0, -1.0]]))
        assert traj.bounding_box() == (0.0, -1.0, 2.0, 5.0)


class TestTrajectoryDataset:
    def test_len_and_contains(self):
        dataset = make_dataset()
        assert len(dataset) == 3
        assert 0 in dataset
        assert 7 not in dataset

    def test_duplicate_ids_rejected(self):
        t = Trajectory(traj_id=0, points=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            TrajectoryDataset([t, t])

    def test_num_points_and_max_length(self):
        dataset = make_dataset()
        assert dataset.num_points == 6
        assert dataset.max_length == 3

    def test_time_slice_alignment(self):
        dataset = make_dataset()
        slice0 = dataset.time_slice(0)
        assert sorted(slice0.traj_ids.tolist()) == [0, 1]
        slice2 = dataset.time_slice(2)
        assert sorted(slice2.traj_ids.tolist()) == [0, 2]

    def test_time_slice_points_match_trajectories(self):
        dataset = make_dataset()
        slice1 = dataset.time_slice(1)
        for tid, point in zip(slice1.traj_ids, slice1.points):
            np.testing.assert_array_equal(point, dataset.get(int(tid)).point_at(1))

    def test_missing_timestamp_gives_empty_slice(self):
        dataset = make_dataset()
        empty = dataset.time_slice(99)
        assert len(empty) == 0

    def test_iter_time_slices_ordered_and_bounded(self):
        dataset = make_dataset()
        timestamps = [s.t for s in dataset.iter_time_slices()]
        assert timestamps == sorted(timestamps)
        bounded = [s.t for s in dataset.iter_time_slices(t_max=1)]
        assert bounded == [0, 1]

    def test_restrict(self):
        dataset = make_dataset()
        small = dataset.restrict([0, 2])
        assert sorted(small.trajectory_ids) == [0, 2]

    def test_truncate(self):
        dataset = make_dataset()
        truncated = dataset.truncate(0)
        assert truncated.num_points == 2
        assert 2 not in truncated  # trajectory 2 starts at t=2

    def test_from_arrays(self):
        dataset = TrajectoryDataset.from_arrays([np.zeros((3, 2)), np.ones((2, 2))])
        assert len(dataset) == 2
        assert dataset.get(1).points.shape == (2, 2)

    def test_bounding_box(self):
        dataset = make_dataset()
        assert dataset.bounding_box() == (0.0, 0.0, 9.0, 9.0)

    def test_timestamps_property(self):
        dataset = make_dataset()
        assert dataset.timestamps == [0, 1, 2]

"""Tests for the configuration dataclasses."""

import pytest

from repro.core.config import CQCConfig, IndexConfig, PPQConfig, PartitionCriterion
from repro.utils.geo import meters_to_degrees


class TestPPQConfig:
    def test_defaults_match_paper(self):
        config = PPQConfig()
        assert config.epsilon1 == pytest.approx(0.001)
        assert config.criterion is PartitionCriterion.SPATIAL
        assert config.prediction_order == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PPQConfig(epsilon1=0.0)
        with pytest.raises(ValueError):
            PPQConfig(epsilon_p=-1.0)
        with pytest.raises(ValueError):
            PPQConfig(prediction_order=0)
        with pytest.raises(ValueError):
            PPQConfig(max_partitions=0)

    def test_criterion_accepts_string(self):
        config = PPQConfig(criterion="autocorrelation")
        assert config.criterion is PartitionCriterion.AUTOCORRELATION

    def test_for_spatial_deviation_meters(self):
        config = PPQConfig.for_spatial_deviation_meters(111.0)
        assert config.epsilon1 == pytest.approx(0.001)

    def test_for_spatial_deviation_meters_forwards_overrides(self):
        config = PPQConfig.for_spatial_deviation_meters(
            222.0, criterion=PartitionCriterion.AUTOCORRELATION
        )
        assert config.criterion is PartitionCriterion.AUTOCORRELATION
        assert config.epsilon1 == pytest.approx(0.002)


class TestCQCConfig:
    def test_default_grid_is_50_meters(self):
        config = CQCConfig()
        assert config.grid_size == pytest.approx(meters_to_degrees(50.0))
        assert config.enabled

    def test_for_grid_meters(self):
        config = CQCConfig.for_grid_meters(25.0, enabled=False)
        assert config.grid_size == pytest.approx(meters_to_degrees(25.0))
        assert not config.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            CQCConfig(grid_size=0.0)


class TestIndexConfig:
    def test_defaults_match_paper(self):
        config = IndexConfig()
        assert config.epsilon_s == pytest.approx(0.1)
        assert config.grid_cell == pytest.approx(meters_to_degrees(100.0))
        assert config.epsilon_c == pytest.approx(0.5)
        assert config.epsilon_d == pytest.approx(0.5)
        assert config.page_size_bytes == 1 << 20

    def test_validation(self):
        with pytest.raises(ValueError):
            IndexConfig(epsilon_s=0.0)
        with pytest.raises(ValueError):
            IndexConfig(grid_cell=-1.0)
        with pytest.raises(ValueError):
            IndexConfig(page_size_bytes=0)

"""Tests for repro.utils.huffman."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.huffman import HuffmanCodec


class TestCodecConstruction:
    def test_requires_positive_counts(self):
        with pytest.raises(ValueError):
            HuffmanCodec({})
        with pytest.raises(ValueError):
            HuffmanCodec({1: 0})

    def test_single_symbol_gets_one_bit(self):
        codec = HuffmanCodec({7: 100})
        assert codec.code_for(7) == "0"

    def test_more_frequent_symbol_gets_shorter_code(self):
        codec = HuffmanCodec({"a": 100, "b": 5, "c": 5, "d": 5})
        assert len(codec.code_for("a")) <= len(codec.code_for("b"))
        assert len(codec.code_for("a")) <= len(codec.code_for("d"))

    def test_codes_are_prefix_free(self):
        codec = HuffmanCodec({i: i + 1 for i in range(10)})
        codes = list(codec.code_table.values())
        for i, code_a in enumerate(codes):
            for j, code_b in enumerate(codes):
                if i != j:
                    assert not code_b.startswith(code_a)

    def test_from_symbols(self):
        codec = HuffmanCodec.from_symbols([1, 1, 1, 2, 3])
        assert set(codec.code_table) == {1, 2, 3}


class TestEncodeDecode:
    def test_roundtrip(self):
        symbols = [1, 2, 1, 1, 3, 2, 1]
        codec = HuffmanCodec.from_symbols(symbols)
        payload, bits = codec.encode(symbols)
        assert codec.decode(payload, bits) == symbols

    def test_encoded_bit_length_matches_encode(self):
        symbols = [5, 5, 6, 7, 5]
        codec = HuffmanCodec.from_symbols(symbols)
        _, bits = codec.encode(symbols)
        assert codec.encoded_bit_length(symbols) == bits

    def test_unknown_symbol_raises(self):
        codec = HuffmanCodec({1: 2})
        with pytest.raises(KeyError):
            codec.encode([2])

    def test_table_bit_cost(self):
        codec = HuffmanCodec({1: 1, 2: 1, 3: 1})
        assert codec.table_bit_cost(symbol_bits=32, length_bits=5) == 3 * 37

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    def test_roundtrip_property(self, symbols):
        codec = HuffmanCodec.from_symbols(symbols)
        payload, bits = codec.encode(symbols)
        assert codec.decode(payload, bits) == symbols

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=300))
    def test_compression_beats_or_matches_uniform_coding(self, symbols):
        # Huffman never needs more bits than a fixed-width code over the
        # observed alphabet (plus at most one bit per symbol for the
        # single-symbol degenerate case).
        codec = HuffmanCodec.from_symbols(symbols)
        alphabet = len(set(symbols))
        fixed_bits = max(1, (alphabet - 1).bit_length())
        assert codec.encoded_bit_length(symbols) <= len(symbols) * max(fixed_bits, 1) + len(symbols)

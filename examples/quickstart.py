"""Quickstart: compress a trajectory repository and query it.

Run with::

    python examples/quickstart.py

The script generates a small Porto-like synthetic workload, builds the full
PPQ-trajectory system (partition-wise predictive quantizer + CQC + temporal
partition-based index) with the paper's default parameters, and answers the
two query types of the paper: a spatio-temporal range query ("which vehicles
were in this cell at time t?") and a trajectory path query ("...and where did
they go over the next 20 samples?").
"""

from __future__ import annotations

from repro import CQCConfig, IndexConfig, PPQTrajectory
from repro.data import generate_porto_like
from repro.metrics import mean_absolute_error


def main() -> None:
    # 1. Load (or generate) a trajectory repository.
    dataset = generate_porto_like(num_trajectories=60, max_length=120, seed=3)
    print(f"dataset: {len(dataset)} trajectories, {dataset.num_points} points")

    # 2. Build the PPQ-trajectory system with spatial partitioning (PPQ-S).
    system = PPQTrajectory.ppq_s(cqc_config=CQCConfig(), index_config=IndexConfig())
    system.fit(dataset)
    print(f"codebook size: {system.num_codewords()} codewords")
    print(f"compression ratio: {system.compression_ratio():.2f}x")
    print(f"summary MAE: {mean_absolute_error(system.summary, dataset):.1f} m")

    # 3. Spatio-temporal range query: who passed by this location at t=25?
    probe = dataset.get(dataset.trajectory_ids[0])
    t = 25
    x, y = probe.points[t]
    strq = system.strq(x, y, t)
    print(f"\nSTRQ at ({x:.5f}, {y:.5f}, t={t}) -> {len(strq.candidates)} candidate(s): "
          f"{strq.candidates}")

    # 4. Trajectory path query: reconstruct their next 20 positions from the
    #    summary alone (no access to the raw data).
    tpq = system.tpq(x, y, t, length=20)
    for traj_id, path in tpq.paths.items():
        print(f"TPQ: trajectory {traj_id} path of {len(path)} reconstructed points, "
              f"first={path[0].round(5)}, last={path[-1].round(5)}")

    # 5. Exact-match query: the summary acts as an index; only the surviving
    #    candidates' raw trajectories are touched.
    exact = system.exact(x, y, t)
    print(f"\nexact query: visited {exact.visited_ratio:.1%} of active trajectories, "
          f"confirmed matches: {exact.matches}")

    # 6. Predict where a vehicle is heading next (simple analytics built on
    #    the summary's prediction coefficients).
    forecast = system.predict_next_positions(probe.traj_id, t, horizon=5)
    print(f"\nforecast of trajectory {probe.traj_id} after t={t}:")
    for step, point in enumerate(forecast, start=1):
        print(f"  t+{step}: ({point[0]:.5f}, {point[1]:.5f})")


if __name__ == "__main__":
    main()

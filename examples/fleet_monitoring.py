"""Fleet monitoring: online summarisation and live queries over a taxi fleet.

This example mirrors the paper's motivating scenario (real-time traffic
management): positions of a taxi fleet stream in timestamp by timestamp, the
repository keeps only the quantized summary, and dispatch keeps asking
"which taxis are near this pickup point right now, and where will they be in
a minute?".

It demonstrates

* the online nature of the quantizer (data is consumed in time order),
* querying with and without the CQC-driven local search (recall trade-off),
* the exact-match filter that touches only a small fraction of raw
  trajectories,
* short-horizon position forecasting from the summary's prediction model.
"""

from __future__ import annotations

import numpy as np

from repro import CQCConfig, IndexConfig, PPQConfig, PPQTrajectory, PartitionCriterion
from repro.data import generate_porto_like
from repro.metrics import mean_absolute_error, precision_recall
from repro.queries.exact import ground_truth_cell_members


def main() -> None:
    rng = np.random.default_rng(42)
    fleet = generate_porto_like(num_trajectories=120, max_length=150, seed=11)
    print(f"fleet: {len(fleet)} taxis, {fleet.num_points} GPS points")

    # Autocorrelation-based partitioning (PPQ-A) -- the best variant in the
    # paper -- with a tight 55 m error bound and 25 m CQC cells.
    system = PPQTrajectory(
        ppq_config=PPQConfig.for_spatial_deviation_meters(
            110.0, criterion=PartitionCriterion.AUTOCORRELATION, epsilon_p=0.01
        ),
        cqc_config=CQCConfig.for_grid_meters(50.0),
        index_config=IndexConfig(),
    )
    system.fit(fleet)
    print(f"summary: {system.num_codewords()} codewords, "
          f"{system.compression_ratio():.2f}x compression, "
          f"MAE {mean_absolute_error(system.summary, fleet):.1f} m")

    # Dispatch loop: pick random (taxi, time) pickup events and query around
    # them.
    print("\ndispatch queries")
    print(f"{'query':<28}{'candidates':>12}{'precision':>11}{'recall':>9}{'visited':>10}")
    for _ in range(8):
        taxi_id = int(rng.choice(fleet.trajectory_ids))
        taxi = fleet.get(taxi_id)
        t = int(rng.integers(5, len(taxi) - 1))
        x, y = taxi.points[t]

        result = system.strq(x, y, t)
        truth = ground_truth_cell_members(fleet, x, y, t, system.index_config.grid_cell)
        precision, recall = precision_recall(result.candidates, truth)
        exact = system.exact(x, y, t)
        label = f"({x:.4f},{y:.4f}) t={t}"
        print(f"{label:<28}{len(result.candidates):>12}{precision:>11.2f}{recall:>9.2f}"
              f"{exact.visited_ratio:>9.1%}")

    # Where will the taxis around the last pickup point be in 10 samples?
    tpq = system.tpq(x, y, t, length=10)
    print(f"\npath query around the last pickup ({len(tpq.paths)} taxis):")
    for traj_id, path in list(tpq.paths.items())[:5]:
        travelled = np.linalg.norm(path[-1] - path[0]) * 111_000.0
        print(f"  taxi {traj_id}: {len(path)} reconstructed samples, "
              f"displacement over the window {travelled:.0f} m")

    # Forecast a specific taxi's next positions directly from the summary.
    forecast = system.predict_next_positions(taxi_id, t, horizon=4)
    print(f"\nforecast for taxi {taxi_id} (from the partition's prediction model):")
    for step, point in enumerate(forecast, start=1):
        print(f"  t+{step}: ({point[0]:.5f}, {point[1]:.5f})")


if __name__ == "__main__":
    main()

"""Disk-resident indexing study: TPI vs per-timestamp PI vs TrajStore.

Reproduces, at example scale, the Table 9 experiment of the paper: the
trajectory repository is laid out on simulated fixed-size pages under three
organisations -- the temporal partition-based index (TPI), a partition index
rebuilt at every timestamp (PI), and TrajStore's adaptive quadtree -- and the
same batch of spatio-temporal queries is answered against each, counting page
I/Os and wall-clock response time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.trajstore import TrajStore
from repro.core.config import IndexConfig
from repro.data import generate_porto_like
from repro.index.disk import DiskBackedIndex
from repro.index.rectangles import Rect


def build_trajstore(dataset, page_size_bytes: int) -> TrajStore:
    """Ingest the dataset into a TrajStore and lay it out on pages."""
    min_x, min_y, max_x, max_y = dataset.bounding_box()
    pad = 1e-9
    store = TrajStore(Rect(min_x - pad, min_y - pad, max_x + pad, max_y + pad),
                      cell_capacity=256, page_size_bytes=page_size_bytes)
    for slice_ in dataset.iter_time_slices():
        if len(slice_):
            store.insert_slice(slice_.t, slice_.traj_ids, slice_.points)
    store.layout_on_pages()
    return store


def main() -> None:
    dataset = generate_porto_like(num_trajectories=150, max_length=120, seed=31)
    print(f"workload: {len(dataset)} trajectories, {dataset.num_points} points")

    rng = np.random.default_rng(7)
    queries = []
    for _ in range(300):
        tid = int(rng.choice(dataset.trajectory_ids))
        traj = dataset.get(tid)
        t = int(rng.integers(0, len(traj)))
        queries.append((float(traj.points[t][0]), float(traj.points[t][1]), t))
    queries.sort(key=lambda q: q[2])

    page_size = 64 * 1024  # smaller pages than the paper's 1 MB, example scale
    config = IndexConfig(epsilon_d=0.8, epsilon_c=0.5, page_size_bytes=page_size)

    results = []

    # Temporal partition-based index (periods reused across timestamps).
    start = time.perf_counter()
    tpi_index = DiskBackedIndex(config, per_timestamp=False).build(dataset)
    tpi_build = time.perf_counter() - start
    start = time.perf_counter()
    for x, y, t in queries:
        tpi_index.query(x, y, t)
    results.append(("TPI", tpi_index.index_size_megabytes(), tpi_index.num_ios,
                    time.perf_counter() - start, tpi_build))

    # Per-timestamp partition index (rebuild every timestamp).
    start = time.perf_counter()
    pi_index = DiskBackedIndex(config, per_timestamp=True).build(dataset)
    pi_build = time.perf_counter() - start
    start = time.perf_counter()
    for x, y, t in queries:
        pi_index.query(x, y, t)
    results.append(("PI", pi_index.index_size_megabytes(), pi_index.num_ios,
                    time.perf_counter() - start, pi_build))

    # TrajStore: shared spatial quadtree, cells hold points of all timestamps.
    start = time.perf_counter()
    trajstore = build_trajstore(dataset, page_size)
    ts_build = time.perf_counter() - start
    start = time.perf_counter()
    for x, y, t in queries:
        trajstore.query(x, y, t)
    results.append(("TrajStore", trajstore.index_size_megabytes(), trajstore.num_ios,
                    time.perf_counter() - start, ts_build))

    header = f"{'method':<12}{'index (MB)':>12}{'page I/Os':>12}{'query (s)':>12}{'build (s)':>12}"
    print("\n" + header)
    print("-" * len(header))
    for name, size_mb, ios, query_s, build_s in results:
        print(f"{name:<12}{size_mb:>12.3f}{ios:>12}{query_s:>12.3f}{build_s:>12.2f}")
    print("\nTPI reads only the pages of the period containing the query time; "
          "TrajStore must read every page of the spatial cell, across all "
          "timestamps, which is why its I/O count is much higher.")


if __name__ == "__main__":
    main()

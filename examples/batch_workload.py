"""Batched query workloads: answer hundreds of queries in one engine call.

Run with::

    python examples/batch_workload.py

The script compresses a Porto-like synthetic repository, builds a mixed
STRQ/TPQ/exact workload (the kind a monitoring dashboard would fire every
refresh), writes it to the JSON workload format understood by
``python -m repro query --workload file.json``, and answers it twice: once
query by query through the scalar API and once through
:meth:`QueryEngine.run_batch`.  The batched run shares index scans across
queries and serves repeated slice reconstructions from the summary's LRU
cache, so it is several times faster while returning identical results.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import CQCConfig, IndexConfig, PPQTrajectory
from repro.data import generate_porto_like
from repro.queries import load_workload


def build_workload_entries(dataset, num_queries: int = 200, seed: int = 11) -> list[dict]:
    """Random mixed workload probing true trajectory positions."""
    rng = np.random.default_rng(seed)
    kinds = ["strq", "strq", "tpq", "exact"]  # STRQ-heavy, as dashboards are
    entries = []
    for i in range(num_queries):
        tid = int(rng.choice(dataset.trajectory_ids))
        traj = dataset.get(tid)
        t = int(rng.integers(0, len(traj)))
        x, y = traj.points[t]
        entry = {"type": kinds[i % len(kinds)], "x": float(x), "y": float(y), "t": t}
        if entry["type"] == "tpq":
            entry["length"] = 10
        entries.append(entry)
    return entries


def run_sequentially(system: PPQTrajectory, workload) -> list:
    """The per-query loop the batch API replaces."""
    results = []
    for spec in workload:
        if spec.kind == "strq":
            results.append(system.strq(spec.x, spec.y, spec.t))
        elif spec.kind == "tpq":
            results.append(system.tpq(spec.x, spec.y, spec.t, length=spec.length))
        else:
            results.append(system.exact(spec.x, spec.y, spec.t))
    return results


def main() -> None:
    # 1. Compress and index a repository.
    dataset = generate_porto_like(num_trajectories=60, max_length=120, seed=3)
    system = PPQTrajectory.ppq_s(cqc_config=CQCConfig(), index_config=IndexConfig())
    system.fit(dataset)
    print(f"dataset: {len(dataset)} trajectories, {dataset.num_points} points")

    # 2. Write the workload in the JSON format the CLI accepts.
    entries = build_workload_entries(dataset)
    workload_path = Path(tempfile.gettempdir()) / "repro_batch_workload.json"
    workload_path.write_text(json.dumps({"queries": entries}, indent=2))
    workload = load_workload(workload_path)
    counts = workload.counts()
    print(f"workload: {len(workload)} queries "
          f"({counts['strq']} strq, {counts['tpq']} tpq, {counts['exact']} exact)")
    print(f"workload file: {workload_path}")

    # 3. Answer it query by query, then in one batched call.  One untimed
    #    pass of each warms the one-time lazy structures (posting-list
    #    decode tables, reconstruction caches) so the comparison measures
    #    steady-state serving cost, as a long-running query service would.
    run_sequentially(system, workload)
    system.run_batch(workload)

    start = time.perf_counter()
    sequential = run_sequentially(system, workload)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = system.run_batch(workload)
    batched_s = time.perf_counter() - start

    # 4. Same answers, fewer scans.
    for seq, bat in zip(sequential, batched):
        assert type(seq) is type(bat)
    print(f"\nsequential loop : {sequential_s * 1000:7.1f} ms "
          f"({len(workload) / sequential_s:6.0f} q/s)")
    print(f"batched         : {batched_s * 1000:7.1f} ms "
          f"({len(workload) / batched_s:6.0f} q/s)")
    print(f"speedup         : {sequential_s / batched_s:.1f}x")
    cache = system.summary.slice_cache.stats()
    print(f"slice cache     : {cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions")


if __name__ == "__main__":
    main()

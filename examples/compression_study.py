"""Compression study: PPQ-trajectory versus the baselines on one workload.

Reproduces, at example scale, the comparison behind Tables 2, 5, 6 and
Figure 9 of the paper: every method summarises the same workload under the
same spatial-deviation budget, and we report the codebook size, compression
ratio, summary MAE and build time side by side.

Run with::

    python examples/compression_study.py [deviation_meters]
"""

from __future__ import annotations

import sys

from repro import CQCConfig, PPQConfig, PPQTrajectory, PartitionCriterion
from repro.baselines import (
    ProductQuantizationSummarizer,
    QTrajectorySummarizer,
    ResidualQuantizationSummarizer,
    TrajStoreSummarizer,
)
from repro.data import generate_porto_like
from repro.metrics import compression_report, mean_absolute_error
from repro.utils.geo import meters_to_degrees


def run_ppq(dataset, deviation_m: float, criterion: PartitionCriterion, use_cqc: bool):
    """Build one PPQ variant under the given metre-denominated deviation."""
    if use_cqc:
        # Lemma 3: the final deviation is sqrt(2)/2 * g_s, so give the
        # quantizer a looser bound and let CQC tighten it (the paper sets
        # eps1 = 2 * g_s in the same experiment).
        grid_m = deviation_m
        eps_m = 2.0 * grid_m
    else:
        grid_m = deviation_m
        eps_m = deviation_m
    epsilon_p = 0.01 if criterion is PartitionCriterion.AUTOCORRELATION else 0.1
    system = PPQTrajectory(
        ppq_config=PPQConfig.for_spatial_deviation_meters(
            eps_m, criterion=criterion, epsilon_p=epsilon_p
        ),
        cqc_config=CQCConfig.for_grid_meters(grid_m, enabled=use_cqc),
    )
    system.fit(dataset, build_index=False)
    return system


def main() -> None:
    deviation_m = float(sys.argv[1]) if len(sys.argv) > 1 else 400.0
    dataset = generate_porto_like(num_trajectories=100, max_length=120, seed=23)
    print(f"workload: {len(dataset)} trajectories, {dataset.num_points} points, "
          f"deviation budget {deviation_m:.0f} m\n")

    rows = []

    for label, criterion, use_cqc in [
        ("PPQ-A", PartitionCriterion.AUTOCORRELATION, True),
        ("PPQ-A-basic", PartitionCriterion.AUTOCORRELATION, False),
        ("PPQ-S", PartitionCriterion.SPATIAL, True),
        ("PPQ-S-basic", PartitionCriterion.SPATIAL, False),
    ]:
        system = run_ppq(dataset, deviation_m, criterion, use_cqc)
        report = compression_report(system.summary, method=label)
        rows.append((label, report.num_codewords, report.compression_ratio,
                     mean_absolute_error(system.summary, dataset),
                     system.quantizer.timings["total"]))

    epsilon = meters_to_degrees(deviation_m)
    for summarizer in [
        QTrajectorySummarizer(epsilon=epsilon),
        ResidualQuantizationSummarizer(epsilon=epsilon),
        ProductQuantizationSummarizer(epsilon=epsilon),
        TrajStoreSummarizer(epsilon=epsilon, cell_capacity=256),
    ]:
        summary = summarizer.summarize(dataset)
        report = compression_report(summary)
        rows.append((summary.method, report.num_codewords, report.compression_ratio,
                     mean_absolute_error(summary, dataset), summary.build_seconds))

    header = f"{'method':<24}{'codewords':>10}{'ratio':>8}{'MAE (m)':>10}{'build (s)':>11}"
    print(header)
    print("-" * len(header))
    for label, codewords, ratio, mae, seconds in rows:
        print(f"{label:<24}{codewords:>10}{ratio:>8.2f}{mae:>10.1f}{seconds:>11.2f}")


if __name__ == "__main__":
    main()

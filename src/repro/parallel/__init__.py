"""Parallel batch serving across worker processes.

The batched query engine (:mod:`repro.queries.batch`) amortises index scans
and reconstructions within one process; this package scales a workload
*across* processes.  :class:`ParallelExecutor` shards a workload into
contiguous chunks, serves them on a process pool whose workers each load the
model artifact once (no live index/summary is pickled), merges the per-chunk
results back into workload order, and retries or isolates failed chunks
through the reliability layer's :class:`~repro.reliability.retry.RetryPolicy`.

Entry points, highest level first:

* ``PPQTrajectory.run_batch(workload, jobs=N)`` -- spills a temporary
  artifact when the system was fitted in-memory;
* ``QueryEngine.run_batch(workload, jobs=N, model_path=...)`` -- for engines
  restored from (or pointed at) an artifact;
* :class:`ParallelExecutor` -- explicit pool lifecycle control (reuse across
  workloads, warm-up, chunk sizing, chaos fault plans);
* ``repro query --workload file.json --jobs N`` on the command line.
"""

from repro.parallel.executor import ExecutorStats, ParallelExecutor, default_jobs

__all__ = [
    "ExecutorStats",
    "ParallelExecutor",
    "default_jobs",
]

"""Worker-process side of the parallel serving layer.

Each pool worker is initialised exactly once with the *path* of a model
artifact: :func:`_init_worker` loads it through
:func:`repro.storage.load_model` into a module-level global, so the live
summary/index objects are never pickled across the process boundary -- the
artifact file is the only thing that crosses it, and the loaded engine is
reused for every chunk the worker serves (the per-worker memory model
documented in ``docs/ARCHITECTURE.md``).

The functions here must stay top-level (picklable by reference) and import
the heavy model machinery lazily so that spawning a worker only pays for
what it uses.
"""

from __future__ import annotations

import os

#: The worker's loaded :class:`~repro.core.pipeline.PPQTrajectory`, set once
#: by :func:`_init_worker` and reused for every chunk.
_SYSTEM = None

#: Environment hooks for crash testing (see ``tests/test_parallel.py``):
#: when ``REPRO_PARALLEL_CRASH_T`` names a timestamp, a worker asked to serve
#: a query at that timestamp hard-exits (simulating an OOM kill / segfault).
#: If ``REPRO_PARALLEL_CRASH_ONCE`` names a file path, the crash happens only
#: while that file does not exist (the dying worker creates it), modelling a
#: one-off crash that a chunk retry survives.
_CRASH_T_ENV = "REPRO_PARALLEL_CRASH_T"
_CRASH_ONCE_ENV = "REPRO_PARALLEL_CRASH_ONCE"


def _init_worker(model_path: str, strict: bool = True, fault_plan=None) -> None:
    """Pool initializer: load the model artifact once for this process.

    Parameters
    ----------
    model_path:
        Artifact file written by :func:`repro.storage.save_model`.
    strict:
        Forwarded to :func:`repro.storage.load_model` (``False`` salvages
        damaged sections exactly as in the parent).
    fault_plan:
        Optional :class:`~repro.reliability.faults.FaultPlan` armed for the
        worker's whole lifetime -- chaos tests inject faults *inside* the
        workers this way, since a plan armed in the parent does not cross
        the process boundary.
    """
    global _SYSTEM
    from repro.storage.io import load_model

    _SYSTEM = load_model(model_path, strict=strict)
    # Armed only after the artifact is loaded: chaos targets serving, not
    # model loading, matching the ``repro chaos`` contract (faults injected
    # during section decode would make the load itself the failing subject).
    if fault_plan is not None:
        from repro.reliability import faults
        from repro.reliability.faults import FaultInjector

        faults.ACTIVE = FaultInjector(fault_plan)


def _maybe_crash(specs) -> None:
    """Test-only crash hook: hard-exit when a poisoned timestamp is served."""
    crash_t = os.environ.get(_CRASH_T_ENV)
    if crash_t is None:
        return
    if not any(int(spec.t) == int(crash_t) for spec in specs):
        return
    marker = os.environ.get(_CRASH_ONCE_ENV)
    if marker is not None:
        if os.path.exists(marker):
            return
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write(str(os.getpid()))
    os._exit(3)


def _run_chunk(chunk_id: int, specs, isolate: bool):
    """Answer one contiguous chunk of the workload on the worker's engine.

    Returns ``(chunk_id, results)`` where ``results`` align one-to-one with
    ``specs``.  With ``isolate=True`` the engine converts per-query failures
    into :class:`~repro.reliability.degrade.QueryError` records whose
    ``index`` is chunk-local -- the executor rebases it to the workload
    position when merging.
    """
    if _SYSTEM is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("worker used before _init_worker ran")
    _maybe_crash(specs)
    return chunk_id, _SYSTEM.engine.run_batch(list(specs), isolate=isolate)

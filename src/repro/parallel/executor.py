"""Multiprocess batch serving: shard a workload across worker processes.

One Python process cannot saturate a multi-core box: the batched query path
is vectorised but still spends its time in the interpreter (reconstruction
walks, candidate post-processing) under the GIL.  :class:`ParallelExecutor`
scales it out the way F2 scales FASTER's request handling across threads --
by sharding the *workload*, not the data:

* the workload is split into contiguous chunks (``chunks_per_job`` per
  worker by default, so a slow chunk cannot stall the whole run);
* a :class:`concurrent.futures.ProcessPoolExecutor` serves the chunks; each
  worker loads the model artifact **once** in its initializer
  (:func:`repro.parallel.worker._init_worker`) -- no live index or summary
  is ever pickled across the pool;
* per-chunk results are merged back into original workload order, rebasing
  the ``index`` of any :class:`~repro.reliability.degrade.QueryError`;
* a failed chunk (a crashed worker breaks the whole pool) is retried on a
  fresh pool under the executor's
  :class:`~repro.reliability.retry.RetryPolicy`; when retries are exhausted
  and ``isolate=True``, the chunk's queries are re-run one by one so a
  single poisoned query fails alone instead of taking its chunk with it.

Results are bit-identical to the in-process ``run_batch`` because every
worker serves the same artifact and artifact loads reproduce the saved
system's answers exactly (the storage layer's round-trip guarantee).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.queries.batch import QuerySpec, Workload
from repro.reliability.degrade import QueryError
from repro.reliability.retry import RetryPolicy, is_transient_error


@dataclass
class ExecutorStats:
    """Counters describing one executor's lifetime (for reports and tests)."""

    chunks_submitted: int = 0
    chunks_retried: int = 0
    chunks_isolated: int = 0
    pools_built: int = 0
    queries_served: int = 0
    failed_queries: int = 0
    retried_chunk_ids: list = field(default_factory=list)


def default_jobs() -> int:
    """A sensible worker count: the CPUs this process may actually use."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ParallelExecutor:
    """Serve batch workloads from a pool of artifact-loaded worker processes.

    Parameters
    ----------
    model_path:
        A model artifact written by :func:`repro.storage.save_model` /
        :meth:`PPQTrajectory.save`.  Each worker loads it once at startup;
        the path (not the model) is what crosses the process boundary.
    jobs:
        Number of worker processes (``>= 1``).
    chunk_size:
        Queries per chunk.  Default: the workload is split into
        ``chunks_per_job * jobs`` contiguous chunks for load balancing.
    chunks_per_job:
        Chunk-count multiplier used when ``chunk_size`` is not given.
    strict:
        Forwarded to the workers' :func:`~repro.storage.load_model` calls.
    retry_policy:
        Chunk-level retry policy; a failed chunk is re-run (on a fresh pool
        when the previous one broke).  Defaults to two retries with a short
        backoff.  Chunk failures are always considered retryable -- a broken
        pool gives no usable cause chain to classify.
    fault_plan:
        Optional :class:`~repro.reliability.faults.FaultPlan` armed inside
        every worker for chaos testing.
    mp_context:
        ``multiprocessing`` start-method name (default ``"spawn"``: workers
        import and load from a clean slate, which is what a fleet of serving
        processes on separate machines would do, and the only start method
        that behaves identically on every platform).

    Examples
    --------
    ::

        with ParallelExecutor("model.ppq", jobs=4) as pool:
            results = pool.run(workload)         # workload order preserved
    """

    def __init__(self, model_path, jobs: int = 2, chunk_size: int | None = None,
                 chunks_per_job: int = 4, strict: bool = True,
                 retry_policy: RetryPolicy | None = None,
                 fault_plan=None, mp_context: str = "spawn") -> None:
        self.model_path = Path(model_path)
        if not self.model_path.is_file():
            raise FileNotFoundError(f"model artifact not found: {self.model_path}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if chunks_per_job < 1:
            raise ValueError(f"chunks_per_job must be >= 1, got {chunks_per_job}")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self.chunks_per_job = int(chunks_per_job)
        self.strict = bool(strict)
        self.retry_policy = retry_policy or RetryPolicy(max_retries=2, backoff=0.05)
        self.fault_plan = fault_plan
        self.mp_context = mp_context
        self.stats = ExecutorStats()
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The current worker pool, building one on first use."""
        if self._pool is None:
            from repro.parallel.worker import _init_worker

            context = multiprocessing.get_context(self.mp_context)
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context,
                initializer=_init_worker,
                initargs=(str(self.model_path), self.strict, self.fault_plan),
            )
            self.stats.pools_built += 1
        return self._pool

    def _discard_pool(self) -> None:
        """Tear down a (possibly broken) pool; the next run builds a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def warm(self) -> "ParallelExecutor":
        """Start the workers and wait for their artifact loads to finish.

        Benchmarks call this so that measured throughput reflects
        steady-state serving, not pool startup (a long-running service pays
        the worker initialisation once).
        """
        from repro.parallel.worker import _run_chunk

        pool = self._ensure_pool()
        futures = [pool.submit(_run_chunk, i, (), True) for i in range(self.jobs)]
        for future in futures:
            future.result()
        return self

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, workload, isolate: bool = False) -> list:
        """Answer a workload across the pool, in original query order.

        Parameters
        ----------
        workload:
            A :class:`~repro.queries.batch.Workload` or iterable of
            :class:`~repro.queries.batch.QuerySpec` / workload-file dicts.
        isolate:
            Forwarded to each worker's ``run_batch`` and applied to chunk
            failures: with ``isolate=True`` an unrecoverable chunk is
            re-run query by query and only the failing queries come back as
            :class:`~repro.reliability.degrade.QueryError` records (their
            ``index`` is the workload position).  With ``isolate=False``
            the first unrecoverable chunk error propagates.
        """
        specs = _normalize(workload)
        if not specs:
            return []
        chunks = self._chunks(specs)
        results: list = [None] * len(specs)
        self.stats.queries_served += len(specs)

        failed: list[tuple[int, int, list[QuerySpec]]] = []
        futures = {}
        pool = self._ensure_pool()
        try:
            from repro.parallel.worker import _run_chunk

            for chunk_id, (start, chunk_specs) in enumerate(chunks):
                self.stats.chunks_submitted += 1
                futures[pool.submit(_run_chunk, chunk_id, chunk_specs, isolate)] = \
                    (chunk_id, start, chunk_specs)
            for future, (chunk_id, start, chunk_specs) in futures.items():
                try:
                    _cid, answers = future.result()
                except Exception:  # noqa: BLE001 - retried below, chunk by chunk
                    failed.append((chunk_id, start, chunk_specs))
                else:
                    self._merge(results, start, answers)
        except BaseException:
            self._discard_pool()
            raise
        if any(isinstance(f.exception(), BrokenProcessPool) for f in futures):
            self._discard_pool()

        for chunk_id, start, chunk_specs in failed:
            self._retry_chunk(chunk_id, start, chunk_specs, isolate, results)
        return results

    def _retry_chunk(self, chunk_id: int, start: int, specs, isolate: bool,
                     results: list) -> None:
        """Re-run one failed chunk under the retry policy, isolating at the end."""
        self.stats.chunks_retried += 1
        self.stats.retried_chunk_ids.append(chunk_id)
        try:
            answers = self.retry_policy.call(
                lambda: self._run_chunk_fresh(chunk_id, specs, isolate),
                retryable=self._chunk_retryable,
            )
        except Exception as exc:  # noqa: BLE001 - isolation decides propagation
            if not isolate:
                raise
            self.stats.chunks_isolated += 1
            self._isolate_chunk(start, specs, results, exc)
        else:
            self._merge(results, start, answers)

    def _run_chunk_fresh(self, chunk_id: int, specs, isolate: bool):
        """One synchronous chunk attempt, replacing the pool if it broke."""
        from repro.parallel.worker import _run_chunk

        try:
            _cid, answers = self._ensure_pool().submit(
                _run_chunk, chunk_id, specs, isolate
            ).result()
            return answers
        except BrokenProcessPool:
            self._discard_pool()
            raise

    @staticmethod
    def _chunk_retryable(error: BaseException) -> bool:
        """Chunk-level retry classification: crashes and transients retry."""
        return isinstance(error, BrokenProcessPool) or is_transient_error(error)

    def _isolate_chunk(self, start: int, specs, results: list,
                       chunk_error: BaseException) -> None:
        """Last resort: run the chunk query by query so one poison fails alone."""
        from repro.parallel.worker import _run_chunk

        for offset, spec in enumerate(specs):
            position = start + offset
            try:
                _cid, answers = self._ensure_pool().submit(
                    _run_chunk, -1, (spec,), True
                ).result()
            except BrokenProcessPool as exc:
                self._discard_pool()
                self.stats.failed_queries += 1
                results[position] = QueryError.from_exception(position, spec.kind, exc)
            except Exception as exc:  # noqa: BLE001 - converted to a record
                self.stats.failed_queries += 1
                results[position] = QueryError.from_exception(position, spec.kind, exc)
            else:
                self._merge(results, position, answers)

    # ------------------------------------------------------------------ #
    # chunking and merging
    # ------------------------------------------------------------------ #
    def _chunks(self, specs: list[QuerySpec]) -> list[tuple[int, list[QuerySpec]]]:
        """Split the workload into contiguous ``(start, specs)`` chunks."""
        n = len(specs)
        if self.chunk_size is not None:
            size = self.chunk_size
        else:
            size = max(1, -(-n // (self.jobs * self.chunks_per_job)))
        return [(start, specs[start:start + size]) for start in range(0, n, size)]

    def _merge(self, results: list, start: int, answers: list) -> None:
        """Copy chunk answers into workload order, rebasing error indices."""
        for offset, answer in enumerate(answers):
            if isinstance(answer, QueryError):
                self.stats.failed_queries += 1
                answer = replace(answer, index=start + offset)
            results[start + offset] = answer


def _normalize(workload) -> list[QuerySpec]:
    """Coerce any accepted workload shape into a list of specs."""
    if isinstance(workload, Workload):
        return list(workload.queries)
    specs = []
    for entry in workload:
        if isinstance(entry, QuerySpec):
            specs.append(entry)
        elif isinstance(entry, dict):
            specs.append(QuerySpec.from_dict(entry))
        else:
            raise TypeError(f"unsupported workload entry: {entry!r}")
    return specs

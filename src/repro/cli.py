"""Command-line interface for compressing, persisting and querying repositories.

Five subcommands cover the build/serve workflow end to end:

``compress``
    Load a repository (Porto CSV, a GeoLife ``.plt`` directory, or a built-in
    synthetic workload), build the PPQ-trajectory summary and print the
    summary statistics (codebook size, compression ratio, MAE).

``save``
    Fit a repository and serialize the fitted model -- summary, codebook,
    reconstructions and index -- to a versioned artifact file (the build
    half of build-once/serve-many).

``load``
    Restore a saved artifact into a query-ready model and print what it
    contains (checksums are verified on load).

``info``
    Describe an artifact without loading it: format version, per-section
    sizes, checksum status and the stored configuration.

``query``
    Answer spatio-temporal queries -- a single STRQ/TPQ given by
    ``--x/--y/--t`` or a whole batch workload file (``--workload``) --
    against either a freshly fitted repository (dataset flags) or a saved
    artifact (``--model``), without refitting.

``chaos``
    Fault-injection self-test: answer a workload once cleanly, then again
    on a fresh engine with deterministic faults injected at the chosen
    points, and verify that degraded results are identical to the clean
    ones.  The seed is always echoed so any failing run is reproducible.

Failures map to distinct exit codes so scripts can react without parsing
stderr: ``2`` usage / unreadable files, ``3`` artifact errors (missing,
malformed, corrupt), ``4`` invalid workload files, ``5`` query failures
(including a chaos run that was not equivalent).

Examples
--------
::

    python -m repro compress --synthetic porto --trajectories 100
    python -m repro save --synthetic porto --trajectories 100 --output model.ppq
    python -m repro info model.ppq
    python -m repro load --no-strict model.ppq
    python -m repro query --model model.ppq --x -8.62 --y 41.16 --t 20 --length 10
    python -m repro query --model model.ppq --workload workload.json
    python -m repro chaos --synthetic porto --trajectories 50 --fault-points index.cell_decode
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.config import CQCConfig, IndexConfig, PPQConfig, PartitionCriterion
from repro.core.pipeline import PPQTrajectory
from repro.data.loaders import load_plt_directory, load_porto_csv
from repro.data.synthetic import generate_geolife_like, generate_porto_like
from repro.metrics.accuracy import mean_absolute_error
from repro.queries.batch import QuerySpec, Workload, WorkloadError, load_workload
from repro.queries.engine import QueryEngine
from repro.queries.exact import ExactQueryResult
from repro.queries.strq import STRQResult
from repro.queries.tpq import TPQResult
from repro.reliability import (
    INJECTION_POINTS,
    FaultPlan,
    QueryError,
    RetryPolicy,
    inject_faults,
)
from repro.storage import ArtifactError, inspect_model

#: Exit codes; distinct so scripts can branch on the failure class.
#: 2 doubles as argparse's own usage-error code.
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_ARTIFACT = 3
EXIT_WORKLOAD = 4
EXIT_QUERY = 5


class _ReproArgumentParser(argparse.ArgumentParser):
    """Argument parser with cross-argument validation for ``query``.

    ``--x/--y/--t`` and ``--workload`` are alternative ways to specify the
    queries, and ``--model`` replaces the dataset flags; requiring exactly
    one of each pair cannot be expressed with plain argparse groups, so the
    checks run after parsing (still raising the usual ``SystemExit`` with a
    usage message).
    """

    def parse_args(self, args=None, namespace=None):  # type: ignore[override]
        parsed = super().parse_args(args, namespace)
        command = getattr(parsed, "command", None)
        if command not in ("query", "chaos"):
            return parsed
        has_dataset = bool(parsed.porto_csv or parsed.geolife_dir or parsed.synthetic)
        if getattr(parsed, "model", None):
            if has_dataset:
                self.error("--model replaces the dataset flags; give one or the other")
        elif not has_dataset:
            self.error(f"{command} needs a dataset source "
                       "(--porto-csv/--geolife-dir/--synthetic) or --model")
        if command == "query":
            if getattr(parsed, "jobs", 1) < 1:
                self.error("--jobs must be >= 1")
            if parsed.jobs > 1 and not parsed.workload:
                self.error("--jobs applies to --workload execution; give a workload file")
            if not getattr(parsed, "workload", None):
                missing = [flag for flag, value in
                           (("--x", parsed.x), ("--y", parsed.y), ("--t", parsed.t))
                           if value is None]
                if missing:
                    self.error(f"query needs either --workload or {', '.join(missing)}")
        return parsed


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = _ReproArgumentParser(
        prog="repro",
        description="PPQ-trajectory: compress and query large trajectory repositories",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compress = subparsers.add_parser("compress", help="build a summary and report statistics")
    _add_dataset_arguments(compress)
    _add_quantizer_arguments(compress)

    save = subparsers.add_parser("save", help="fit a model and save it as an artifact")
    _add_dataset_arguments(save)
    _add_quantizer_arguments(save)
    save.add_argument("--output", "-o", required=True,
                      help="destination artifact file (conventionally *.ppq)")
    save.add_argument("--no-raw", action="store_true",
                      help="omit the raw trajectories (smaller artifact, "
                           "but exact queries stop working after load)")

    load = subparsers.add_parser("load", help="load an artifact and report what it serves")
    load.add_argument("artifact", help="artifact file written by 'repro save'")
    load.add_argument("--strict", action=argparse.BooleanOptionalAction, default=True,
                      help="--no-strict salvages corrupt/truncated sections by "
                           "rebuilding what is derivable (default: strict)")

    info = subparsers.add_parser("info", help="describe an artifact without loading it")
    info.add_argument("artifact", help="artifact file written by 'repro save'")

    query = subparsers.add_parser("query", help="run spatio-temporal queries against a "
                                                "fitted repository or a saved artifact")
    _add_dataset_arguments(query, required=False)
    _add_quantizer_arguments(query)
    query.add_argument("--model", default=None,
                       help="answer against this saved artifact instead of "
                            "fitting a dataset")
    query.add_argument("--x", type=float, default=None, help="query x (longitude)")
    query.add_argument("--y", type=float, default=None, help="query y (latitude)")
    query.add_argument("--t", type=int, default=None, help="query timestamp")
    query.add_argument("--length", type=int, default=0,
                       help="path length for a TPQ (0 = range query only)")
    query.add_argument("--workload", default=None,
                       help="JSON workload file of mixed strq/tpq/exact queries, "
                            "answered through the batched query engine")
    query.add_argument("--jobs", type=int, default=1,
                       help="worker processes for --workload execution; each "
                            "worker loads the model artifact once and serves a "
                            "share of the queries (default 1 = in-process)")
    query.add_argument("--strict", action=argparse.BooleanOptionalAction, default=True,
                       help="with --model: --no-strict salvages corrupt sections "
                            "instead of refusing to load (default: strict)")

    chaos = subparsers.add_parser(
        "chaos",
        help="inject deterministic faults and verify degraded answers match clean ones")
    _add_dataset_arguments(chaos, required=False)
    _add_quantizer_arguments(chaos)
    chaos.add_argument("--model", default=None,
                       help="run against this saved artifact instead of fitting a dataset")
    chaos.add_argument("--strict", action=argparse.BooleanOptionalAction, default=True,
                       help="with --model: salvage corrupt sections when --no-strict")
    chaos.add_argument("--workload", default=None,
                       help="JSON workload file; default is a synthesized STRQ/TPQ mix")
    chaos.add_argument("--queries", type=int, default=25,
                       help="number of synthesized queries when no --workload (default 25)")
    chaos.add_argument("--fault-points", nargs="+", default=["index.cell_decode"],
                       choices=list(INJECTION_POINTS), metavar="POINT",
                       help="injection points to arm (default: index.cell_decode; "
                            f"choices: {', '.join(INJECTION_POINTS)})")
    chaos.add_argument("--probability", type=float, default=1.0,
                       help="per-check fault probability (default 1.0)")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault plan RNG (echoed for reproducibility)")
    chaos.add_argument("--mode", choices=["degrade", "fail-fast"], default="degrade",
                       help="degrade = quarantine and repair; fail-fast = surface errors")
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser, required: bool = True) -> None:
    source = parser.add_mutually_exclusive_group(required=required)
    source.add_argument("--porto-csv", help="path to a Porto taxi challenge CSV")
    source.add_argument("--geolife-dir", help="path to a GeoLife directory of .plt files")
    source.add_argument("--synthetic", choices=["porto", "geolife"],
                        help="use a built-in synthetic workload")
    parser.add_argument("--trajectories", type=int, default=100,
                        help="number of trajectories to load / generate")
    parser.add_argument("--seed", type=int, default=13, help="seed for synthetic workloads")


def _add_quantizer_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--variant", choices=["ppq-a", "ppq-s", "epq"], default="ppq-a",
                        help="quantizer variant (default: ppq-a)")
    parser.add_argument("--epsilon1", type=float, default=0.001,
                        help="error bound in coordinate units (default 0.001 ~= 111 m)")
    parser.add_argument("--grid-meters", type=float, default=50.0,
                        help="CQC grid size in metres (default 50)")
    parser.add_argument("--no-cqc", action="store_true", help="disable CQC (basic variant)")


def load_dataset(args: argparse.Namespace):
    """Load the dataset selected by the CLI arguments."""
    if args.porto_csv:
        return load_porto_csv(args.porto_csv, max_trajectories=args.trajectories)
    if args.geolife_dir:
        return load_plt_directory(args.geolife_dir, max_trajectories=args.trajectories)
    if args.synthetic == "geolife":
        return generate_geolife_like(num_trajectories=args.trajectories, seed=args.seed)
    return generate_porto_like(num_trajectories=args.trajectories, seed=args.seed)


def build_system(args: argparse.Namespace) -> PPQTrajectory:
    """Build the PPQ-trajectory system selected by the CLI arguments."""
    if args.variant == "ppq-a":
        criterion, eps_p, variant = PartitionCriterion.AUTOCORRELATION, 0.01, "ppq"
    elif args.variant == "ppq-s":
        criterion, eps_p, variant = PartitionCriterion.SPATIAL, 0.1, "ppq"
    else:
        criterion, eps_p, variant = PartitionCriterion.SPATIAL, 0.1, "epq"
    config = PPQConfig(epsilon1=args.epsilon1, epsilon_p=eps_p, criterion=criterion)
    cqc = CQCConfig.for_grid_meters(args.grid_meters, enabled=not args.no_cqc)
    return PPQTrajectory(ppq_config=config, cqc_config=cqc,
                         index_config=IndexConfig(), variant=variant)


def run_compress(args: argparse.Namespace, out=None) -> int:
    """Handle the ``compress`` subcommand."""
    out = out if out is not None else sys.stdout
    dataset = load_dataset(args)
    system = build_system(args)
    system.fit(dataset, build_index=False)
    mae = mean_absolute_error(system.summary, dataset)
    print(f"trajectories        : {len(dataset)}", file=out)
    print(f"points              : {dataset.num_points}", file=out)
    print(f"codewords           : {system.num_codewords()}", file=out)
    print(f"compression ratio   : {system.compression_ratio():.2f}", file=out)
    print(f"summary MAE (m)     : {mae:.1f}", file=out)
    print(f"build time (s)      : {system.quantizer.timings['total']:.2f}", file=out)
    return 0


def run_save(args: argparse.Namespace, out=None) -> int:
    """Handle the ``save`` subcommand: fit, serialize, report."""
    out = out if out is not None else sys.stdout
    dataset = load_dataset(args)
    system = build_system(args)
    system.fit(dataset)
    path = system.save(args.output, include_raw=not args.no_raw)
    info = inspect_model(path)
    print(f"artifact            : {path}", file=out)
    print(f"size (bytes)        : {info.file_size}", file=out)
    print(f"trajectories        : {len(dataset)}", file=out)
    print(f"points              : {dataset.num_points}", file=out)
    print(f"codewords           : {system.num_codewords()}", file=out)
    print(f"index periods       : {system.engine.index.num_periods}", file=out)
    print(f"sections            : {', '.join(s.name for s in info.sections)}", file=out)
    return 0


def run_load(args: argparse.Namespace, out=None) -> int:
    """Handle the ``load`` subcommand: restore an artifact, report readiness."""
    out = out if out is not None else sys.stdout
    try:
        system = PPQTrajectory.load(args.artifact, strict=args.strict)
    except OSError as exc:
        print(f"error: cannot read artifact: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ArtifactError as exc:
        print(f"error: artifact {args.artifact!r}: {exc}", file=sys.stderr)
        return EXIT_ARTIFACT
    summary = system.summary
    timestamps = summary.timestamps
    span = f"{timestamps[0]}..{timestamps[-1]}" if timestamps else "none"
    print(f"artifact            : {args.artifact}", file=out)
    print(f"variant             : {system.variant}", file=out)
    print(f"points              : {summary.num_points}", file=out)
    print(f"timestamps          : {len(timestamps)} ({span})", file=out)
    print(f"codewords           : {summary.num_codewords}", file=out)
    print(f"index periods       : {system.engine.index.num_periods}", file=out)
    exact = "yes" if system.engine.raw_dataset is not None else "no"
    print(f"exact queries       : {exact}", file=out)
    report = system.load_report
    if report is not None and not report.clean:
        print("salvage report      :", file=out)
        for line in report.lines():
            print(f"  {line}", file=out)
        print("checksums           : salvaged", file=out)
    else:
        print("checksums           : ok", file=out)
    return 0


def run_info(args: argparse.Namespace, out=None) -> int:
    """Handle the ``info`` subcommand: describe an artifact without loading."""
    out = out if out is not None else sys.stdout
    try:
        info = inspect_model(args.artifact)
    except OSError as exc:
        print(f"error: cannot read artifact: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ArtifactError as exc:
        print(f"error: artifact {args.artifact!r}: {exc}", file=sys.stderr)
        return EXIT_ARTIFACT
    print(f"artifact            : {info.path}", file=out)
    print(f"format version      : {info.format_version}", file=out)
    print(f"size (bytes)        : {info.file_size}", file=out)
    if info.config is not None:
        ppq = info.config["ppq"]
        print(f"variant             : {info.config['variant']}", file=out)
        print(f"epsilon1            : {ppq['epsilon1']}", file=out)
        print(f"criterion           : {ppq['criterion']}", file=out)
        print(f"cqc enabled         : {info.config['cqc']['enabled']}", file=out)
    print("sections            :", file=out)
    for section in info.sections:
        status = "ok" if section.crc_ok else "CORRUPT"
        print(f"  {section.name:<8} offset={section.offset:<10} "
              f"bytes={section.length:<10} crc={status}", file=out)
    print(f"checksums           : {'ok' if info.checksums_ok else 'FAILED'}", file=out)
    return 0 if info.checksums_ok else 1


def run_query(args: argparse.Namespace, out=None) -> int:
    """Handle the ``query`` subcommand."""
    out = out if out is not None else sys.stdout
    system = _obtain_system(args)
    if isinstance(system, int):
        return system
    if getattr(args, "workload", None):
        return _run_workload(system, args.workload, out, jobs=args.jobs)
    try:
        strq = system.strq(args.x, args.y, args.t)
        print(f"STRQ ({args.x}, {args.y}, t={args.t}) -> {len(strq.candidates)} candidate(s): "
              f"{strq.candidates}", file=out)
        if args.length > 0:
            tpq = system.tpq(args.x, args.y, args.t, length=args.length)
            for traj_id, path in tpq.paths.items():
                last = path[-1]
                print(f"  trajectory {traj_id}: {len(path)} reconstructed points, "
                      f"ends at ({last[0]:.5f}, {last[1]:.5f})", file=out)
    except Exception as exc:  # noqa: BLE001 - CLI boundary maps failures to exit codes
        print(f"error: query failed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_QUERY
    return 0


def _obtain_system(args: argparse.Namespace) -> PPQTrajectory | int:
    """Load ``--model`` or fit the selected dataset; int = error exit code."""
    if args.model:
        try:
            return PPQTrajectory.load(args.model, strict=args.strict)
        except OSError as exc:
            print(f"error: cannot read artifact: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ArtifactError as exc:
            print(f"error: artifact {args.model!r}: {exc}", file=sys.stderr)
            return EXIT_ARTIFACT
    dataset = load_dataset(args)
    system = build_system(args)
    system.fit(dataset)
    return system


def _run_workload(system: PPQTrajectory, path: str, out, jobs: int = 1) -> int:
    """Execute a JSON workload file through the batched query engine.

    With ``jobs > 1`` the workload is sharded across worker processes (see
    :mod:`repro.parallel`); each worker loads the model artifact once, and
    results are identical to ``jobs=1``.
    """
    try:
        workload = load_workload(path)
    except OSError as exc:
        print(f"error: cannot read workload file: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (WorkloadError, ValueError, KeyError, TypeError) as exc:
        print(f"error: invalid workload file {path!r}: {exc}", file=sys.stderr)
        return EXIT_WORKLOAD
    if not len(workload):
        print("workload            : 0 queries (empty)", file=out)
        print("nothing to do", file=out)
        return EXIT_OK
    cache_before = system.summary.slice_cache.stats()
    start = time.perf_counter()
    results = system.run_batch(workload, isolate=True, jobs=jobs)
    elapsed = time.perf_counter() - start
    counts = workload.counts()
    described = ", ".join(f"{count} {kind}" for kind, count in counts.items() if count)
    print(f"workload            : {len(workload)} queries ({described or 'empty'})", file=out)
    if jobs > 1:
        print(f"jobs                : {jobs} worker processes", file=out)
    print(f"batch time (s)      : {elapsed:.3f}", file=out)
    if elapsed > 0:
        print(f"throughput (q/s)    : {len(workload) / elapsed:.0f}", file=out)
    total_candidates = total_paths = total_matches = 0
    for result in results:
        if isinstance(result, STRQResult):
            total_candidates += len(result.candidates)
        elif isinstance(result, TPQResult):
            total_paths += len(result.paths)
        elif isinstance(result, ExactQueryResult):
            total_matches += len(result.matches)
    if counts["strq"]:
        print(f"STRQ candidates     : {total_candidates}", file=out)
    if counts["tpq"]:
        print(f"TPQ paths           : {total_paths}", file=out)
    if counts["exact"]:
        print(f"exact matches       : {total_matches}", file=out)
    if jobs == 1:
        # Report counter deltas so the line describes this workload, not the
        # slice reconstructions done while the index was built.  With jobs > 1
        # reconstruction happens in worker-process caches, so the parent's
        # counters say nothing about the workload and the line is omitted.
        cache = system.summary.slice_cache.stats()
        print(f"slice cache         : {cache['hits'] - cache_before['hits']} hits / "
              f"{cache['misses'] - cache_before['misses']} misses "
              f"({cache['evictions'] - cache_before['evictions']} evictions)", file=out)
    errors = [r for r in results if isinstance(r, QueryError)]
    if errors:
        for err in errors:
            print(f"error: query #{err.index} ({err.kind}) failed: "
                  f"{err.error_type}: {err.message}", file=sys.stderr)
        print(f"error: {len(errors)} of {len(workload)} queries failed", file=sys.stderr)
        return EXIT_QUERY
    return 0


def run_chaos(args: argparse.Namespace, out=None) -> int:
    """Handle the ``chaos`` subcommand: clean pass vs. fault-injected pass.

    The workload is answered once on the model's own engine with no faults
    armed, then again on a *fresh* engine (fresh index and caches) while the
    requested fault plan is active.  In ``degrade`` mode the second pass must
    produce byte-identical results -- that is the serving guarantee the
    reliability layer makes -- so any mismatch (or surviving query error)
    exits with :data:`EXIT_QUERY`.
    """
    out = out if out is not None else sys.stdout
    system = _obtain_system(args)
    if isinstance(system, int):
        return system
    if args.workload:
        try:
            workload = load_workload(args.workload)
        except OSError as exc:
            print(f"error: cannot read workload file: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except (WorkloadError, ValueError, KeyError, TypeError) as exc:
            print(f"error: invalid workload file {args.workload!r}: {exc}", file=sys.stderr)
            return EXIT_WORKLOAD
    else:
        workload = _chaos_workload(system, max(1, args.queries))
    if workload.counts()["exact"] and system.engine.raw_dataset is None:
        print("error: workload contains exact queries but the model has no raw data",
              file=sys.stderr)
        return EXIT_WORKLOAD

    clean = system.engine.run_batch(workload)
    # The faulted pass runs on a fresh engine so no decoded-posting or
    # reconstruction cache can mask the injected faults.  Built *before*
    # faults are armed: chaos targets serving, not index construction.
    engine = QueryEngine(
        system.summary, system.engine.index_config,
        raw_dataset=system.engine.raw_dataset,
        on_fault="degrade" if args.mode == "degrade" else "raise",
        retry_policy=RetryPolicy(max_retries=2, backoff=0.0),
    )
    plan = FaultPlan.from_spec(args.fault_points, probability=args.probability,
                               seed=args.fault_seed)
    with inject_faults(plan) as injector:
        faulted = engine.run_batch(workload, isolate=True)

    errors = [r for r in faulted if isinstance(r, QueryError)]
    mismatches = sum(
        1 for before, after in zip(clean, faulted)
        if isinstance(after, QueryError) or not _results_equal(before, after)
    )
    fired = ", ".join(f"{point}={count}"
                      for point, count in sorted(injector.fired.items())) or "none"
    print(f"fault seed          : {plan.seed}", file=out)
    print(f"fault points        : {', '.join(args.fault_points)}", file=out)
    print(f"mode                : {args.mode}", file=out)
    print(f"queries             : {len(workload)}", file=out)
    print(f"faults fired        : {injector.total_fired} ({fired})", file=out)
    print(f"cells quarantined   : {len(engine.quarantined)}", file=out)
    print(f"query errors        : {len(errors)}", file=out)
    verdict = "ok (degraded results identical to clean)" if mismatches == 0 else \
        f"FAILED ({mismatches} of {len(workload)} queries differ)"
    print(f"equivalence         : {verdict}", file=out)
    if mismatches == 0:
        return 0
    for err in errors:
        print(f"error: query #{err.index} ({err.kind}) failed: "
              f"{err.error_type}: {err.message}", file=sys.stderr)
    print(f"error: chaos run not equivalent (seed {plan.seed})", file=sys.stderr)
    return EXIT_QUERY


def _chaos_workload(system: PPQTrajectory, n: int) -> Workload:
    """Synthesize a deterministic STRQ/TPQ mix probing real summary points.

    Probes are taken from reconstructed slices spread across the time span so
    the queries hit populated index cells (a chaos run against empty space
    would exercise nothing).
    """
    summary = system.summary
    timestamps = summary.timestamps
    if not timestamps:
        raise ValueError("model has no timestamps to query")
    probes: list[tuple[float, float, int]] = []
    stride = max(1, len(timestamps) // 8)
    for t in timestamps[::stride]:
        for tid in sorted(summary.reconstruct_slice(int(t)))[:3]:
            point = summary.reconstruct_slice(int(t))[tid]
            probes.append((float(point[0]), float(point[1]), int(t)))
    specs = []
    for i in range(n):
        x, y, t = probes[i % len(probes)]
        if i % 2:
            specs.append(QuerySpec(kind="tpq", x=x, y=y, t=t, length=5))
        else:
            specs.append(QuerySpec(kind="strq", x=x, y=y, t=t))
    return Workload(queries=specs)


def _results_equal(a, b) -> bool:
    """True when two query results are identical (exact array equality)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, STRQResult):
        return (sorted(a.candidates) == sorted(b.candidates)
                and sorted(a.reconstructed) == sorted(b.reconstructed)
                and all(np.array_equal(a.reconstructed[k], b.reconstructed[k])
                        for k in a.reconstructed))
    if isinstance(a, TPQResult):
        return (sorted(a.paths) == sorted(b.paths)
                and all(np.array_equal(a.paths[k], b.paths[k]) for k in a.paths))
    if isinstance(a, ExactQueryResult):
        return (sorted(a.candidates) == sorted(b.candidates)
                and sorted(a.matches) == sorted(b.matches))
    return a == b


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "compress":
        return run_compress(args)
    if args.command == "save":
        return run_save(args)
    if args.command == "load":
        return run_load(args)
    if args.command == "info":
        return run_info(args)
    if args.command == "chaos":
        return run_chaos(args)
    return run_query(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

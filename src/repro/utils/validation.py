"""Small argument-validation helpers shared by public API entry points."""

from __future__ import annotations

import numpy as np


def ensure_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def ensure_in_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if ``low <= value <= high``, otherwise raise."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def ensure_points_array(points, name: str = "points",
                        allow_empty: bool = False) -> np.ndarray:
    """Coerce ``points`` into a float array of shape ``(n, 2)``.

    Accepts lists of pairs or arrays; raises ``ValueError`` for anything that
    cannot be interpreted as two-dimensional coordinates, for NaN or infinite
    coordinates (which would otherwise flow silently into the quantizer and
    index), and -- unless ``allow_empty`` is true -- for empty inputs.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1:
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        elif arr.size == 2:
            arr = arr.reshape(1, 2)
        else:
            raise ValueError(f"{name} must have shape (n, 2), got {arr.shape}")
    elif arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{name} must have shape (n, 2), got {arr.shape}")
    if len(arr) == 0:
        if not allow_empty:
            raise ValueError(f"{name} must contain at least one point")
        return arr
    if not np.all(np.isfinite(arr)):
        bad = int(np.flatnonzero(~np.isfinite(arr).all(axis=1))[0])
        raise ValueError(
            f"{name} contains non-finite coordinates (first bad row: index "
            f"{bad}, value {arr[bad].tolist()}); NaN/inf positions are not "
            "representable"
        )
    return arr

"""Small argument-validation helpers shared by public API entry points."""

from __future__ import annotations

import numpy as np


def ensure_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def ensure_in_range(name: str, value: float, low: float, high: float) -> float:
    """Return ``value`` if ``low <= value <= high``, otherwise raise."""
    value = float(value)
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def ensure_points_array(points, name: str = "points") -> np.ndarray:
    """Coerce ``points`` into a float array of shape ``(n, 2)``.

    Accepts lists of pairs or arrays; raises ``ValueError`` for anything that
    cannot be interpreted as two-dimensional coordinates.
    """
    arr = np.asarray(points, dtype=float)
    if arr.ndim == 1:
        if arr.size == 0:
            return arr.reshape(0, 2)
        if arr.size == 2:
            return arr.reshape(1, 2)
        raise ValueError(f"{name} must have shape (n, 2), got {arr.shape}")
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"{name} must have shape (n, 2), got {arr.shape}")
    return arr

"""Bit-level I/O used for compact storage accounting.

Trajectory-ID lists inside grid cells (Section 5.1 of the paper) are stored
as delta-encoded integers followed by Huffman coding; CQC codes are short
variable-length bit strings.  Both need an exact bit-level representation so
that index sizes and compression ratios can be measured faithfully.
"""

from __future__ import annotations

from repro.reliability import faults as _faults


class BitWriter:
    """Accumulates bits most-significant-bit first and renders them to bytes.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_bit(1)
    >>> w.bit_length
    4
    >>> w.to_bytes()
    b'\\xb0'
    """

    def __init__(self) -> None:
        self._bits: list[int] = []

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (``0`` or ``1``)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._bits.append(bit)

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant bit first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0:
            raise ValueError("value must be non-negative")
        if width and value >> width:
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_code(self, code: str) -> None:
        """Append a binary code given as a string of ``'0'``/``'1'`` chars."""
        for ch in code:
            if ch == "0":
                self._bits.append(0)
            elif ch == "1":
                self._bits.append(1)
            else:
                raise ValueError(f"invalid character {ch!r} in binary code")

    def write_unary(self, value: int) -> None:
        """Append ``value`` as a unary code: ``value`` ones then a zero."""
        if value < 0:
            raise ValueError("unary values must be non-negative")
        self._bits.extend([1] * value)
        self._bits.append(0)

    def write_elias_gamma(self, value: int) -> None:
        """Append a positive integer using Elias gamma coding."""
        if value <= 0:
            raise ValueError("Elias gamma requires a positive integer")
        width = value.bit_length()
        self._bits.extend([0] * (width - 1))
        self.write_bits(value, width)

    def to_bytes(self) -> bytes:
        """Render the bit stream as bytes, padding the tail with zeros."""
        out = bytearray()
        acc = 0
        count = 0
        for bit in self._bits:
            acc = (acc << 1) | bit
            count += 1
            if count == 8:
                out.append(acc)
                acc = 0
                count = 0
        if count:
            out.append(acc << (8 - count))
        return bytes(out)

    def to_bitstring(self) -> str:
        """Return the raw bit stream as a string of ``'0'``/``'1'``."""
        return "".join("1" if b else "0" for b in self._bits)


class BitReader:
    """Reads bits most-significant-bit first from bytes or a bit string."""

    def __init__(self, data: bytes | str, bit_length: int | None = None) -> None:
        if isinstance(data, str):
            self._bits = [1 if ch == "1" else 0 for ch in data]
        else:
            self._bits = []
            for byte in data:
                for shift in range(7, -1, -1):
                    self._bits.append((byte >> shift) & 1)
        if bit_length is not None:
            self._bits = self._bits[:bit_length]
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return len(self._bits) - self._pos

    def read_bit(self) -> int:
        """Read a single bit; raises ``EOFError`` when exhausted."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.check("bitio.read", key=self._pos)
        if self._pos >= len(self._bits):
            raise EOFError("bit stream exhausted")
        bit = self._bits[self._pos]
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer (MSB first)."""
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_bitstring(self, width: int) -> str:
        """Read ``width`` bits as a string of ``'0'``/``'1'`` characters.

        Inverse of :meth:`BitWriter.write_code`; used when variable-length
        codes (CQC bit strings) are unpacked from a stored artifact.
        """
        return "".join("1" if self.read_bit() else "0" for _ in range(width))

    def read_unary(self) -> int:
        """Read a unary code written by :meth:`BitWriter.write_unary`."""
        count = 0
        while self.read_bit() == 1:
            count += 1
        return count

    def read_elias_gamma(self) -> int:
        """Read an Elias gamma coded positive integer."""
        zeros = 0
        while True:
            bit = self.read_bit()
            if bit == 1:
                break
            zeros += 1
        value = 1
        for _ in range(zeros):
            value = (value << 1) | self.read_bit()
        return value

"""Geographic helpers: metre/degree conversions and distance functions.

The paper quotes every threshold twice -- once in coordinate units (e.g. the
default quantization deviation threshold ``eps1 = 0.001``) and once in metres
(``eps1_M ~= 111 m``).  The conversion factor is the length of one degree of
latitude, roughly 111 km.  All experiment code in :mod:`benchmarks` works in
metres and converts through these helpers, matching the paper's narrative.
"""

from __future__ import annotations

import math

import numpy as np

#: Approximate metres per degree of latitude (and per degree of longitude at
#: the equator).  The paper uses the same constant implicitly when stating
#: that ``eps1 = 0.001`` corresponds to about 111 metres.
DEGREE_TO_METERS: float = 111_000.0

#: Mean Earth radius in metres, used by :func:`haversine_meters`.
EARTH_RADIUS_METERS: float = 6_371_000.0


def degrees_to_meters(value_degrees: float) -> float:
    """Convert a length expressed in coordinate degrees to metres.

    Parameters
    ----------
    value_degrees:
        Length (a deviation threshold, a grid size, ...) in degrees.

    Returns
    -------
    float
        The same length in metres, using the flat ``111 km / degree``
        approximation adopted by the paper.
    """
    return float(value_degrees) * DEGREE_TO_METERS


def meters_to_degrees(value_meters: float) -> float:
    """Convert a length expressed in metres to coordinate degrees."""
    return float(value_meters) / DEGREE_TO_METERS


def euclidean(a, b) -> np.ndarray:
    """Euclidean distance between points ``a`` and ``b``.

    Both arguments may be single points of shape ``(2,)`` or arrays of shape
    ``(n, 2)``; broadcasting follows NumPy rules.  The result is a scalar for
    single points and an array of per-row distances otherwise.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    diff = a - b
    return np.sqrt(np.sum(diff * diff, axis=-1))


def haversine_meters(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two lon/lat points.

    Used only for reporting MAE values in metres for realistic (geographic)
    datasets; the quantizers themselves operate on raw coordinates.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_METERS * math.asin(math.sqrt(a))


def bounding_box(points: np.ndarray) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)`` of points.

    Parameters
    ----------
    points:
        Array of shape ``(n, 2)``.

    Raises
    ------
    ValueError
        If ``points`` is empty.
    """
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        raise ValueError("bounding_box() requires at least one point")
    return (
        float(pts[:, 0].min()),
        float(pts[:, 1].min()),
        float(pts[:, 0].max()),
        float(pts[:, 1].max()),
    )

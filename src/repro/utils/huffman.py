"""Canonical Huffman coding for small integer alphabets.

Section 5.1 of the paper compresses the trajectory-ID lists stored in every
grid cell with delta encoding followed by Huffman codes.  This module provides
the Huffman half: it builds an optimal prefix code from symbol frequencies,
exposes the per-symbol code table (so storage cost can be accounted exactly)
and supports round-trip encode/decode through :class:`~repro.utils.bitio`.
"""

from __future__ import annotations

import heapq
from collections import Counter
from collections.abc import Iterable, Sequence

from repro.reliability import faults as _faults
from repro.utils.bitio import BitReader, BitWriter


class HuffmanCodec:
    """Optimal prefix codec built from observed symbol frequencies.

    Parameters
    ----------
    frequencies:
        Mapping from symbol (any hashable, typically a small ``int``) to its
        occurrence count.  Symbols with zero or negative counts are ignored.

    Notes
    -----
    * With a single distinct symbol the code degenerates to one bit per
      occurrence, which keeps decode unambiguous.
    * Codes are *canonical*: generated in (length, symbol) order so that a
      codec can be reconstructed from code lengths alone if needed.
    """

    def __init__(self, frequencies: dict) -> None:
        freqs = {sym: int(count) for sym, count in frequencies.items() if count > 0}
        if not freqs:
            raise ValueError("HuffmanCodec requires at least one symbol with positive count")
        self._lengths = _code_lengths(freqs)
        self._codes = _canonical_codes(self._lengths)
        self._decode_table = {code: sym for sym, code in self._codes.items()}

    @classmethod
    def from_symbols(cls, symbols: Iterable) -> "HuffmanCodec":
        """Build a codec from a raw iterable of symbols."""
        return cls(Counter(symbols))

    @classmethod
    def from_code_lengths(cls, lengths: dict) -> "HuffmanCodec":
        """Rebuild a codec from its per-symbol canonical code lengths.

        Because codes are canonical, the ``(symbol, code length)`` pairs
        fully determine the code table; this is what the model-artifact
        storage layer persists instead of raw frequencies.

        Parameters
        ----------
        lengths:
            Mapping symbol -> code length in bits (all positive).

        Raises
        ------
        ValueError
            If ``lengths`` is empty or contains a non-positive length.
        """
        if not lengths:
            raise ValueError("from_code_lengths requires at least one symbol")
        cleaned = {sym: int(length) for sym, length in lengths.items()}
        if any(length <= 0 for length in cleaned.values()):
            raise ValueError("code lengths must be positive")
        codec = cls.__new__(cls)
        codec._lengths = cleaned
        codec._codes = _canonical_codes(cleaned)
        codec._decode_table = {code: sym for sym, code in codec._codes.items()}
        return codec

    @property
    def code_lengths(self) -> dict:
        """Mapping symbol -> canonical code length in bits.

        Together with :meth:`from_code_lengths` this makes the codec
        round-trippable without storing frequencies.
        """
        return dict(self._lengths)

    @property
    def code_table(self) -> dict:
        """Mapping symbol -> binary code string."""
        return dict(self._codes)

    def code_for(self, symbol) -> str:
        """Return the binary code of ``symbol``; raises ``KeyError`` if unknown."""
        return self._codes[symbol]

    def encoded_bit_length(self, symbols: Sequence) -> int:
        """Exact number of bits needed to encode ``symbols``."""
        return sum(len(self._codes[sym]) for sym in symbols)

    def encode(self, symbols: Sequence) -> tuple[bytes, int]:
        """Encode ``symbols``; returns ``(payload_bytes, bit_length)``."""
        writer = BitWriter()
        for sym in symbols:
            writer.write_code(self._codes[sym])
        return writer.to_bytes(), writer.bit_length

    def decode(self, payload: bytes, bit_length: int) -> list:
        """Decode ``bit_length`` bits of ``payload`` back into symbols."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.check("huffman.decode", key=bit_length)
        reader = BitReader(payload, bit_length=bit_length)
        out: list = []
        buffer = ""
        while reader.remaining:
            buffer += "1" if reader.read_bit() else "0"
            symbol = self._decode_table.get(buffer)
            if symbol is not None:
                out.append(symbol)
                buffer = ""
        if buffer:
            raise ValueError("bit stream ended inside a Huffman code")
        return out

    def table_bit_cost(self, symbol_bits: int = 32, length_bits: int = 5) -> int:
        """Storage cost of the code table itself, in bits.

        Each table entry stores the symbol (``symbol_bits``) and its code
        length (``length_bits``); this is what the compression-ratio metric
        charges for shipping the codec alongside the payload.
        """
        return len(self._codes) * (symbol_bits + length_bits)


def _code_lengths(freqs: dict) -> dict:
    """Compute Huffman code lengths per symbol from frequencies."""
    if len(freqs) == 1:
        only = next(iter(freqs))
        return {only: 1}
    heap: list[tuple[int, int, list]] = []
    for tie_break, (sym, count) in enumerate(sorted(freqs.items(), key=lambda kv: repr(kv[0]))):
        heapq.heappush(heap, (count, tie_break, [sym]))
    lengths = dict.fromkeys(freqs, 0)
    counter = len(freqs)
    while len(heap) > 1:
        count_a, _, syms_a = heapq.heappop(heap)
        count_b, _, syms_b = heapq.heappop(heap)
        for sym in syms_a + syms_b:
            lengths[sym] += 1
        heapq.heappush(heap, (count_a + count_b, counter, syms_a + syms_b))
        counter += 1
    return lengths


def _canonical_codes(lengths: dict) -> dict:
    """Assign canonical prefix codes given per-symbol code lengths."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], repr(kv[0])))
    codes: dict = {}
    code = 0
    prev_length = 0
    for sym, length in ordered:
        code <<= length - prev_length
        codes[sym] = format(code, f"0{length}b")
        code += 1
        prev_length = length
    return codes

"""Shared low-level utilities used across the PPQ-Trajectory reproduction.

The subpackage deliberately contains only dependency-free building blocks:

* :mod:`repro.utils.geo` -- degree/metre conversions and distances used to
  translate the paper's metre-denominated thresholds into coordinate space.
* :mod:`repro.utils.bitio` -- bit-level writers/readers used by the ID codec
  and by CQC when accounting for summary storage cost.
* :mod:`repro.utils.huffman` -- canonical Huffman coding for compressing
  delta-encoded trajectory-ID lists inside grid cells.
* :mod:`repro.utils.validation` -- small argument-validation helpers shared by
  public API entry points.
"""

from repro.utils.geo import (
    DEGREE_TO_METERS,
    degrees_to_meters,
    euclidean,
    haversine_meters,
    meters_to_degrees,
)
from repro.utils.bitio import BitReader, BitWriter
from repro.utils.huffman import HuffmanCodec
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_points_array,
)

__all__ = [
    "DEGREE_TO_METERS",
    "degrees_to_meters",
    "meters_to_degrees",
    "euclidean",
    "haversine_meters",
    "BitReader",
    "BitWriter",
    "HuffmanCodec",
    "ensure_positive",
    "ensure_in_range",
    "ensure_points_array",
]

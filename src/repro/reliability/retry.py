"""Bounded retry with exponential backoff for transient serving faults.

Transient faults (a flaky read, an injected ``FaultError(transient=True)``)
should be retried a bounded number of times; persistent corruption should
not -- retrying a corrupt posting list just burns the deadline.  The policy
here distinguishes the two by walking an exception's cause chain for a
``transient`` attribute, and callers may override that classification.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass


class RetryExhaustedError(RuntimeError):
    """Raised when every permitted attempt failed (or the deadline passed).

    The final underlying error is both chained (``__cause__``) and exposed
    as :attr:`last_error` so structured handlers need not parse messages.
    """

    def __init__(self, attempts: int, last_error: BaseException,
                 deadline_exceeded: bool = False) -> None:
        reason = "deadline exceeded" if deadline_exceeded else "retries exhausted"
        super().__init__(
            f"{reason} after {attempts} attempt{'s' if attempts != 1 else ''}: "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error
        self.deadline_exceeded = deadline_exceeded


def is_transient_error(error: BaseException) -> bool:
    """True when ``error`` (or anything on its cause chain) is transient.

    An exception is transient when it carries a truthy ``transient``
    attribute -- :class:`~repro.reliability.faults.FaultError` sets this --
    or wraps one that does (via ``__cause__``/``__context__`` or a ``cause``
    attribute, as used by the index layer's decode errors).
    """
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if getattr(current, "transient", False):
            return True
        current = (
            getattr(current, "cause", None)
            or current.__cause__
            or current.__context__
        )
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and an optional deadline.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt, so ``max_retries=2`` allows three
        calls in total.
    backoff:
        Sleep before the first retry, in seconds.
    multiplier:
        Backoff growth factor per retry (``backoff * multiplier**k``).
    max_backoff:
        Ceiling on any single sleep.
    deadline:
        Wall-clock budget in seconds for the whole call including sleeps;
        ``None`` means unbounded.  Exceeding it raises
        :class:`RetryExhaustedError` with ``deadline_exceeded=True``.
    """

    max_retries: int = 2
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def delay_for(self, retry_index: int) -> float:
        """Sleep duration before retry number ``retry_index`` (0-based)."""
        return min(self.backoff * (self.multiplier ** retry_index), self.max_backoff)

    def call(self, fn: Callable[[], object],
             retryable: Callable[[BaseException], bool] | None = None,
             sleep: Callable[[float], None] = time.sleep,
             clock: Callable[[], float] = time.monotonic):
        """Invoke ``fn`` with retries; return its result.

        Parameters
        ----------
        fn:
            Zero-argument callable to protect.
        retryable:
            Predicate deciding whether a raised exception deserves another
            attempt; defaults to :func:`is_transient_error`.  Non-retryable
            exceptions propagate unchanged on the spot.
        sleep / clock:
            Injectable for tests (the reliability suite passes ``sleep``
            recorders and fake clocks to assert backoff schedules without
            real waiting).
        """
        if retryable is None:
            retryable = is_transient_error
        start = clock()
        attempts = 0
        while True:
            attempts += 1
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - policy decides propagation
                if not retryable(exc):
                    raise
                if attempts > self.max_retries:
                    raise RetryExhaustedError(attempts, exc) from exc
                delay = self.delay_for(attempts - 1)
                if self.deadline is not None and (clock() - start) + delay > self.deadline:
                    raise RetryExhaustedError(attempts, exc, deadline_exceeded=True) from exc
                if delay > 0:
                    sleep(delay)

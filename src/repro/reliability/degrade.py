"""Graceful query degradation: quarantine records, per-query errors, repair.

When a posting-list decode fails inside the TPI, the engine does not abort
the query.  It quarantines the bad cell (recorded as a
:class:`QuarantineRecord`), recomputes that cell's postings by brute force
from the summary's reconstructions over the affected time period, patches
the in-memory index, and re-runs the lookup.  The recomputation is exact --
grid rectangles are only ever appended and kept disjoint, so a point's
insert-time cell membership is reproducible from the final geometry -- which
is what lets the reliability suite assert degraded results *equal* clean
results rather than merely approximate them.

Batch workloads additionally get per-query isolation: one poisoned query
yields a structured :class:`QueryError` in its result slot instead of
aborting the remaining queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined (and repaired) grid cell.

    Attributes
    ----------
    cell:
        The ``(col, row)`` cell whose stored posting list failed to decode.
    period_start / period_end:
        Inclusive time span of the TPI period owning the cell; the repair
        scan covers exactly this range.
    reason:
        Human-readable cause (the original decode error).
    recovered_ids:
        Number of trajectory IDs recovered by the brute-force recompute.
    """

    cell: tuple
    period_start: int
    period_end: int
    reason: str
    recovered_ids: int


@dataclass(frozen=True)
class QueryError:
    """Structured failure record for one query of an isolated batch.

    Appears in the corresponding result slot of
    ``QueryEngine.run_batch(..., isolate=True)`` so callers can correlate
    failures with workload positions without parsing tracebacks.
    """

    index: int
    kind: str
    error_type: str
    message: str
    transient: bool = False
    attempts: int = 1

    @classmethod
    def from_exception(cls, index: int, kind: str, error: BaseException,
                       attempts: int = 1) -> "QueryError":
        transient = bool(getattr(error, "transient", False))
        cause = getattr(error, "last_error", None) or error.__cause__
        if not transient and cause is not None:
            transient = bool(getattr(cause, "transient", False))
        return cls(index=index, kind=kind, error_type=type(error).__name__,
                   message=str(error), transient=transient, attempts=attempts)


@dataclass
class DegradationStats:
    """Aggregate degradation counters for one engine (chaos-report fodder)."""

    quarantined_cells: int = 0
    repaired_cells: int = 0
    fallback_queries: int = 0
    records: list = field(default_factory=list)


def recompute_cell_postings(summary, grid, cell: tuple, t_start: int, t_end: int) -> list[int]:
    """Brute-force recovery of one cell's posting list from reconstructions.

    Replays every timestamp of the owning period through the summary's
    (CQC-refined) reconstruction -- the same values the index was built
    from -- and collects the IDs of trajectories whose reconstructed point
    lands in ``cell`` of ``grid``.  ``grid`` is duck-typed (needs ``rect``
    with ``contains`` and ``cell_of``) so this module stays an import leaf.

    Returns the sorted, de-duplicated ID list matching what a healthy cell
    would have decoded to.
    """
    rect = grid.rect
    recovered: set[int] = set()
    for t in range(t_start, t_end + 1):
        for traj_id, point in summary.reconstruct_slice(t).items():
            x, y = float(point[0]), float(point[1])
            if rect.contains(x, y) and grid.cell_of(x, y) == cell:
                recovered.add(int(traj_id))
    return sorted(recovered)

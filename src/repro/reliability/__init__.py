"""Reliability toolkit: fault injection, retry policies, salvage, degradation.

This package is an import leaf -- it must not import from any other
``repro`` subpackage, because low-level modules (``utils.bitio``,
``utils.huffman``, ``index.grid``, ``core.summary``, ``storage.io``) import
:mod:`repro.reliability.faults` for their injection hooks.
"""

from repro.reliability.degrade import (
    DegradationStats,
    QuarantineRecord,
    QueryError,
    recompute_cell_postings,
)
from repro.reliability.faults import (
    INJECTION_POINTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    inject_faults,
)
from repro.reliability.retry import (
    RetryExhaustedError,
    RetryPolicy,
    is_transient_error,
)
from repro.reliability.salvage import LoadReport, SectionOutcome

__all__ = [
    "INJECTION_POINTS",
    "DegradationStats",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "LoadReport",
    "QuarantineRecord",
    "QueryError",
    "RetryExhaustedError",
    "RetryPolicy",
    "SectionOutcome",
    "inject_faults",
    "is_transient_error",
    "recompute_cell_postings",
]

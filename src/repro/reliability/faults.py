"""Deterministic, seedable fault injection for reliability testing.

Production trajectory stores treat partial failure as the normal case: a
single corrupt posting list or a flaky read must not take down a serving
process.  To *prove* that the rest of the system degrades gracefully, this
module lets tests (and the ``repro chaos`` CLI verb) inject failures at
named points on the storage/decode/query path:

========================  ====================================================
``storage.section_read``  artifact section decode in :mod:`repro.storage.io`
``index.tpi_lookup``      TPI period lookup in :mod:`repro.index.tpi`
``index.cell_decode``     posting-list decode of one grid cell
                          (:mod:`repro.index.grid`)
``huffman.decode``        Huffman stream decode (:mod:`repro.utils.huffman`)
``bitio.read``            bit-level reads (:mod:`repro.utils.bitio`)
``summary.reconstruct``   point reconstruction (:mod:`repro.core.summary`)
========================  ====================================================

Design constraints:

* **Zero overhead when disabled.**  Instrumented code guards every hook with
  ``if faults.ACTIVE is not None`` -- a single global load and identity test;
  no plan means no function call, no allocation, nothing.
* **Deterministic.**  A :class:`FaultPlan` carries a seed; probabilistic
  rules draw from one ``random.Random(seed)`` in call order, so a failing
  chaos run is reproducible from its seed alone.
* **Scoped.**  Faults are only active inside the :func:`inject_faults`
  context manager; the previous injector (usually ``None``) is restored on
  exit even when the body raises.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Every injection point wired into the codebase.  Plans naming any other
#: point are rejected up front so that typos cannot silently disable a test.
INJECTION_POINTS = (
    "storage.section_read",
    "index.tpi_lookup",
    "index.cell_decode",
    "huffman.decode",
    "bitio.read",
    "summary.reconstruct",
)

#: The currently active injector, or ``None``.  Instrumented modules read
#: this directly (``if faults.ACTIVE is not None: faults.ACTIVE.check(...)``)
#: so the disabled path costs one attribute load and an identity test.
ACTIVE = None


class FaultError(RuntimeError):
    """An injected fault.

    Attributes
    ----------
    point:
        The injection point that fired.
    key:
        The site-specific key passed to :meth:`FaultInjector.check` (e.g. a
        grid cell or an artifact section name), or ``None``.
    transient:
        Whether the fault models a transient condition (a flaky read that
        would succeed if retried) rather than persistent corruption.  Retry
        policies only retry transient errors.
    """

    def __init__(self, point: str, key=None, transient: bool = False) -> None:
        detail = f" (key={key!r})" if key is not None else ""
        kind = "transient" if transient else "persistent"
        super().__init__(f"injected {kind} fault at {point}{detail}")
        self.point = point
        self.key = key
        self.transient = transient


@dataclass
class FaultRule:
    """One rule of a :class:`FaultPlan`: when and how a point fails.

    Attributes
    ----------
    point:
        Injection point name (must be one of :data:`INJECTION_POINTS`).
    probability:
        Chance that a matching call fires, drawn deterministically from the
        plan's seeded RNG.  ``1.0`` (the default) fires on every call.
    max_fires:
        Stop firing after this many faults (``None`` = unlimited).  A rule
        with ``max_fires=N`` and ``transient=True`` models an operation that
        fails ``N`` times and then succeeds -- exactly what retry policies
        are tested against.
    transient:
        Marks raised :class:`FaultError`\\ s as retryable.
    key:
        Only fire when the injection site passes an equal key (e.g. one
        specific artifact section); ``None`` matches every call.
    fires:
        How many times this rule has fired (mutated by the injector).
    """

    point: str
    probability: float = 1.0
    max_fires: int | None = None
    transient: bool = False
    key: object = None
    fires: int = 0


@dataclass
class FaultPlan:
    """A seedable, declarative set of fault rules.

    Examples
    --------
    Fail every posting-list decode (persistent corruption)::

        plan = FaultPlan(seed=7).add("index.cell_decode")

    Fail the first two TPI lookups transiently (retry succeeds)::

        plan = FaultPlan().add("index.tpi_lookup", max_fires=2, transient=True)
    """

    seed: int = 0
    rules: list[FaultRule] = field(default_factory=list)

    def add(self, point: str, probability: float = 1.0, max_fires: int | None = None,
            transient: bool = False, key: object = None) -> "FaultPlan":
        """Append a rule and return ``self`` (chainable)."""
        if point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; known points: "
                f"{', '.join(INJECTION_POINTS)}"
            )
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.rules.append(FaultRule(point=point, probability=float(probability),
                                    max_fires=max_fires, transient=transient, key=key))
        return self

    @classmethod
    def from_spec(cls, points, probability: float = 1.0, max_fires: int | None = None,
                  transient: bool = False, seed: int = 0) -> "FaultPlan":
        """Build a plan from a list of point names (CLI ``repro chaos``)."""
        plan = cls(seed=seed)
        for point in points:
            plan.add(point, probability=probability, max_fires=max_fires,
                     transient=transient)
        return plan


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at every instrumented call site.

    Parameters
    ----------
    plan:
        The plan to execute.  Rules are validated eagerly; the plan's seed
        initialises the RNG used by probabilistic rules.

    Attributes
    ----------
    fired:
        Mapping injection point -> number of faults raised there, for chaos
        reports and test assertions.
    checked:
        Mapping injection point -> number of times the point was reached
        (fired or not), useful to prove an instrumented path actually ran.
    """

    def __init__(self, plan: FaultPlan) -> None:
        for rule in plan.rules:
            if rule.point not in INJECTION_POINTS:
                raise ValueError(f"unknown injection point {rule.point!r}")
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.fired: dict[str, int] = {}
        self.checked: dict[str, int] = {}

    def check(self, point: str, key=None) -> None:
        """Raise :class:`FaultError` when a rule for ``point`` fires.

        Called by the instrumented modules; ``key`` identifies the specific
        resource (grid cell, section name, timestamp) for key-scoped rules
        and error messages.
        """
        self.checked[point] = self.checked.get(point, 0) + 1
        for rule in self.plan.rules:
            if rule.point != point:
                continue
            if rule.key is not None and rule.key != key:
                continue
            if rule.max_fires is not None and rule.fires >= rule.max_fires:
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            rule.fires += 1
            self.fired[point] = self.fired.get(point, 0) + 1
            raise FaultError(point, key=key, transient=rule.transient)

    @property
    def total_fired(self) -> int:
        """Total number of faults raised across all points."""
        return sum(self.fired.values())


@contextmanager
def inject_faults(plan: FaultPlan):
    """Activate ``plan`` for the duration of the ``with`` block.

    Yields the :class:`FaultInjector` so callers can inspect its ``fired``
    and ``checked`` counters afterwards.  The previously active injector is
    restored on exit, so scopes nest correctly and an exception inside the
    block cannot leave faults armed.
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = FaultInjector(plan)
    try:
        yield ACTIVE
    finally:
        ACTIVE = previous

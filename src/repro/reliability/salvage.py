"""Load-time salvage reporting for damaged model artifacts.

``load_model(path, strict=False)`` tries to bring up a query-able system
from a corrupt or truncated artifact instead of refusing outright.  Each
section lands in one of three states:

* ``ok`` -- decoded normally.
* ``rebuilt`` -- the stored copy was unusable but the section is derivable
  (the reconstruction cache is recomputed from records; the TPI is rebuilt
  from summary reconstructions) so nothing was lost.
* ``dropped`` -- non-derivable and damaged (the raw-data section); the
  capability it backed (exact-query verification) is disabled and listed
  under :attr:`LoadReport.lost`.

Sections that are both non-derivable and required (config, codebook,
records) cannot be salvaged: without them there is no model, so even
non-strict loads raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Allowed values of :attr:`SectionOutcome.status`.
SECTION_STATUSES = ("ok", "rebuilt", "dropped")


@dataclass(frozen=True)
class SectionOutcome:
    """Fate of a single artifact section during a (non-strict) load."""

    name: str
    status: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.status not in SECTION_STATUSES:
            raise ValueError(
                f"status must be one of {SECTION_STATUSES}, got {self.status!r}"
            )


@dataclass
class LoadReport:
    """What a salvage load found, fixed, and lost.

    Attributes
    ----------
    path:
        Artifact file the report describes.
    strict:
        Whether the load ran in strict mode (a strict load that succeeds
        reports every section ``ok``).
    sections:
        Per-section outcomes in artifact order.
    lost:
        Capabilities that are unavailable after the load (e.g.
        ``"exact queries"`` when the raw-data section was dropped).
    """

    path: str
    strict: bool = True
    sections: list[SectionOutcome] = field(default_factory=list)
    lost: list[str] = field(default_factory=list)

    def record(self, name: str, status: str, detail: str = "") -> None:
        """Append one section outcome."""
        self.sections.append(SectionOutcome(name=name, status=status, detail=detail))

    def mark_lost(self, capability: str) -> None:
        """Register a capability as unavailable after this load."""
        if capability not in self.lost:
            self.lost.append(capability)

    @property
    def clean(self) -> bool:
        """True when every section decoded normally and nothing was lost."""
        return not self.lost and all(s.status == "ok" for s in self.sections)

    @property
    def rebuilt(self) -> list[str]:
        """Names of sections that were rebuilt from derivable state."""
        return [s.name for s in self.sections if s.status == "rebuilt"]

    @property
    def dropped(self) -> list[str]:
        """Names of sections that were dropped."""
        return [s.name for s in self.sections if s.status == "dropped"]

    def lines(self) -> list[str]:
        """Human-readable one-line-per-section summary (CLI output)."""
        out = []
        for section in self.sections:
            line = f"{section.name}: {section.status}"
            if section.detail:
                line += f" ({section.detail})"
            out.append(line)
        if self.lost:
            out.append("lost capabilities: " + ", ".join(self.lost))
        return out

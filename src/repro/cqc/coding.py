"""CQC coder: map reconstruction offsets to quadtree codes and back.

The coder is a fixed template determined solely by the error bound
``epsilon1`` and the CQC grid size ``g_s`` (Section 4.2): the ε₁ error disc is
covered by a square grid of cells of side ``g_s`` centred on the true point;
the cell containing the reconstruction is encoded with the coordinate
quadtree.  Because the template never depends on the data, one coder instance
is shared by the whole summary and the per-point cost is just the code's bit
length.
"""

from __future__ import annotations

import numpy as np

from repro.cqc.quadtree import CoordinateQuadtree


class CQCCoder:
    """Encode/decode the offset between a point and its reconstruction.

    Parameters
    ----------
    epsilon:
        The quantization error bound ``epsilon1``: offsets are guaranteed (by
        the quantizer) to have norm at most ``epsilon``.  Offsets slightly
        outside -- which can only arise from floating-point rounding -- are
        clamped to the nearest covered cell, preserving the Lemma 3 bound
        relative to the clamped position.
    grid_size:
        CQC cell size ``g_s`` in the same units as ``epsilon``.

    Notes
    -----
    The decoded offset is the centre of the encoded cell, so the residual
    error after CQC refinement is at most ``√2/2 · g_s`` (Lemma 3).
    """

    def __init__(self, epsilon: float, grid_size: float) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        if grid_size <= 0:
            raise ValueError("grid_size must be > 0")
        self.epsilon = float(epsilon)
        self.grid_size = float(grid_size)
        # Number of cells per side: enough to cover [-epsilon, epsilon] with
        # the centre cell centred on zero (odd count).
        half_cells = int(np.ceil(self.epsilon / self.grid_size))
        self.cells_per_side = 2 * half_cells + 1
        self._center = half_cells
        self.quadtree = CoordinateQuadtree(self.cells_per_side, self.cells_per_side)

    # ------------------------------------------------------------------ #
    # encoding / decoding
    # ------------------------------------------------------------------ #
    def cell_of_offset(self, offset) -> tuple[int, int]:
        """Grid cell indices of an offset vector (clamped to the template)."""
        offset = np.asarray(offset, dtype=float).reshape(2)
        ix = int(np.rint(offset[0] / self.grid_size)) + self._center
        iy = int(np.rint(offset[1] / self.grid_size)) + self._center
        ix = min(max(ix, 0), self.cells_per_side - 1)
        iy = min(max(iy, 0), self.cells_per_side - 1)
        return ix, iy

    def encode_offset(self, offset) -> str:
        """Encode ``offset = true_point - reconstruction`` as a CQC bit string."""
        ix, iy = self.cell_of_offset(offset)
        return self.quadtree.encode_cell(ix, iy)

    def decode_offset(self, code: str) -> np.ndarray:
        """Decode a CQC bit string back to the cell-centre offset vector."""
        ix, iy = self.quadtree.decode_cell(code)
        return np.array(
            [(ix - self._center) * self.grid_size, (iy - self._center) * self.grid_size],
            dtype=float,
        )

    # ------------------------------------------------------------------ #
    # properties used by queries and storage accounting
    # ------------------------------------------------------------------ #
    @property
    def code_length(self) -> int:
        """Bits per stored CQC code."""
        return self.quadtree.code_length

    @property
    def residual_bound(self) -> float:
        """Lemma 3 bound on the error after CQC refinement (``√2/2 · g_s``)."""
        return float(np.sqrt(2.0) / 2.0 * self.grid_size)

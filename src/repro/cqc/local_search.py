"""Local-search helpers for exact query answering (Section 5.2).

CQC bounds the deviation between a true point and its refined reconstruction
by ``r = √2/2 · g_s`` (Lemma 3).  When the summary is used as an index, the
query point's grid cell alone may therefore miss trajectories whose true
position is near a cell border; the local search widens the candidate space:

* when ``r > g_c`` every index cell intersected by the radius-``r`` disc
  around the query point must be scanned;
* when ``r <= g_c`` (the common case, because ``g_s`` is chosen smaller than
  ``g_c``) scanning the query cell and its adjacent cells and keeping only
  reconstructions within ``r`` of the query point is sufficient.

These helpers enumerate the cells to scan; the filtering happens in
:mod:`repro.queries.exact`.
"""

from __future__ import annotations

import math

import numpy as np


def search_radius(grid_size: float) -> float:
    """Lemma 3 deviation bound ``√2/2 · g_s`` for a CQC grid size."""
    return math.sqrt(2.0) / 2.0 * float(grid_size)


def within_radius_mask(points: np.ndarray, center: tuple[float, float],
                       radius: float) -> np.ndarray:
    """Broadcast distance filter: which ``points`` lie within ``radius``.

    Vectorised replacement for per-point ``norm(p - center) <= radius``
    checks; :func:`cells_within_radius` uses it to test every candidate
    cell's nearest point against the disc in one NumPy operation.  Boundary
    points (distance exactly ``radius``) are kept (closed disc).
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    delta = points - np.asarray(center, dtype=float)
    return np.einsum("ij,ij->i", delta, delta) <= float(radius) ** 2


def neighbor_cells(cell: tuple[int, int], include_center: bool = True) -> list[tuple[int, int]]:
    """The 3x3 block of cells around ``cell`` (the ``r <= g_c`` case)."""
    cx, cy = cell
    cells = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if not include_center and dx == 0 and dy == 0:
                continue
            cells.append((cx + dx, cy + dy))
    return cells


def cells_within_radius(point: tuple[float, float], radius: float, origin: tuple[float, float],
                        cell_size: float) -> list[tuple[int, int]]:
    """All grid cells intersecting the disc of ``radius`` around ``point``.

    Parameters
    ----------
    point:
        Query location ``(x, y)``.
    radius:
        Search radius (``√2/2 · g_s`` for the ``r > g_c`` case).
    origin:
        Lower-left corner of the grid.
    cell_size:
        Grid cell side length ``g_c``.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be > 0")
    px, py = point
    ox, oy = origin
    min_ix = math.floor((px - radius - ox) / cell_size)
    max_ix = math.floor((px + radius - ox) / cell_size)
    min_iy = math.floor((py - radius - oy) / cell_size)
    max_iy = math.floor((py + radius - oy) / cell_size)
    # Broadcast the disc/rectangle intersection test over the whole candidate
    # block: a cell intersects the disc iff its nearest point to the query is
    # within the radius.
    ix, iy = np.meshgrid(np.arange(min_ix, max_ix + 1), np.arange(min_iy, max_iy + 1),
                         indexing="ij")
    cell_min_x = ox + ix * cell_size
    cell_min_y = oy + iy * cell_size
    nearest = np.stack(
        [np.clip(px, cell_min_x, cell_min_x + cell_size),
         np.clip(py, cell_min_y, cell_min_y + cell_size)], axis=-1,
    )
    mask = within_radius_mask(nearest.reshape(-1, 2), (px, py), radius).reshape(ix.shape)
    return [(int(cx), int(cy)) for cx, cy in zip(ix[mask], iy[mask])]

"""The coordinate quadtree: a fixed template addressing grid cells with codes.

Algorithm 2 of the paper builds a quadtree over the grid covering the ε₁
error disc.  A region whose side length (in cells) is odd cannot be split into
four equal quadrants, so it is *padded* with virtual cells before splitting;
padding cells never receive codes and are pruned from the recursion.  Every
real grid cell ends up as a leaf whose code is the concatenation of the 2-bit
quadrant labels along the path from the root (Definition 4.2).

Implementation notes
--------------------
The paper additionally stores a coordinate value per node so that a code can
be converted back to a cell position arithmetically (Equations 9-10) without
keeping the tree around.  Because the template is tiny (it only depends on
``epsilon1`` and ``g_s``, never on the data) we keep the explicit tree in
memory and decode by walking it, which is exactly equivalent and removes a
source of subtle arithmetic bugs.  Padding is always applied towards the low
index side; the paper pads different quadrants in different directions only to
make its arithmetic decoding unambiguous, which the explicit tree walk does
not need.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Quadrant labels, as two-bit strings, indexed by (x_half, y_half) where the
#: first bit selects the x half and the second bit the y half.
_QUADRANT_BITS = {(0, 0): "00", (0, 1): "01", (1, 0): "10", (1, 1): "11"}


@dataclass
class _Node:
    """One subspace of the coordinate quadtree.

    ``x0, y0`` are the lowest cell indices covered by the subspace (they can
    be negative when the subspace includes padding), ``nx, ny`` its size in
    cells.  ``children`` maps quadrant bit strings to child nodes; leaves have
    no children.
    """

    x0: int
    y0: int
    nx: int
    ny: int
    children: dict[str, "_Node"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class CoordinateQuadtree:
    """Quadtree template over an ``nx x ny`` grid of cells.

    Parameters
    ----------
    nx, ny:
        Number of real grid cells along x and y.  Cells are addressed by
        integer indices ``(ix, iy)`` with ``0 <= ix < nx`` and
        ``0 <= iy < ny``.

    The tree assigns every real cell a unique binary code of length
    ``2 * ceil(log2(max(nx, ny)))`` bits (all leaves sit at the same depth, a
    property the padding construction guarantees).
    """

    def __init__(self, nx: int, ny: int) -> None:
        if nx < 1 or ny < 1:
            raise ValueError(f"grid must have at least one cell, got {nx}x{ny}")
        self.nx = int(nx)
        self.ny = int(ny)
        self._root = _Node(x0=0, y0=0, nx=self.nx, ny=self.ny)
        self._encode_table: dict[tuple[int, int], str] = {}
        self._decode_table: dict[str, tuple[int, int]] = {}
        self._build(self._root, prefix="")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, node: _Node, prefix: str) -> None:
        """Recursive ``build_tree`` with the partition-padding step."""
        if node.nx <= 0 or node.ny <= 0:
            return
        if not self._overlaps_grid(node):
            # Pure padding subspace: nothing to code (stop condition).
            return
        if node.nx == 1 and node.ny == 1:
            cell = (node.x0, node.y0)
            self._encode_table[cell] = prefix
            self._decode_table[prefix] = cell
            return
        # partition_padding: extend odd dimensions by one (virtual) cell on
        # the low side so the subspace splits into four equal quadrants.
        x0, y0 = node.x0, node.y0
        nx, ny = node.nx, node.ny
        if nx % 2:
            x0 -= 1
            nx += 1
        if ny % 2:
            y0 -= 1
            ny += 1
        half_x, half_y = nx // 2, ny // 2
        for x_half in (0, 1):
            for y_half in (0, 1):
                child = _Node(
                    x0=x0 + x_half * half_x,
                    y0=y0 + y_half * half_y,
                    nx=half_x,
                    ny=half_y,
                )
                bits = _QUADRANT_BITS[(x_half, y_half)]
                node.children[bits] = child
                self._build(child, prefix + bits)

    def _overlaps_grid(self, node: _Node) -> bool:
        """Whether the subspace contains at least one real (non-padding) cell."""
        return (node.x0 + node.nx > 0 and node.x0 < self.nx
                and node.y0 + node.ny > 0 and node.y0 < self.ny)

    # ------------------------------------------------------------------ #
    # coding
    # ------------------------------------------------------------------ #
    @property
    def code_length(self) -> int:
        """Length in bits of the (uniform-depth) cell codes."""
        if not self._decode_table:
            return 0
        return max(len(code) for code in self._decode_table)

    @property
    def num_cells(self) -> int:
        """Number of real cells with assigned codes."""
        return len(self._encode_table)

    def encode_cell(self, ix: int, iy: int) -> str:
        """Return the CQC bit string of the real cell ``(ix, iy)``."""
        key = (int(ix), int(iy))
        if key not in self._encode_table:
            raise KeyError(f"cell {key} is outside the {self.nx}x{self.ny} grid")
        return self._encode_table[key]

    def decode_cell(self, code: str) -> tuple[int, int]:
        """Inverse of :meth:`encode_cell`."""
        if code not in self._decode_table:
            raise KeyError(f"unknown CQC code {code!r}")
        return self._decode_table[code]

    def cells(self) -> list[tuple[int, int]]:
        """All real cells in encode-table order."""
        return list(self._encode_table)

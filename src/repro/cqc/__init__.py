"""Coordinate quadtree coding (CQC) -- Section 4 of the paper.

CQC encodes the small residual deviation between a trajectory point and its
ε₁-bounded reconstruction as a short, variable-length binary code addressing
a cell of a fixed quadtree template.  Decoding the code and adding the cell
centre to the reconstruction yields an accurate reconstruction whose error is
bounded by ``√2/2 · g_s`` (Lemma 3).

* :mod:`repro.cqc.quadtree` -- the coordinate quadtree template itself, with
  the padding-based four-way splitting of Algorithm 2.
* :mod:`repro.cqc.coding` -- :class:`CQCCoder`, mapping offsets to codes and
  back.
* :mod:`repro.cqc.local_search` -- cell-enumeration helpers implementing the
  local-search strategy of Section 5.2.
"""

from repro.cqc.quadtree import CoordinateQuadtree
from repro.cqc.coding import CQCCoder
from repro.cqc.local_search import cells_within_radius, neighbor_cells, search_radius

__all__ = [
    "CoordinateQuadtree",
    "CQCCoder",
    "search_radius",
    "neighbor_cells",
    "cells_within_radius",
]

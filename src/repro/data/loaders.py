"""Loaders for the real public datasets used by the paper.

These parsers read the on-disk formats of the Porto taxi challenge CSV
(polyline column of ``[[lon, lat], ...]`` lists) and the GeoLife ``.plt``
files.  They are provided so that the real datasets can be dropped into the
benchmark harness unchanged; the offline test suite exercises them through
small fixture files written by the tests themselves.
"""

from __future__ import annotations

import ast
import csv
import os
from collections.abc import Iterable

import numpy as np

from repro.data.trajectory import Trajectory, TrajectoryDataset


def load_porto_csv(path: str, min_length: int = 30,
                   max_trajectories: int | None = None) -> TrajectoryDataset:
    """Load the Porto taxi CSV (ECML-PKDD 2015 challenge format).

    Parameters
    ----------
    path:
        Path to ``train.csv`` (or a subset with the same columns).  The
        only column used is ``POLYLINE``, a JSON-style list of
        ``[longitude, latitude]`` pairs sampled every 15 seconds.
    min_length:
        Trajectories shorter than this are dropped -- the paper keeps only
        trajectories with at least 30 points.
    max_trajectories:
        Optional cap on the number of trajectories loaded.

    Returns
    -------
    TrajectoryDataset
    """
    trajectories: list[Trajectory] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "POLYLINE" not in reader.fieldnames:
            raise ValueError(f"{path} does not look like a Porto CSV (no POLYLINE column)")
        for row in reader:
            polyline = _parse_polyline(row["POLYLINE"])
            if len(polyline) < min_length:
                continue
            trajectories.append(Trajectory(traj_id=len(trajectories), points=polyline))
            if max_trajectories is not None and len(trajectories) >= max_trajectories:
                break
    return TrajectoryDataset(trajectories)


def load_plt_directory(root: str, min_length: int = 30,
                       max_trajectories: int | None = None) -> TrajectoryDataset:
    """Load GeoLife ``.plt`` files found anywhere below ``root``.

    Each ``.plt`` file becomes one trajectory; the six header lines of the
    GeoLife format are skipped and the ``latitude, longitude`` columns are
    stored as ``(x=longitude, y=latitude)``.
    """
    trajectories: list[Trajectory] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        for filename in sorted(filenames):
            if not filename.lower().endswith(".plt"):
                continue
            points = _parse_plt(os.path.join(dirpath, filename))
            if len(points) < min_length:
                continue
            trajectories.append(Trajectory(traj_id=len(trajectories), points=points))
            if max_trajectories is not None and len(trajectories) >= max_trajectories:
                return TrajectoryDataset(trajectories)
    return TrajectoryDataset(trajectories)


def _parse_polyline(raw: str) -> np.ndarray:
    """Parse the POLYLINE column into an ``(n, 2)`` array of (lon, lat)."""
    raw = raw.strip()
    if not raw or raw == "[]":
        return np.empty((0, 2), dtype=float)
    try:
        pairs = ast.literal_eval(raw)
    except (ValueError, SyntaxError) as exc:
        raise ValueError(f"malformed POLYLINE value: {raw[:60]!r}...") from exc
    return np.asarray(pairs, dtype=float).reshape(-1, 2)


def _parse_plt(path: str) -> np.ndarray:
    """Parse one GeoLife ``.plt`` file into an ``(n, 2)`` array of (lon, lat)."""
    points: list[tuple[float, float]] = []
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    for line in lines[6:]:
        parts = line.strip().split(",")
        if len(parts) < 2:
            continue
        try:
            lat = float(parts[0])
            lon = float(parts[1])
        except ValueError:
            continue
        points.append((lon, lat))
    return np.asarray(points, dtype=float).reshape(-1, 2)


def iter_dataset_chunks(dataset: TrajectoryDataset,
                        chunk_size: int) -> Iterable[TrajectoryDataset]:
    """Split a dataset into chunks of at most ``chunk_size`` trajectories.

    Useful for processing very large repositories incrementally in examples
    and benchmarks without holding all summaries in memory at once.
    """
    ids = dataset.trajectory_ids
    for start in range(0, len(ids), chunk_size):
        yield dataset.restrict(ids[start:start + chunk_size])

"""Synthetic trajectory workload generators.

The paper evaluates on the public Porto taxi and GeoLife datasets.  Neither is
available in this offline environment, so we generate synthetic workloads
whose *statistical properties relevant to the algorithms* match the real data:

* smooth, autocorrelated motion (so that linear prediction narrows the error
  dynamic range -- the property PPQ exploits);
* heterogeneous movement regimes (walk / bike / drive), so autocorrelation-
  based partitioning has structure to discover;
* a dense, city-scale spatial extent for the Porto-like workload and a much
  larger, sparse extent for the GeoLife-like workload (which in the paper is
  what blows up the MAE of non-predictive quantizers);
* trajectories of widely different lengths with a minimum of 30 points.

Loaders for the real CSV/PLT formats live in :mod:`repro.data.loaders`; any
experiment accepts a :class:`~repro.data.trajectory.TrajectoryDataset`, so the
real datasets can be substituted without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.utils.geo import DEGREE_TO_METERS


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic workload generator.

    Attributes
    ----------
    num_trajectories:
        Number of trajectories to generate.
    min_length, max_length:
        Bounds (inclusive) on the number of points per trajectory.
    center:
        ``(x, y)`` centre of the region, in degrees.
    extent:
        Half-width of the region in degrees; starting points are drawn from
        a mixture of hot-spot clusters inside ``center +- extent``.
    mean_speed_mps:
        Average movement speed in metres per second.
    speed_mix:
        Tuple of per-regime speed multipliers; each trajectory samples one
        regime (e.g. pedestrian / bicycle / car for GeoLife).
    sampling_interval_s:
        Seconds between consecutive points (15 s for Porto-like data).
    turn_std:
        Standard deviation (radians) of the per-step heading change; small
        values give smooth, highly autocorrelated motion.
    noise_std_m:
        GPS noise standard deviation in metres.
    num_hotspots:
        Number of spatial clusters from which trajectories start.
    seed:
        Seed of the random generator (every generator call is deterministic
        given the config).
    """

    num_trajectories: int = 200
    min_length: int = 30
    max_length: int = 200
    center: tuple[float, float] = (-8.62, 41.16)
    extent: float = 0.08
    mean_speed_mps: float = 8.0
    speed_mix: tuple[float, ...] = (1.0,)
    sampling_interval_s: float = 15.0
    turn_std: float = 0.25
    noise_std_m: float = 3.0
    num_hotspots: int = 8
    seed: int = 7


#: Porto-like default: dense urban taxi traces, one movement regime,
#: 15-second sampling inside a city-sized box.
PORTO_LIKE = SyntheticConfig(
    num_trajectories=200,
    min_length=30,
    max_length=300,
    center=(-8.62, 41.16),
    extent=0.075,
    mean_speed_mps=9.0,
    speed_mix=(1.0,),
    sampling_interval_s=15.0,
    turn_std=0.22,
    noise_std_m=4.0,
    num_hotspots=10,
    seed=13,
)

#: GeoLife-like default: multi-modal movement (walk / bike / drive), a much
#: larger region and much longer trajectories.
GEOLIFE_LIKE = SyntheticConfig(
    num_trajectories=80,
    min_length=60,
    max_length=900,
    center=(116.35, 39.95),
    extent=0.9,
    mean_speed_mps=4.0,
    speed_mix=(0.35, 1.0, 4.0),
    sampling_interval_s=5.0,
    turn_std=0.18,
    noise_std_m=5.0,
    num_hotspots=6,
    seed=29,
)


def generate_dataset(config: SyntheticConfig) -> TrajectoryDataset:
    """Generate a synthetic :class:`TrajectoryDataset` from ``config``.

    Each trajectory is a correlated random walk: the heading evolves as a
    bounded random walk (small ``turn_std`` means smooth paths), the speed is
    an AR(1) process around the regime's mean speed, and i.i.d. GPS noise is
    added to the resulting positions.  All trajectories share timestamp 0 as
    their start so that per-timestamp slices contain many concurrent points,
    matching the alignment used by the paper's online algorithms.
    """
    rng = np.random.default_rng(config.seed)
    hotspots = _hotspots(rng, config)
    trajectories = []
    for traj_id in range(config.num_trajectories):
        length = int(rng.integers(config.min_length, config.max_length + 1))
        regime = config.speed_mix[int(rng.integers(len(config.speed_mix)))]
        points = _correlated_walk(rng, config, hotspots, length, regime)
        trajectories.append(Trajectory(traj_id=traj_id, points=points))
    return TrajectoryDataset(trajectories)


def generate_porto_like(num_trajectories: int = 200, max_length: int = 300,
                        seed: int = 13) -> TrajectoryDataset:
    """Porto-like workload (dense urban taxi traces)."""
    config = SyntheticConfig(
        **{**PORTO_LIKE.__dict__,
           "num_trajectories": num_trajectories,
           "max_length": max_length,
           "seed": seed}
    )
    return generate_dataset(config)


def generate_geolife_like(num_trajectories: int = 80, max_length: int = 900,
                          seed: int = 29) -> TrajectoryDataset:
    """GeoLife-like workload (multi-modal, large spatial span)."""
    config = SyntheticConfig(
        **{**GEOLIFE_LIKE.__dict__,
           "num_trajectories": num_trajectories,
           "max_length": max_length,
           "seed": seed}
    )
    return generate_dataset(config)


# --------------------------------------------------------------------------- #
# internals
# --------------------------------------------------------------------------- #
def _hotspots(rng: np.random.Generator, config: SyntheticConfig) -> np.ndarray:
    """Cluster centres from which trajectories depart."""
    cx, cy = config.center
    offsets = rng.uniform(-config.extent, config.extent, size=(config.num_hotspots, 2))
    return np.asarray([cx, cy]) + offsets * 0.8


def _correlated_walk(rng: np.random.Generator, config: SyntheticConfig,
                     hotspots: np.ndarray, length: int, regime: float) -> np.ndarray:
    """Generate one smooth trajectory of ``length`` points."""
    step_degrees = (
        config.mean_speed_mps * regime * config.sampling_interval_s / DEGREE_TO_METERS
    )
    noise_degrees = config.noise_std_m / DEGREE_TO_METERS

    start = hotspots[int(rng.integers(len(hotspots)))]
    start = start + rng.normal(scale=config.extent * 0.05, size=2)

    heading = rng.uniform(0.0, 2.0 * np.pi)
    speed_factor = 1.0
    cx, cy = config.center

    points = np.empty((length, 2), dtype=float)
    position = np.array(start, dtype=float)
    for i in range(length):
        points[i] = position
        heading += rng.normal(scale=config.turn_std)
        # AR(1) speed fluctuation keeps consecutive displacements correlated.
        speed_factor = 0.9 * speed_factor + 0.1 + rng.normal(scale=0.05)
        speed_factor = float(np.clip(speed_factor, 0.2, 2.5))
        step = step_degrees * speed_factor
        position = position + step * np.array([np.cos(heading), np.sin(heading)])
        # Soft pull back towards the region centre so trajectories stay in
        # a realistic extent instead of drifting unboundedly.
        position[0] += 0.002 * (cx - position[0])
        position[1] += 0.002 * (cy - position[1])
    points += rng.normal(scale=noise_degrees, size=points.shape)
    return points

"""Trajectory data model, synthetic workload generators and loaders.

The quantizers in :mod:`repro.core` consume a :class:`TrajectoryDataset` --
a collection of timestamp-aligned trajectories exposing per-timestamp slices
(the set of points of all trajectories active at time ``t``), which is the
unit the paper's online algorithms operate on.
"""

from repro.data.trajectory import Trajectory, TrajectoryDataset, TimeSlice
from repro.data.synthetic import (
    SyntheticConfig,
    generate_geolife_like,
    generate_porto_like,
    generate_dataset,
)
from repro.data.loaders import load_plt_directory, load_porto_csv
from repro.data.subporto import build_sub_porto

__all__ = [
    "Trajectory",
    "TrajectoryDataset",
    "TimeSlice",
    "SyntheticConfig",
    "generate_porto_like",
    "generate_geolife_like",
    "generate_dataset",
    "load_porto_csv",
    "load_plt_directory",
    "build_sub_porto",
]

"""Core data model: trajectories and timestamp-aligned datasets.

The paper's online algorithms (Algorithm 1, 3, 4) consume the data one
*timestamp* at a time: at step ``t`` they see the set of points ``{T_i^t}`` of
every trajectory that is active at ``t``.  :class:`TrajectoryDataset` stores a
set of :class:`Trajectory` objects and serves those per-timestamp
:class:`TimeSlice` views efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.validation import ensure_points_array


@dataclass
class Trajectory:
    """A single trajectory: a time-ordered sequence of 2-D positions.

    Attributes
    ----------
    traj_id:
        Integer identifier, unique within a dataset.
    points:
        Array of shape ``(n, 2)`` with ``(x, y)`` coordinates.
    timestamps:
        Array of shape ``(n,)`` of non-decreasing integer timestamps.  If not
        supplied, timestamps ``0..n-1`` are assumed (regular sampling), which
        matches how the paper aligns points across trajectories.
    """

    traj_id: int
    points: np.ndarray
    timestamps: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.points = ensure_points_array(self.points, name="points", allow_empty=True)
        if self.timestamps is None:
            self.timestamps = np.arange(len(self.points), dtype=np.int64)
        else:
            self.timestamps = np.asarray(self.timestamps, dtype=np.int64)
        if len(self.timestamps) != len(self.points):
            raise ValueError(
                f"trajectory {self.traj_id}: {len(self.points)} points but "
                f"{len(self.timestamps)} timestamps"
            )
        if len(self.timestamps) > 1 and np.any(np.diff(self.timestamps) < 0):
            raise ValueError(f"trajectory {self.traj_id}: timestamps must be non-decreasing")

    def __len__(self) -> int:
        return len(self.points)

    def point_at(self, t: int) -> np.ndarray | None:
        """Return the position at timestamp ``t`` or ``None`` if absent."""
        idx = np.searchsorted(self.timestamps, t)
        if idx < len(self.timestamps) and self.timestamps[idx] == t:
            return self.points[idx]
        return None

    def segment(self, t_start: int, t_end: int) -> np.ndarray:
        """Points with timestamps in the closed interval ``[t_start, t_end]``."""
        mask = (self.timestamps >= t_start) & (self.timestamps <= t_end)
        return self.points[mask]

    @property
    def duration(self) -> int:
        """Span between the first and last timestamp."""
        if len(self.timestamps) == 0:
            return 0
        return int(self.timestamps[-1] - self.timestamps[0])

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``."""
        return (
            float(self.points[:, 0].min()),
            float(self.points[:, 1].min()),
            float(self.points[:, 0].max()),
            float(self.points[:, 1].max()),
        )


@dataclass(frozen=True)
class TimeSlice:
    """All trajectory points observed at one timestamp.

    Attributes
    ----------
    t:
        The timestamp.
    traj_ids:
        Integer array of shape ``(m,)`` -- which trajectories are active.
    points:
        Float array of shape ``(m, 2)`` -- their positions, row-aligned with
        ``traj_ids``.
    """

    t: int
    traj_ids: np.ndarray
    points: np.ndarray

    def __len__(self) -> int:
        return len(self.traj_ids)


class TrajectoryDataset:
    """A collection of trajectories indexed both by ID and by timestamp.

    The dataset pre-computes, for every trajectory, the offset of each
    timestamp so that :meth:`time_slice` and :meth:`iter_time_slices` run in
    time proportional to the number of active trajectories, not the dataset
    size.  This mirrors the streaming access pattern of the paper: points
    arrive timestamp by timestamp.
    """

    def __init__(self, trajectories: Iterable[Trajectory]) -> None:
        self._trajectories: dict[int, Trajectory] = {}
        for traj in trajectories:
            if traj.traj_id in self._trajectories:
                raise ValueError(f"duplicate trajectory id {traj.traj_id}")
            self._trajectories[traj.traj_id] = traj
        self._build_time_index()

    def _build_time_index(self) -> None:
        """Map every timestamp to the (traj_id, row) pairs active at it."""
        index: dict[int, list[tuple[int, int]]] = {}
        for traj_id, traj in self._trajectories.items():
            for row, t in enumerate(traj.timestamps):
                index.setdefault(int(t), []).append((traj_id, row))
        self._time_index = index
        self._timestamps = sorted(index)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(cls, arrays: Sequence[np.ndarray]) -> "TrajectoryDataset":
        """Build a dataset from a sequence of ``(n_i, 2)`` coordinate arrays.

        Timestamps are assigned ``0..n_i-1`` per trajectory, i.e. all
        trajectories are assumed to start simultaneously with regular
        sampling -- the alignment used throughout the paper's experiments.
        """
        return cls(Trajectory(traj_id=i, points=arr) for i, arr in enumerate(arrays))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajectories.values())

    def __contains__(self, traj_id: int) -> bool:
        return traj_id in self._trajectories

    def get(self, traj_id: int) -> Trajectory:
        """Return the trajectory with the given id (raises ``KeyError``)."""
        return self._trajectories[traj_id]

    @property
    def trajectory_ids(self) -> list[int]:
        """Sorted list of trajectory identifiers."""
        return sorted(self._trajectories)

    @property
    def timestamps(self) -> list[int]:
        """Sorted list of timestamps at which at least one point exists."""
        return list(self._timestamps)

    @property
    def num_points(self) -> int:
        """Total number of trajectory points in the dataset."""
        return sum(len(traj) for traj in self._trajectories.values())

    @property
    def max_length(self) -> int:
        """Length of the longest trajectory."""
        if not self._trajectories:
            return 0
        return max(len(traj) for traj in self._trajectories.values())

    def bounding_box(self) -> tuple[float, float, float, float]:
        """Bounding box over all points of all trajectories."""
        boxes = [traj.bounding_box() for traj in self._trajectories.values() if len(traj)]
        if not boxes:
            raise ValueError("dataset contains no points")
        arr = np.asarray(boxes)
        return (
            float(arr[:, 0].min()),
            float(arr[:, 1].min()),
            float(arr[:, 2].max()),
            float(arr[:, 3].max()),
        )

    # ------------------------------------------------------------------ #
    # Time-sliced access (the unit of the online algorithms)
    # ------------------------------------------------------------------ #
    def time_slice(self, t: int) -> TimeSlice:
        """Return the :class:`TimeSlice` of all points at timestamp ``t``."""
        entries = self._time_index.get(int(t), [])
        if not entries:
            return TimeSlice(t=int(t), traj_ids=np.empty(0, dtype=np.int64),
                             points=np.empty((0, 2), dtype=float))
        traj_ids = np.fromiter((tid for tid, _ in entries), dtype=np.int64, count=len(entries))
        points = np.empty((len(entries), 2), dtype=float)
        for row, (tid, offset) in enumerate(entries):
            points[row] = self._trajectories[tid].points[offset]
        return TimeSlice(t=int(t), traj_ids=traj_ids, points=points)

    def iter_time_slices(self, t_max: int | None = None) -> Iterator[TimeSlice]:
        """Yield time slices in increasing timestamp order.

        Parameters
        ----------
        t_max:
            If given, stop after timestamp ``t_max`` (inclusive).  Benchmarks
            use this to bound experiment duration.
        """
        for t in self._timestamps:
            if t_max is not None and t > t_max:
                break
            yield self.time_slice(t)

    def restrict(self, traj_ids: Iterable[int]) -> "TrajectoryDataset":
        """New dataset containing only the given trajectory ids."""
        wanted = set(traj_ids)
        return TrajectoryDataset(
            traj for tid, traj in self._trajectories.items() if tid in wanted
        )

    def truncate(self, max_timestamp: int) -> "TrajectoryDataset":
        """New dataset with every trajectory cut at ``max_timestamp``."""
        truncated = []
        for traj in self._trajectories.values():
            mask = traj.timestamps <= max_timestamp
            if not np.any(mask):
                continue
            truncated.append(
                Trajectory(
                    traj_id=traj.traj_id,
                    points=traj.points[mask],
                    timestamps=traj.timestamps[mask],
                )
            )
        return TrajectoryDataset(truncated)

"""Construction of the sub-Porto dataset used for the REST comparison.

REST (Zhao et al., KDD'18) compresses a trajectory by matching it against a
reference set of sub-trajectories, so it only performs well when the data
contains highly repetitive patterns.  Section 6.1 of the paper therefore
builds a dedicated dataset: base trajectories are sampled from Porto and each
is expanded into four additional similar trajectories by down-sampling and
adding noise.  A small fraction of the resulting pool is compressed while the
remainder is used to build REST's reference set.

:func:`build_sub_porto` reproduces that construction for any input dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.utils.geo import DEGREE_TO_METERS


@dataclass(frozen=True)
class SubPortoSplit:
    """Result of the sub-Porto construction.

    Attributes
    ----------
    compress_set:
        Trajectories to be compressed (the query side of the REST experiment).
    reference_set:
        Trajectories from which REST builds its reference sub-trajectories.
    """

    compress_set: TrajectoryDataset
    reference_set: TrajectoryDataset


def build_sub_porto(dataset: TrajectoryDataset,
                    num_base: int = 200,
                    variants_per_base: int = 4,
                    compress_fraction: float = 0.02,
                    downsample_step: int = 2,
                    noise_std_m: float = 10.0,
                    seed: int = 101) -> SubPortoSplit:
    """Derive a REST-friendly dataset of near-duplicate trajectories.

    Parameters
    ----------
    dataset:
        Source dataset (Porto or Porto-like synthetic data).
    num_base:
        Number of base trajectories sampled from ``dataset``.
    variants_per_base:
        Number of additional similar trajectories derived from each base one
        (the paper uses four).
    compress_fraction:
        Fraction of the resulting pool that becomes the compress set
        (the paper uses 2 000 out of 100 000 trajectories, i.e. 2 %).
    downsample_step:
        Variants keep every ``downsample_step``-th point before noise.
    noise_std_m:
        Standard deviation of the additive noise, in metres.
    seed:
        Random seed for reproducibility.
    """
    if num_base <= 0:
        raise ValueError("num_base must be positive")
    if variants_per_base < 0:
        raise ValueError("variants_per_base must be non-negative")
    rng = np.random.default_rng(seed)
    source_ids = dataset.trajectory_ids
    if not source_ids:
        raise ValueError("source dataset is empty")
    chosen = rng.choice(source_ids, size=min(num_base, len(source_ids)), replace=False)

    noise_deg = noise_std_m / DEGREE_TO_METERS
    pool: list[Trajectory] = []
    next_id = 0
    for traj_id in chosen:
        base = dataset.get(int(traj_id))
        pool.append(Trajectory(traj_id=next_id, points=base.points.copy()))
        next_id += 1
        for _ in range(variants_per_base):
            variant = _derive_variant(rng, base.points, downsample_step, noise_deg)
            if len(variant) < 2:
                continue
            pool.append(Trajectory(traj_id=next_id, points=variant))
            next_id += 1

    num_compress = max(1, int(round(len(pool) * compress_fraction)))
    indices = rng.permutation(len(pool))
    compress_idx = set(indices[:num_compress].tolist())
    compress = [traj for i, traj in enumerate(pool) if i in compress_idx]
    reference = [traj for i, traj in enumerate(pool) if i not in compress_idx]
    return SubPortoSplit(
        compress_set=TrajectoryDataset(compress),
        reference_set=TrajectoryDataset(reference),
    )


def _derive_variant(rng: np.random.Generator, points: np.ndarray,
                    downsample_step: int, noise_deg: float) -> np.ndarray:
    """Down-sample a trajectory and perturb it with Gaussian noise."""
    step = max(1, int(downsample_step))
    sampled = points[::step].copy()
    sampled += rng.normal(scale=noise_deg, size=sampled.shape)
    return sampled

"""Partitioning of trajectory points for grouped modelling (Section 3.2).

Two criteria are supported:

* **spatial proximity** (PPQ-S): every point must lie within ``epsilon_p`` of
  its partition's spatial centroid (Equation 7);
* **autocorrelation similarity** (PPQ-A): every point's AR(k) coefficient
  vector must lie within ``epsilon_p`` of its partition's coefficient centroid
  (Equation 8).

Partitioning from scratch repeatedly increases the number of clusters ``q``
(by ``partition_growth`` per round) until the chosen criterion is satisfied,
giving the O(q·m·N·l) cost of Lemma 1.  The incremental temporal partitioner
(Section 3.2.2) carries assignments over from the previous timestamp,
re-splits only the partitions that violate the threshold, and merges partition
pairs whose centroids are within ``epsilon_p`` (at most one merge per
partition per step), giving the O(q'·m'·N'·l + q'·q) cost of Lemma 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PPQConfig
from repro.core.quantizer import kmeans


@dataclass
class Partition:
    """One partition of trajectory points.

    Attributes
    ----------
    members:
        Trajectory IDs assigned to this partition.
    spatial_centroid:
        Mean position of the member points at the last update.
    feature_centroid:
        Mean feature vector (positions for the spatial criterion, AR
        coefficients for the autocorrelation criterion).
    merged_once:
        Whether this partition has already absorbed another partition at the
        current timestamp (the paper allows at most one merge per step).
    """

    members: set[int] = field(default_factory=set)
    spatial_centroid: np.ndarray | None = None
    feature_centroid: np.ndarray | None = None
    merged_once: bool = False

    def __len__(self) -> int:
        return len(self.members)


def partition_points(features: np.ndarray, epsilon_p: float,
                     growth: int = 2, kmeans_iterations: int = 8,
                     max_partitions: int = 256, seed: int = 0,
                     ) -> tuple[np.ndarray, np.ndarray, int]:
    """Partition feature vectors until the centroid-deviation bound holds.

    Implements the from-scratch partitioning of Section 3.2.1: the number of
    clusters grows by ``growth`` per round until every vector lies within
    ``epsilon_p`` of its cluster centroid (or ``max_partitions`` is reached).

    Parameters
    ----------
    features:
        ``(n, d)`` array: positions (spatial criterion) or AR coefficients
        (autocorrelation criterion).
    epsilon_p:
        The partition threshold of Equations 7/8.

    Returns
    -------
    (labels, centroids, rounds):
        Cluster label per vector, cluster centroids and the number of rounds
        ``m`` needed (used by the efficiency experiments).
    """
    features = np.asarray(features, dtype=float)
    n = len(features)
    if n == 0:
        width = features.shape[1] if features.ndim == 2 else 2
        return np.empty(0, dtype=np.int64), np.empty((0, width)), 0
    growth = max(1, int(growth))
    q = 1
    rounds = 0
    labels = np.zeros(n, dtype=np.int64)
    centroids = features.mean(axis=0, keepdims=True)
    while True:
        rounds += 1
        centroids, labels = kmeans(features, q, iterations=kmeans_iterations, seed=seed + rounds)
        deviations = np.linalg.norm(features - centroids[labels], axis=1)
        if np.all(deviations <= epsilon_p) or q >= min(n, max_partitions):
            return labels, centroids, rounds
        q = min(min(n, max_partitions), q + growth)


class IncrementalPartitioner:
    """Maintains the partitioning N^t across timestamps (Section 3.2.2).

    The partitioner stores, per trajectory ID, the partition it belongs to.
    At each :meth:`update` call with the points (and features) of the current
    timestamp it

    1. keeps every point in the partition of its trajectory at ``t-1``
       (new trajectories start unassigned);
    2. re-partitions the member sets of partitions that violate the
       ``epsilon_p`` bound, and clusters unassigned points into new
       partitions;
    3. merges partitions whose centroids are within ``epsilon_p`` of each
       other, each partition participating in at most one merge.

    The number of partitions is capped by ``config.max_partitions``.
    """

    def __init__(self, config: PPQConfig) -> None:
        self.config = config
        self._partitions: dict[int, Partition] = {}
        self._assignment: dict[int, int] = {}
        self._next_partition_id = 0
        #: Statistics for the efficiency experiments (Figure 7 / 8).
        self.stats = {"updates": 0, "resplits": 0, "merges": 0, "new_partitions": 0}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def num_partitions(self) -> int:
        """Current number of partitions ``q``."""
        return len(self._partitions)

    def partition_of(self, traj_id: int) -> int | None:
        """Partition ID a trajectory is currently assigned to, if any."""
        return self._assignment.get(traj_id)

    def update(self, traj_ids: np.ndarray, features: np.ndarray) -> dict[int, np.ndarray]:
        """Advance the partitioning to the current timestamp.

        Parameters
        ----------
        traj_ids:
            ``(n,)`` trajectory IDs active at this timestamp.
        features:
            ``(n, d)`` feature vectors (positions or AR coefficients) aligned
            with ``traj_ids``.

        Returns
        -------
        dict
            Mapping partition ID -> array of row indices (into ``traj_ids``)
            of the points assigned to that partition.
        """
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        features = np.asarray(features, dtype=float)
        if len(traj_ids) != len(features):
            raise ValueError("traj_ids and features must be aligned")
        self.stats["updates"] += 1
        eps = self.config.epsilon_p

        if not self._partitions:
            groups = self._initial_partition(traj_ids, features)
        else:
            groups = self._carry_over(traj_ids, features)
            groups = self._resplit_violating(groups, traj_ids, features, eps)
            self._merge_close(eps)
            groups = self._regroup(traj_ids)
        self._refresh_centroids(groups, features)
        return groups

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _new_partition(self) -> int:
        pid = self._next_partition_id
        self._next_partition_id += 1
        self._partitions[pid] = Partition()
        self.stats["new_partitions"] += 1
        return pid

    def _initial_partition(self, traj_ids: np.ndarray,
                           features: np.ndarray) -> dict[int, np.ndarray]:
        labels, _centroids, _rounds = partition_points(
            features, self.config.epsilon_p,
            growth=self.config.partition_growth,
            kmeans_iterations=self.config.kmeans_iterations,
            max_partitions=self.config.max_partitions,
            seed=self.config.seed,
        )
        groups: dict[int, np.ndarray] = {}
        for label in np.unique(labels):
            pid = self._new_partition()
            rows = np.flatnonzero(labels == label)
            groups[pid] = rows
            for row in rows:
                tid = int(traj_ids[row])
                self._partitions[pid].members.add(tid)
                self._assignment[tid] = pid
        return groups

    def _carry_over(self, traj_ids: np.ndarray,
                    features: np.ndarray) -> dict[int, np.ndarray]:
        """Step 1: keep each point in its previous partition; cluster new ones."""
        rows_by_pid: dict[int, list[int]] = {}
        unassigned: list[int] = []
        for row, tid in enumerate(traj_ids):
            pid = self._assignment.get(int(tid))
            if pid is None or pid not in self._partitions:
                unassigned.append(row)
            else:
                rows_by_pid.setdefault(pid, []).append(row)
        if unassigned:
            rows = np.asarray(unassigned, dtype=np.int64)
            labels, _c, _r = partition_points(
                features[rows], self.config.epsilon_p,
                growth=self.config.partition_growth,
                kmeans_iterations=self.config.kmeans_iterations,
                max_partitions=self.config.max_partitions,
                seed=self.config.seed + 17,
            )
            for label in np.unique(labels):
                pid = self._new_partition()
                for row in rows[labels == label]:
                    tid = int(traj_ids[row])
                    self._partitions[pid].members.add(tid)
                    self._assignment[tid] = pid
                    rows_by_pid.setdefault(pid, []).append(int(row))
        return {pid: np.asarray(rows, dtype=np.int64) for pid, rows in rows_by_pid.items()}

    def _resplit_violating(self, groups: dict[int, np.ndarray], traj_ids: np.ndarray,
                           features: np.ndarray, eps: float) -> dict[int, np.ndarray]:
        """Step 2: re-partition groups whose members exceed the threshold."""
        result: dict[int, np.ndarray] = {}
        for pid, rows in groups.items():
            if len(rows) == 0:
                continue
            member_features = features[rows]
            centroid = member_features.mean(axis=0)
            deviations = np.linalg.norm(member_features - centroid, axis=1)
            if np.all(deviations <= eps) or len(rows) == 1:
                result[pid] = rows
                continue
            self.stats["resplits"] += 1
            labels, _c, _r = partition_points(
                member_features, eps,
                growth=self.config.partition_growth,
                kmeans_iterations=self.config.kmeans_iterations,
                max_partitions=self.config.max_partitions,
                seed=self.config.seed + 31,
            )
            unique = np.unique(labels)
            # The first sub-group keeps the original partition id, the rest
            # become fresh partitions.
            for j, label in enumerate(unique):
                sub_rows = rows[labels == label]
                target_pid = pid if j == 0 else self._new_partition()
                result[target_pid] = sub_rows
                for row in sub_rows:
                    tid = int(traj_ids[row])
                    self._assignment[tid] = target_pid
                    self._partitions[target_pid].members.add(tid)
            # Rebuild the membership of the original partition from scratch.
            self._partitions[pid].members = {
                int(traj_ids[row]) for row in result.get(pid, np.empty(0, dtype=np.int64))
            }
        return result

    def _merge_close(self, eps: float) -> None:
        """Step 3: merge partitions with close centroids (one merge each)."""
        pids = [pid for pid, part in self._partitions.items() if part.feature_centroid is not None]
        for part in self._partitions.values():
            part.merged_once = False
        merged_away: set[int] = set()
        for i, pid_a in enumerate(pids):
            if pid_a in merged_away:
                continue
            part_a = self._partitions[pid_a]
            if part_a.merged_once or part_a.feature_centroid is None:
                continue
            for pid_b in pids[i + 1:]:
                if pid_b in merged_away:
                    continue
                part_b = self._partitions[pid_b]
                if part_b.merged_once or part_b.feature_centroid is None:
                    continue
                distance = float(np.linalg.norm(part_a.feature_centroid - part_b.feature_centroid))
                if distance <= eps:
                    # Merge b into a.
                    for tid in part_b.members:
                        self._assignment[tid] = pid_a
                    part_a.members |= part_b.members
                    part_a.merged_once = True
                    merged_away.add(pid_b)
                    self.stats["merges"] += 1
                    break
        for pid in merged_away:
            del self._partitions[pid]

    def _regroup(self, traj_ids: np.ndarray) -> dict[int, np.ndarray]:
        """Recompute row groups after merging."""
        groups: dict[int, list[int]] = {}
        for row, tid in enumerate(traj_ids):
            pid = self._assignment.get(int(tid))
            if pid is not None and pid in self._partitions:
                groups.setdefault(pid, []).append(row)
        return {pid: np.asarray(rows, dtype=np.int64) for pid, rows in groups.items()}

    def _refresh_centroids(self, groups: dict[int, np.ndarray], features: np.ndarray) -> None:
        for pid, rows in groups.items():
            if len(rows) == 0:
                continue
            centroid = features[rows].mean(axis=0)
            part = self._partitions[pid]
            part.feature_centroid = centroid
            part.spatial_centroid = centroid[:2] if centroid.shape[0] >= 2 else centroid

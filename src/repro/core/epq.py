"""E-PQ: error-bounded predictive quantization without partitioning.

Algorithm 1 of the paper applied with a single, global prediction model
(``q = 1``).  Used both as an ablation baseline in the experiments and as the
building block that PPQ applies per partition.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CQCConfig, PPQConfig
from repro.core.partitioning import IncrementalPartitioner
from repro.core.ppq import PartitionwisePredictiveQuantizer


class ErrorBoundedPredictiveQuantizer(PartitionwisePredictiveQuantizer):
    """Single-partition predictive quantizer (the paper's E-PQ baseline).

    Behaves exactly like :class:`PartitionwisePredictiveQuantizer` but keeps
    all trajectory points in one partition with one shared predictor, so the
    ``epsilon_p`` / criterion parameters of the config are ignored.
    """

    def __init__(self, config: PPQConfig | None = None,
                 cqc_config: CQCConfig | None = None) -> None:
        super().__init__(config=config, cqc_config=cqc_config)

    def _build_partitioner(self) -> IncrementalPartitioner | None:
        # A ``None`` partitioner short-circuits partitioning: every slice is
        # a single group with partition id 0.
        return None

    def _partition_slice(self, partitioner, traj_ids: np.ndarray, points: np.ndarray,
                         histories) -> dict[int, np.ndarray]:
        return {0: np.arange(len(traj_ids), dtype=np.int64)}

"""The trajectory summary produced by (partition-wise) predictive quantization.

The summary is exactly the set of parameters the paper lists as sufficient to
reproduce any trajectory: the per-timestamp, per-partition prediction
coefficients ``P_j[t]``, the error-bounded codebook ``C``, the per-point
codeword indices ``b_i^t`` and (optionally) the per-point CQC codes.  The
reconstructed points themselves are *derivable* from these parameters, but the
summary also keeps them cached because the online quantizer needs the previous
``k`` reconstructions anyway and queries reuse them; the cache is excluded
from storage accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.core.codebook import Codebook
from repro.core.config import CQCConfig, PPQConfig
from repro.reliability import faults as _faults


class ReconstructionCache:
    """Bounded LRU cache for reconstructed timestamp slices.

    Batched queries touch the same timestamps over and over (every STRQ at
    ``t`` wants the reconstructions of every trajectory active at ``t``; a
    TPQ of length ``l`` wants ``l`` consecutive slices).  Caching whole
    slices amortises both the recursive prediction roll-forward and the CQC
    offset decoding across all queries of a batch, while the LRU bound keeps
    memory proportional to the working set instead of the stream length.

    Attributes
    ----------
    capacity:
        Maximum number of slices kept; the least recently used slice is
        evicted first.  A capacity of zero (negative values are clamped to
        zero) disables the cache: lookups miss, stores are dropped, nothing
        is retained -- callers need no special casing and memory stays flat.
    hits, misses, evictions:
        Counters exposed for tests and benchmark reporting.  The summary's
        accessors count at point granularity (a hit means one reconstruction
        was served from cache), so reported hit rates reflect actual work
        saved.  Counters survive :meth:`clear` (and disablement), so
        ``hits + misses`` always equals the number of recorded lookups.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(0, int(capacity))
        self._entries: OrderedDict[tuple[int, bool], dict[int, np.ndarray | None]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def disabled(self) -> bool:
        """True when the capacity is zero (every lookup misses)."""
        return self.capacity == 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[int, bool]) -> bool:
        return key in self._entries

    def get(self, key: tuple[int, bool],
            record: bool = True) -> dict[int, np.ndarray | None] | None:
        """Return the cached slice for ``key`` or ``None``, updating recency.

        ``record=False`` skips the hit/miss counters (used by accessors that
        count at point granularity instead).
        """
        entry = self._entries.get(key)
        if entry is None:
            if record:
                self.misses += 1
            return None
        self._entries.move_to_end(key)
        if record:
            self.hits += 1
        return entry

    def put(self, key: tuple[int, bool], value: dict[int, np.ndarray | None]) -> None:
        """Store a slice, evicting the least recently used one when full.

        A disabled cache (capacity 0) drops the value without storing it --
        and without counting an eviction, since nothing cached was displaced.
        """
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached slice (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counters as a plain dict (for logging / benchmark tables)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class TimestepRecord:
    """Everything the summary stores for one timestamp.

    Attributes
    ----------
    t:
        The timestamp.
    coefficients:
        Mapping partition ID -> prediction coefficient vector ``P_1..P_k``.
    partition_of:
        Mapping trajectory ID -> partition ID at this timestamp.
    codeword_index:
        Mapping trajectory ID -> index of the codeword representing the
        prediction error of this trajectory's point.
    cqc_codes:
        Mapping trajectory ID -> CQC bit string (empty when CQC is disabled).
    """

    t: int
    coefficients: dict[int, np.ndarray] = field(default_factory=dict)
    partition_of: dict[int, int] = field(default_factory=dict)
    codeword_index: dict[int, int] = field(default_factory=dict)
    cqc_codes: dict[int, str] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        """Number of trajectory points summarised at this timestamp."""
        return len(self.codeword_index)

    @property
    def num_partitions(self) -> int:
        """Number of partitions active at this timestamp."""
        return len(self.coefficients)


@dataclass
class SummaryStorage:
    """Bit-exact storage breakdown of a summary (used for compression ratio).

    All fields are in bits; :attr:`total_bits` and :attr:`total_bytes` sum
    them up.
    """

    codebook_bits: int = 0
    codeword_index_bits: int = 0
    coefficient_bits: int = 0
    partition_assignment_bits: int = 0
    cqc_bits: int = 0

    @property
    def total_bits(self) -> int:
        return (self.codebook_bits + self.codeword_index_bits + self.coefficient_bits
                + self.partition_assignment_bits + self.cqc_bits)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


class TrajectorySummary:
    """Summary of a trajectory repository built by E-PQ / PPQ.

    Parameters
    ----------
    config:
        The quantizer configuration used to build the summary.
    cqc_config:
        CQC configuration; when ``enabled`` is ``False`` codes are not stored.
    codebook:
        The shared error-bounded codebook.
    cqc_coder:
        The coordinate-quadtree coder used to decode CQC codes (``None`` when
        CQC is disabled).  Only the fixed template parameters of the coder
        matter for storage, not per-point state.
    slice_cache_capacity:
        Bound of the LRU slice cache shared by the batched query path;
        ``0`` (or any negative value) disables caching entirely -- results
        are unchanged, every lookup just recomputes.
    """

    def __init__(self, config: PPQConfig, cqc_config: CQCConfig,
                 codebook: Codebook, cqc_coder=None,
                 slice_cache_capacity: int = 256) -> None:
        self.config = config
        self.cqc_config = cqc_config
        self.codebook = codebook
        self.cqc_coder = cqc_coder
        self.records: dict[int, TimestepRecord] = {}
        # Reconstruction cache: traj_id -> {t: reconstructed point (without
        # CQC refinement)}.  Derivable from the summary, so not charged to
        # storage.
        self._reconstructions: dict[int, dict[int, np.ndarray]] = {}
        # LRU cache of fully refined per-timestamp slices, shared by the
        # batched query path (also derivable, so not charged to storage).
        self.slice_cache = ReconstructionCache(capacity=slice_cache_capacity)

    # ------------------------------------------------------------------ #
    # population (called by the quantizers)
    # ------------------------------------------------------------------ #
    def add_record(self, record: TimestepRecord) -> None:
        """Store the record of one timestamp.

        Any cached slices are invalidated: a new record can change which
        trajectories are active (and their reconstructions) at ``record.t``.
        """
        self.records[record.t] = record
        self.slice_cache.clear()

    def cache_reconstruction(self, traj_id: int, t: int, point: np.ndarray) -> None:
        """Cache the ε₁-bounded reconstruction of one point."""
        self._reconstructions.setdefault(int(traj_id), {})[int(t)] = np.asarray(point, dtype=float)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def timestamps(self) -> list[int]:
        """Sorted list of summarised timestamps."""
        return sorted(self.records)

    @property
    def num_points(self) -> int:
        """Total number of summarised trajectory points."""
        return sum(record.num_points for record in self.records.values())

    @property
    def num_codewords(self) -> int:
        """Size of the shared codebook."""
        return len(self.codebook)

    def trajectories_at(self, t: int) -> list[int]:
        """Trajectory IDs summarised at timestamp ``t``."""
        record = self.records.get(int(t))
        return sorted(record.codeword_index) if record else []

    def max_partitions(self) -> int:
        """Largest number of partitions used at any timestamp."""
        if not self.records:
            return 0
        return max(record.num_partitions for record in self.records.values())

    # ------------------------------------------------------------------ #
    # reconstruction
    # ------------------------------------------------------------------ #
    def reconstruct_point(self, traj_id: int, t: int, use_cqc: bool = True) -> np.ndarray | None:
        """Reconstruct the position of ``traj_id`` at ``t`` from the summary.

        Returns the CQC-refined point ``(x̂', ŷ')`` when ``use_cqc`` is true
        and a CQC code was stored, otherwise the ε₁-bounded reconstruction
        ``(x̂, ŷ)``.  ``None`` when the trajectory was not summarised at ``t``.
        """
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.check("summary.reconstruct", key=(int(traj_id), int(t)))
        base = self._base_reconstruction(int(traj_id), int(t))
        if base is None:
            return None
        if not use_cqc or self.cqc_coder is None:
            return base
        record = self.records.get(int(t))
        if record is None:
            return base
        code = record.cqc_codes.get(int(traj_id))
        if not code:
            return base
        offset = self.cqc_coder.decode_offset(code)
        return base + offset

    def reconstruct_path(self, traj_id: int, t_start: int, length: int,
                         use_cqc: bool = True, cached: bool = False) -> np.ndarray:
        """Reconstruct up to ``length`` consecutive points starting at ``t_start``.

        Missing timestamps terminate the path early; the result has shape
        ``(m, 2)`` with ``m <= length``.  With ``cached=True`` the points are
        served through the LRU slice cache (used by batched TPQs, where path
        windows of different queries overlap); results are identical either
        way.
        """
        getter = self.reconstruct_point_cached if cached else self.reconstruct_point
        points = []
        for t in range(int(t_start), int(t_start) + int(length)):
            point = getter(traj_id, t, use_cqc=use_cqc)
            if point is None:
                break
            points.append(point)
        if not points:
            return np.empty((0, 2), dtype=float)
        return np.vstack(points)

    def reconstruct_point_cached(self, traj_id: int, t: int,
                                 use_cqc: bool = True) -> np.ndarray | None:
        """Like :meth:`reconstruct_point`, served from the LRU slice cache.

        The cache groups refined reconstructions by timestamp, so any batch
        of queries touching the same ``(traj_id, t)`` pair -- different
        STRQs sharing candidates, overlapping TPQ path windows, exact-match
        pre-filters -- pays the prediction roll-forward and CQC decoding
        once.  Absent pairs are cached negatively, which keeps repeated path
        probes past a trajectory's end cheap.  Returned arrays are shared
        with the cache: treat them as read-only.
        """
        entry = self._slice_entry(int(t), bool(use_cqc))
        traj_id = int(traj_id)
        if traj_id in entry:
            self.slice_cache.hits += 1
            return entry[traj_id]
        self.slice_cache.misses += 1
        point = self.reconstruct_point(traj_id, int(t), use_cqc=use_cqc)
        entry[traj_id] = point
        return point

    def reconstruct_slice(self, t: int, use_cqc: bool = True) -> dict[int, np.ndarray]:
        """Reconstruct every trajectory active at ``t``, with LRU caching.

        Returns a mapping trajectory ID -> reconstructed position, identical
        point-for-point to calling :meth:`reconstruct_point` for each ID in
        :meth:`trajectories_at`.  The underlying per-timestamp cache entry is
        shared with :meth:`reconstruct_point_cached`, so slices already
        touched by batched queries complete in cache hits (and vice versa).
        """
        entry = self._slice_entry(int(t), bool(use_cqc))
        for traj_id in self.trajectories_at(t):
            if traj_id in entry:
                self.slice_cache.hits += 1
            else:
                self.slice_cache.misses += 1
                entry[traj_id] = self.reconstruct_point(traj_id, int(t), use_cqc=use_cqc)
        return {tid: point for tid, point in entry.items() if point is not None}

    def _slice_entry(self, t: int, use_cqc: bool) -> dict[int, np.ndarray | None]:
        """The (lazily filled) cache entry for one ``(t, use_cqc)`` key.

        Hit/miss counters are the caller's job: they track whether individual
        *points* were served from cache, not whether the entry dict existed.
        """
        key = (t, use_cqc)
        entry = self.slice_cache.get(key, record=False)
        if entry is None:
            entry = {}
            self.slice_cache.put(key, entry)
        return entry

    def _base_reconstruction(self, traj_id: int, t: int) -> np.ndarray | None:
        """The ε₁-bounded reconstruction, from cache or recomputed on demand."""
        cached = self._reconstructions.get(traj_id, {}).get(t)
        if cached is not None:
            return cached
        record = self.records.get(t)
        if record is None or traj_id not in record.codeword_index:
            return None
        # Recompute: prediction from previous k reconstructions + codeword.
        order = self.config.prediction_order
        history = []
        for lag in range(1, order + 1):
            prev = self._base_reconstruction(traj_id, t - lag)
            history.append(prev)
        partition = record.partition_of.get(traj_id)
        coefficients = record.coefficients.get(partition)
        prediction = np.zeros(2, dtype=float)
        if coefficients is not None:
            filled = _fill_history(history)
            if filled is not None:
                prediction = np.einsum("k,kd->d", coefficients, filled)
        codeword = np.asarray(self.codebook[record.codeword_index[traj_id]], dtype=float)
        reconstruction = prediction + codeword
        self.cache_reconstruction(traj_id, t, reconstruction)
        return reconstruction

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def storage(self, coordinate_bytes: int = 8, coefficient_bytes: int = 8) -> SummaryStorage:
        """Bit-exact storage cost of the summary.

        Parameters
        ----------
        coordinate_bytes:
            Bytes per stored coordinate value (codewords).
        coefficient_bytes:
            Bytes per stored prediction coefficient.
        """
        storage = SummaryStorage()
        storage.codebook_bits = len(self.codebook) * 2 * coordinate_bytes * 8
        index_bits = self.codebook.index_bits()
        for record in self.records.values():
            storage.codeword_index_bits += record.num_points * index_bits
            storage.coefficient_bits += (
                record.num_partitions * self.config.prediction_order * coefficient_bytes * 8
            )
            if record.num_partitions > 1:
                assignment_bits = max(1, int(np.ceil(np.log2(record.num_partitions))))
                storage.partition_assignment_bits += record.num_points * assignment_bits
            storage.cqc_bits += sum(len(code) for code in record.cqc_codes.values())
        return storage

    def compression_ratio(self, coordinate_bytes: int = 8) -> float:
        """Raw size divided by summary size (higher is better)."""
        raw_bits = self.num_points * 2 * coordinate_bytes * 8
        summary_bits = self.storage(coordinate_bytes=coordinate_bytes).total_bits
        if summary_bits == 0:
            return float("inf")
        return raw_bits / summary_bits


def _fill_history(history: list[np.ndarray | None]) -> np.ndarray | None:
    """Pad a lag history (most recent first) so missing lags reuse older ones.

    Mirrors the padding used by the online quantizer: if a lag is missing the
    nearest available older/newer reconstruction is repeated; if no lag is
    available at all, ``None`` is returned (prediction falls back to zero).
    """
    available = [h for h in history if h is not None]
    if not available:
        return None
    filled = []
    last = available[0]
    for entry in history:
        if entry is not None:
            last = entry
        filled.append(last)
    return np.stack(filled, axis=0)

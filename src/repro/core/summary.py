"""The trajectory summary produced by (partition-wise) predictive quantization.

The summary is exactly the set of parameters the paper lists as sufficient to
reproduce any trajectory: the per-timestamp, per-partition prediction
coefficients ``P_j[t]``, the error-bounded codebook ``C``, the per-point
codeword indices ``b_i^t`` and (optionally) the per-point CQC codes.  The
reconstructed points themselves are *derivable* from these parameters, but the
summary also keeps them cached because the online quantizer needs the previous
``k`` reconstructions anyway and queries reuse them; the cache is excluded
from storage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.codebook import Codebook
from repro.core.config import CQCConfig, PPQConfig


@dataclass
class TimestepRecord:
    """Everything the summary stores for one timestamp.

    Attributes
    ----------
    t:
        The timestamp.
    coefficients:
        Mapping partition ID -> prediction coefficient vector ``P_1..P_k``.
    partition_of:
        Mapping trajectory ID -> partition ID at this timestamp.
    codeword_index:
        Mapping trajectory ID -> index of the codeword representing the
        prediction error of this trajectory's point.
    cqc_codes:
        Mapping trajectory ID -> CQC bit string (empty when CQC is disabled).
    """

    t: int
    coefficients: dict[int, np.ndarray] = field(default_factory=dict)
    partition_of: dict[int, int] = field(default_factory=dict)
    codeword_index: dict[int, int] = field(default_factory=dict)
    cqc_codes: dict[int, str] = field(default_factory=dict)

    @property
    def num_points(self) -> int:
        """Number of trajectory points summarised at this timestamp."""
        return len(self.codeword_index)

    @property
    def num_partitions(self) -> int:
        """Number of partitions active at this timestamp."""
        return len(self.coefficients)


@dataclass
class SummaryStorage:
    """Bit-exact storage breakdown of a summary (used for compression ratio).

    All fields are in bits; :attr:`total_bits` and :attr:`total_bytes` sum
    them up.
    """

    codebook_bits: int = 0
    codeword_index_bits: int = 0
    coefficient_bits: int = 0
    partition_assignment_bits: int = 0
    cqc_bits: int = 0

    @property
    def total_bits(self) -> int:
        return (self.codebook_bits + self.codeword_index_bits + self.coefficient_bits
                + self.partition_assignment_bits + self.cqc_bits)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


class TrajectorySummary:
    """Summary of a trajectory repository built by E-PQ / PPQ.

    Parameters
    ----------
    config:
        The quantizer configuration used to build the summary.
    cqc_config:
        CQC configuration; when ``enabled`` is ``False`` codes are not stored.
    codebook:
        The shared error-bounded codebook.
    cqc_coder:
        The coordinate-quadtree coder used to decode CQC codes (``None`` when
        CQC is disabled).  Only the fixed template parameters of the coder
        matter for storage, not per-point state.
    """

    def __init__(self, config: PPQConfig, cqc_config: CQCConfig,
                 codebook: Codebook, cqc_coder=None) -> None:
        self.config = config
        self.cqc_config = cqc_config
        self.codebook = codebook
        self.cqc_coder = cqc_coder
        self.records: dict[int, TimestepRecord] = {}
        # Reconstruction cache: traj_id -> {t: reconstructed point (without
        # CQC refinement)}.  Derivable from the summary, so not charged to
        # storage.
        self._reconstructions: dict[int, dict[int, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # population (called by the quantizers)
    # ------------------------------------------------------------------ #
    def add_record(self, record: TimestepRecord) -> None:
        """Store the record of one timestamp."""
        self.records[record.t] = record

    def cache_reconstruction(self, traj_id: int, t: int, point: np.ndarray) -> None:
        """Cache the ε₁-bounded reconstruction of one point."""
        self._reconstructions.setdefault(int(traj_id), {})[int(t)] = np.asarray(point, dtype=float)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def timestamps(self) -> list[int]:
        """Sorted list of summarised timestamps."""
        return sorted(self.records)

    @property
    def num_points(self) -> int:
        """Total number of summarised trajectory points."""
        return sum(record.num_points for record in self.records.values())

    @property
    def num_codewords(self) -> int:
        """Size of the shared codebook."""
        return len(self.codebook)

    def trajectories_at(self, t: int) -> list[int]:
        """Trajectory IDs summarised at timestamp ``t``."""
        record = self.records.get(int(t))
        return sorted(record.codeword_index) if record else []

    def max_partitions(self) -> int:
        """Largest number of partitions used at any timestamp."""
        if not self.records:
            return 0
        return max(record.num_partitions for record in self.records.values())

    # ------------------------------------------------------------------ #
    # reconstruction
    # ------------------------------------------------------------------ #
    def reconstruct_point(self, traj_id: int, t: int, use_cqc: bool = True) -> np.ndarray | None:
        """Reconstruct the position of ``traj_id`` at ``t`` from the summary.

        Returns the CQC-refined point ``(x̂', ŷ')`` when ``use_cqc`` is true
        and a CQC code was stored, otherwise the ε₁-bounded reconstruction
        ``(x̂, ŷ)``.  ``None`` when the trajectory was not summarised at ``t``.
        """
        base = self._base_reconstruction(int(traj_id), int(t))
        if base is None:
            return None
        if not use_cqc or self.cqc_coder is None:
            return base
        record = self.records.get(int(t))
        if record is None:
            return base
        code = record.cqc_codes.get(int(traj_id))
        if not code:
            return base
        offset = self.cqc_coder.decode_offset(code)
        return base + offset

    def reconstruct_path(self, traj_id: int, t_start: int, length: int,
                         use_cqc: bool = True) -> np.ndarray:
        """Reconstruct up to ``length`` consecutive points starting at ``t_start``.

        Missing timestamps terminate the path early; the result has shape
        ``(m, 2)`` with ``m <= length``.
        """
        points = []
        for t in range(int(t_start), int(t_start) + int(length)):
            point = self.reconstruct_point(traj_id, t, use_cqc=use_cqc)
            if point is None:
                break
            points.append(point)
        if not points:
            return np.empty((0, 2), dtype=float)
        return np.vstack(points)

    def _base_reconstruction(self, traj_id: int, t: int) -> np.ndarray | None:
        """The ε₁-bounded reconstruction, from cache or recomputed on demand."""
        cached = self._reconstructions.get(traj_id, {}).get(t)
        if cached is not None:
            return cached
        record = self.records.get(t)
        if record is None or traj_id not in record.codeword_index:
            return None
        # Recompute: prediction from previous k reconstructions + codeword.
        order = self.config.prediction_order
        history = []
        for lag in range(1, order + 1):
            prev = self._base_reconstruction(traj_id, t - lag)
            history.append(prev)
        partition = record.partition_of.get(traj_id)
        coefficients = record.coefficients.get(partition)
        prediction = np.zeros(2, dtype=float)
        if coefficients is not None:
            filled = _fill_history(history)
            if filled is not None:
                prediction = np.einsum("k,kd->d", coefficients, filled)
        codeword = np.asarray(self.codebook[record.codeword_index[traj_id]], dtype=float)
        reconstruction = prediction + codeword
        self.cache_reconstruction(traj_id, t, reconstruction)
        return reconstruction

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def storage(self, coordinate_bytes: int = 8, coefficient_bytes: int = 8) -> SummaryStorage:
        """Bit-exact storage cost of the summary.

        Parameters
        ----------
        coordinate_bytes:
            Bytes per stored coordinate value (codewords).
        coefficient_bytes:
            Bytes per stored prediction coefficient.
        """
        storage = SummaryStorage()
        storage.codebook_bits = len(self.codebook) * 2 * coordinate_bytes * 8
        index_bits = self.codebook.index_bits()
        for record in self.records.values():
            storage.codeword_index_bits += record.num_points * index_bits
            storage.coefficient_bits += (
                record.num_partitions * self.config.prediction_order * coefficient_bytes * 8
            )
            if record.num_partitions > 1:
                assignment_bits = max(1, int(np.ceil(np.log2(record.num_partitions))))
                storage.partition_assignment_bits += record.num_points * assignment_bits
            storage.cqc_bits += sum(len(code) for code in record.cqc_codes.values())
        return storage

    def compression_ratio(self, coordinate_bytes: int = 8) -> float:
        """Raw size divided by summary size (higher is better)."""
        raw_bits = self.num_points * 2 * coordinate_bytes * 8
        summary_bits = self.storage(coordinate_bytes=coordinate_bytes).total_bits
        if summary_bits == 0:
            return float("inf")
        return raw_bits / summary_bits


def _fill_history(history: list[np.ndarray | None]) -> np.ndarray | None:
    """Pad a lag history (most recent first) so missing lags reuse older ones.

    Mirrors the padding used by the online quantizer: if a lag is missing the
    nearest available older/newer reconstruction is repeated; if no lag is
    available at all, ``None`` is returned (prediction falls back to zero).
    """
    available = [h for h in history if h is not None]
    if not available:
        return None
    filled = []
    last = available[0]
    for entry in history:
        if entry is not None:
            last = entry
        filled.append(last)
    return np.stack(filled, axis=0)

"""Configuration dataclasses collecting the paper's tunable parameters.

Defaults follow Section 6.1 ("Parameter Settings") of the paper:

* quantization deviation threshold ``eps1 = 0.001`` degrees (about 111 m);
* partition threshold ``eps_p``: 0.1 (Porto) / 5 (GeoLife) for spatial
  partitioning and 0.01 for autocorrelation partitioning;
* index partition threshold ``eps_s = 0.1``;
* grid cell size ``g_c = 100 m`` for the index, ``g_s = 50 m`` for CQC;
* TRD dropping-rate threshold ``eps_c = 0.5`` and ADR threshold
  ``eps_d = 0.5``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.geo import meters_to_degrees


class PartitionCriterion(enum.Enum):
    """Which similarity drives the PPQ partitioning (Section 3.2.1)."""

    #: Spatial proximity (Tobler's first law) -- the PPQ-S variant.
    SPATIAL = "spatial"
    #: Lag-k autocorrelation similarity -- the PPQ-A variant.
    AUTOCORRELATION = "autocorrelation"


@dataclass
class PPQConfig:
    """Parameters of the partition-wise predictive quantizer.

    Attributes
    ----------
    epsilon1:
        Spatial deviation threshold of the error-bounded codebook, in
        coordinate units (degrees for geographic data).
    epsilon_p:
        Partition threshold: maximum distance of any member to its partition
        centroid (spatial criterion) or of its AR coefficients to the
        partition's AR centroid (autocorrelation criterion).
    criterion:
        Partitioning criterion (spatial vs autocorrelation).
    prediction_order:
        Number ``k`` of previous reconstructed points used by the linear
        predictor (AR order).
    max_partitions:
        Safety cap on the number of partitions ``q``.
    partition_growth:
        Number of partitions added per round (``a`` in Lemma 1) when the
        threshold is violated.
    kmeans_iterations:
        Lloyd iterations per partitioning round (``l`` in Lemma 1).
    max_codewords_per_step:
        Safety cap on the codewords added per timestamp by the incremental
        quantizer.
    use_prediction:
        If ``False`` the predictor is skipped and raw coordinates are
        quantized directly (the Q-trajectory ablation).
    seed:
        Random seed for k-means initialisation.
    """

    epsilon1: float = 0.001
    epsilon_p: float = 0.1
    criterion: PartitionCriterion = PartitionCriterion.SPATIAL
    prediction_order: int = 2
    max_partitions: int = 256
    partition_growth: int = 2
    kmeans_iterations: int = 8
    max_codewords_per_step: int = 4096
    use_prediction: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epsilon1 <= 0:
            raise ValueError(f"epsilon1 must be > 0, got {self.epsilon1}")
        if self.epsilon_p <= 0:
            raise ValueError(f"epsilon_p must be > 0, got {self.epsilon_p}")
        if self.prediction_order < 1:
            raise ValueError("prediction_order must be >= 1")
        if self.max_partitions < 1:
            raise ValueError("max_partitions must be >= 1")
        if isinstance(self.criterion, str):
            self.criterion = PartitionCriterion(self.criterion)

    @classmethod
    def for_spatial_deviation_meters(cls, deviation_m: float, **overrides) -> "PPQConfig":
        """Build a config whose ``epsilon1`` equals ``deviation_m`` metres."""
        return cls(epsilon1=meters_to_degrees(deviation_m), **overrides)


@dataclass
class CQCConfig:
    """Parameters of the coordinate quadtree coding (Section 4).

    Attributes
    ----------
    grid_size:
        Cell size ``g_s`` of the CQC grid, in coordinate units.  The paper's
        default is 50 m.
    enabled:
        When ``False`` the quantizer only stores the codeword index
        (the ``-basic`` variants of the experiments).
    """

    grid_size: float = field(default_factory=lambda: meters_to_degrees(50.0))
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.grid_size <= 0:
            raise ValueError(f"grid_size must be > 0, got {self.grid_size}")

    @classmethod
    def for_grid_meters(cls, grid_m: float, enabled: bool = True) -> "CQCConfig":
        """Build a config with ``grid_size`` given in metres."""
        return cls(grid_size=meters_to_degrees(grid_m), enabled=enabled)


@dataclass
class IndexConfig:
    """Parameters of the partition-based index and its temporal extension.

    Attributes
    ----------
    epsilon_s:
        Partition threshold used when building a PI (Algorithm 3).
    grid_cell:
        Grid cell size ``g_c`` of the per-rectangle grid index, in coordinate
        units (paper default 100 m).
    epsilon_c:
        TRD dropping-rate threshold (Equation 14).
    epsilon_d:
        ADR threshold deciding re-build vs insertion (Algorithm 4).
    page_size_bytes:
        Simulated disk page size for the disk-resident experiments
        (paper uses 1 MB pages).
    """

    epsilon_s: float = 0.1
    grid_cell: float = field(default_factory=lambda: meters_to_degrees(100.0))
    epsilon_c: float = 0.5
    epsilon_d: float = 0.5
    page_size_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.epsilon_s <= 0:
            raise ValueError("epsilon_s must be > 0")
        if self.grid_cell <= 0:
            raise ValueError("grid_cell must be > 0")
        if not 0 <= self.epsilon_c:
            raise ValueError("epsilon_c must be >= 0")
        if not 0 <= self.epsilon_d:
            raise ValueError("epsilon_d must be >= 0")
        if self.page_size_bytes <= 0:
            raise ValueError("page_size_bytes must be > 0")

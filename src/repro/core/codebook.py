"""Error-bounded codebook (Definition 3.2) with incremental growth.

A codebook is a set of 2-D codewords (cluster centroids over prediction
errors).  It is *error bounded* with threshold ``epsilon1`` when every vector
assigned to a codeword lies within ``epsilon1`` of it.  The codebook grows
over time: when newly arriving error vectors cannot be represented within the
bound, additional codewords are appended (Section 3.1).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_points_array


class Codebook:
    """A growable set of 2-D codewords with nearest-codeword search.

    The class keeps codewords in a pre-allocated array that doubles on demand
    so that appending stays amortised O(1) while nearest-neighbour assignment
    remains a vectorised NumPy operation.
    """

    def __init__(self, initial_capacity: int = 64) -> None:
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self._store = np.empty((initial_capacity, 2), dtype=float)
        self._size = 0

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    @property
    def codewords(self) -> np.ndarray:
        """View of the current codewords, shape ``(len(self), 2)``."""
        return self._store[: self._size]

    def __getitem__(self, index: int) -> np.ndarray:
        if not 0 <= index < self._size:
            raise IndexError(f"codeword index {index} out of range (size {self._size})")
        return self._store[index]

    # ------------------------------------------------------------------ #
    # growth
    # ------------------------------------------------------------------ #
    def add(self, codeword) -> int:
        """Append a single codeword and return its index."""
        codeword = np.asarray(codeword, dtype=float).reshape(2)
        self._ensure_capacity(self._size + 1)
        self._store[self._size] = codeword
        self._size += 1
        return self._size - 1

    def extend(self, codewords) -> np.ndarray:
        """Append several codewords; returns their indices."""
        codewords = ensure_points_array(codewords, name="codewords", allow_empty=True)
        if len(codewords) == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_capacity(self._size + len(codewords))
        start = self._size
        self._store[start:start + len(codewords)] = codewords
        self._size += len(codewords)
        return np.arange(start, self._size, dtype=np.int64)

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= len(self._store):
            return
        capacity = len(self._store)
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, 2), dtype=float)
        grown[: self._size] = self._store[: self._size]
        self._store = grown

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #
    def assign(self, vectors) -> tuple[np.ndarray, np.ndarray]:
        """Assign each vector to its nearest codeword.

        Returns
        -------
        (indices, distances):
            ``indices`` is an int array of nearest codeword indices and
            ``distances`` the corresponding Euclidean distances.  If the
            codebook is empty, indices are ``-1`` and distances ``inf``.
        """
        vectors = ensure_points_array(vectors, name="vectors", allow_empty=True)
        n = len(vectors)
        if n == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=float)
        if self._size == 0:
            return np.full(n, -1, dtype=np.int64), np.full(n, np.inf, dtype=float)
        codewords = self.codewords
        # (n, V) distance matrix computed blockwise to bound memory usage.
        block = max(1, int(4_000_000 // max(1, self._size)))
        indices = np.empty(n, dtype=np.int64)
        distances = np.empty(n, dtype=float)
        for start in range(0, n, block):
            chunk = vectors[start:start + block]
            diff = chunk[:, None, :] - codewords[None, :, :]
            dist = np.sqrt(np.sum(diff * diff, axis=2))
            best = np.argmin(dist, axis=1)
            indices[start:start + len(chunk)] = best
            distances[start:start + len(chunk)] = dist[np.arange(len(chunk)), best]
        return indices, distances

    def reconstruct(self, indices) -> np.ndarray:
        """Return the codewords selected by ``indices`` (shape ``(n, 2)``)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._size):
            raise IndexError("codeword index out of range")
        return self.codewords[indices]

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def storage_bytes(self, bytes_per_value: int = 8) -> int:
        """Bytes needed to store the codewords themselves."""
        return self._size * 2 * bytes_per_value

    def index_bits(self) -> int:
        """Bits needed to address one codeword of this codebook."""
        if self._size <= 1:
            return 1
        return int(np.ceil(np.log2(self._size)))

    def copy(self) -> "Codebook":
        """Deep copy of the codebook."""
        clone = Codebook(initial_capacity=max(64, len(self._store)))
        clone.extend(self.codewords.copy())
        return clone

"""Linear prediction of trajectory points and AR(k) autocorrelation features.

Equation 1/2 of the paper predicts the point of trajectory ``i`` at time ``t``
as a linear combination of its previous ``k`` *reconstructed* points, with the
coefficients shared by all trajectories of the partition:

    prediction_i(t) = sum_j P_j[t] * reconstruction_i(t - j)

The coefficients ``P_j[t]`` are obtained by least squares over the
trajectories currently in the partition.  The same machinery doubles as the
AR(k) feature extractor used by the autocorrelation-based partitioning
(Section 3.2.1): per-trajectory AR coefficients quantify how each trajectory's
recent motion relates to its current position.
"""

from __future__ import annotations

import numpy as np


class LinearPredictor:
    """Shared linear predictor of order ``k`` for a group of trajectories.

    Parameters
    ----------
    order:
        Number of lagged reconstructed points used for prediction
        (``k`` in the paper, default 2).
    ridge:
        Tikhonov regularisation added to the normal equations for numerical
        stability when histories are nearly collinear (straight-line motion).
    """

    def __init__(self, order: int = 2, ridge: float = 1e-8) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = int(order)
        self.ridge = float(ridge)
        #: Current coefficients, shape ``(order,)``; ``None`` until fitted.
        self.coefficients: np.ndarray | None = None

    def fit(self, history: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Fit coefficients from reconstructed history to current targets.

        Parameters
        ----------
        history:
            Array of shape ``(n, order, 2)``: for each of the ``n`` points the
            previous ``order`` reconstructed positions, most recent first
            (``history[:, 0]`` is the point at ``t-1``).
        targets:
            Array of shape ``(n, 2)``: the true positions at time ``t``.

        Returns
        -------
        numpy.ndarray
            The fitted coefficients ``P_1..P_k`` (shape ``(order,)``).  Both
            coordinates share the same scalar coefficients, matching the
            paper's formulation where ``P_j[t]`` weights whole 2-D points.
        """
        history = np.asarray(history, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if history.ndim != 3 or history.shape[1] != self.order or history.shape[2] != 2:
            raise ValueError(f"history must have shape (n, {self.order}, 2), got {history.shape}")
        if targets.shape != (history.shape[0], 2):
            raise ValueError("targets must have shape (n, 2) aligned with history")
        if len(targets) == 0:
            self.coefficients = self._default_coefficients()
            return self.coefficients

        # Stack the x and y equations: each sample contributes two rows.
        design = np.concatenate([history[:, :, 0], history[:, :, 1]], axis=0)
        response = np.concatenate([targets[:, 0], targets[:, 1]], axis=0)
        gram = design.T @ design + self.ridge * np.eye(self.order)
        rhs = design.T @ response
        try:
            coeffs = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            coeffs = self._default_coefficients()
        if not np.all(np.isfinite(coeffs)):
            coeffs = self._default_coefficients()
        self.coefficients = coeffs
        return coeffs

    def predict(self, history: np.ndarray) -> np.ndarray:
        """Predict current positions from reconstructed history.

        ``history`` has shape ``(n, order, 2)``; the result has shape
        ``(n, 2)``.  If the predictor has not been fitted a persistence
        default (repeat the last point) is used.
        """
        history = np.asarray(history, dtype=float)
        coeffs = (self.coefficients if self.coefficients is not None
                  else self._default_coefficients())
        return np.einsum("k,nkd->nd", coeffs, history)

    def _default_coefficients(self) -> np.ndarray:
        """Persistence model: predict the previous reconstructed point."""
        coeffs = np.zeros(self.order, dtype=float)
        coeffs[0] = 1.0
        return coeffs


def estimate_ar_coefficients(histories: np.ndarray, targets: np.ndarray,
                             ridge: float = 1e-6) -> np.ndarray:
    """Per-trajectory AR(k) coefficients used as autocorrelation features.

    For each trajectory point the paper derives the parameters of an AR(k)
    process relating the current point to its ``k`` lagged points, and groups
    points with similar coefficients into the same partition.  With only one
    observation per trajectory at time ``t`` the per-point least-squares
    problem is underdetermined, so (as is standard) we use the projection of
    the target onto the lagged points, i.e. a normalised correlation feature:

        a_j = <target, history_j> / (‖history_j‖² + ridge)

    This yields one ``k``-vector per trajectory that is scale-aware and cheap
    to compute, and that coincides with the least-squares AR solution when the
    lags are orthogonal.

    Parameters
    ----------
    histories:
        Array of shape ``(n, k, 2)`` of lagged (reconstructed) positions.
    targets:
        Array of shape ``(n, 2)`` of current positions.

    Returns
    -------
    numpy.ndarray of shape ``(n, k)``.
    """
    histories = np.asarray(histories, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if histories.ndim != 3 or histories.shape[2] != 2:
        raise ValueError(f"histories must have shape (n, k, 2), got {histories.shape}")
    if targets.shape != (histories.shape[0], 2):
        raise ValueError("targets must have shape (n, 2) aligned with histories")
    numerator = np.einsum("nd,nkd->nk", targets, histories)
    denominator = np.einsum("nkd,nkd->nk", histories, histories) + ridge
    return numerator / denominator


def build_history_tensor(reconstructions: list[np.ndarray]) -> np.ndarray:
    """Stack the ``k`` most recent reconstruction arrays into a history tensor.

    ``reconstructions`` is a list of ``k`` arrays of shape ``(n, 2)`` ordered
    from most recent (``t-1``) to oldest (``t-k``); the result has shape
    ``(n, k, 2)`` suitable for :class:`LinearPredictor`.
    """
    if not reconstructions:
        raise ValueError("at least one reconstruction array is required")
    return np.stack(reconstructions, axis=1)

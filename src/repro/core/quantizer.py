"""The incremental error-bounded quantizer of Algorithm 1 (line 6).

Given a batch of 2-D vectors (prediction errors, or raw coordinates for the
Q-trajectory ablation) and an existing codebook, the quantizer assigns each
vector to its nearest codeword.  Vectors whose nearest codeword is farther
than ``epsilon1`` violate the error bound (Equation 3); the quantizer then
clusters the violating vectors with k-means, appends the resulting centroids
as new codewords and repeats until every vector is represented within the
bound.  This is the approximate solution to the non-convex minimal-codebook
problem that the paper describes for dynamic databases.
"""

from __future__ import annotations

import numpy as np

from repro.core.codebook import Codebook
from repro.utils.validation import ensure_points_array


class IncrementalQuantizer:
    """Error-bounded incremental vector quantizer.

    Parameters
    ----------
    epsilon:
        Error bound ``epsilon1``: after :meth:`quantize`, every input vector
        is within ``epsilon`` of its assigned codeword.
    kmeans_iterations:
        Lloyd iterations used when clustering the violating vectors before
        new codewords are appended.
    max_new_codewords_per_step:
        Safety cap on codewords added by a single :meth:`quantize` call.
        When reached, violating vectors are added verbatim as codewords so
        the bound still holds.
    seed:
        Seed for the k-means initialisation.
    """

    def __init__(self, epsilon: float, kmeans_iterations: int = 8,
                 max_new_codewords_per_step: int = 4096, seed: int = 0) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        self.epsilon = float(epsilon)
        self.kmeans_iterations = int(kmeans_iterations)
        self.max_new_codewords_per_step = int(max_new_codewords_per_step)
        self._rng = np.random.default_rng(seed)

    def quantize(self, vectors, codebook: Codebook) -> np.ndarray:
        """Assign ``vectors`` to ``codebook`` codewords within the bound.

        The codebook is mutated in place (codewords are appended as needed).
        Returns the integer array of assigned codeword indices, one per input
        vector; the post-condition ``‖v − C[idx]‖ ≤ epsilon`` holds for every
        vector ``v``.
        """
        vectors = ensure_points_array(vectors, name="vectors", allow_empty=True)
        n = len(vectors)
        if n == 0:
            return np.empty(0, dtype=np.int64)

        indices, distances = codebook.assign(vectors)
        violating = distances > self.epsilon
        added = 0
        while np.any(violating):
            pending = vectors[violating]
            budget = self.max_new_codewords_per_step - added
            if budget <= 0:
                # Fall back to exact representation for the stragglers so the
                # error bound is never violated.
                new_indices = codebook.extend(pending)
                indices[np.flatnonzero(violating)] = new_indices
                break
            centroids = self._cluster(pending, budget)
            codebook.extend(centroids)
            added += len(centroids)
            sub_indices, sub_distances = codebook.assign(pending)
            rows = np.flatnonzero(violating)
            indices[rows] = sub_indices
            distances[rows] = sub_distances
            violating = distances > self.epsilon
        return indices

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cluster(self, vectors: np.ndarray, budget: int) -> np.ndarray:
        """Cluster violating vectors into centroids that respect the bound.

        The number of clusters starts from an estimate based on the spread of
        the vectors relative to ``epsilon`` and doubles until either every
        vector is within ``epsilon`` of a centroid or the budget is hit;
        whatever centroids are produced last are returned (the caller loops
        until the global bound is satisfied, so partial progress is fine).
        """
        n = len(vectors)
        if n == 1:
            return vectors.copy()
        spread = float(np.max(np.ptp(vectors, axis=0)))
        k = max(1, min(n, int(np.ceil(spread / (2.0 * self.epsilon))) ** 2))
        k = min(k, budget, n)
        while True:
            centroids, labels = _kmeans(vectors, k, self.kmeans_iterations, self._rng)
            dist = np.linalg.norm(vectors - centroids[labels], axis=1)
            if np.all(dist <= self.epsilon) or k >= min(n, budget):
                return centroids
            k = min(min(n, budget), max(k + 1, k * 2))


def _kmeans(vectors: np.ndarray, k: int, iterations: int,
            rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd k-means returning ``(centroids, labels)``.

    Initialisation picks ``k`` distinct input vectors at random (k-means++
    style spreading is unnecessary here because the caller re-clusters until
    an error bound is met).  Empty clusters are re-seeded from the farthest
    points so the requested ``k`` centroids are always produced.
    """
    n = len(vectors)
    k = min(k, n)
    choice = rng.choice(n, size=k, replace=False)
    centroids = vectors[choice].copy()
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max(1, iterations)):
        diff = vectors[:, None, :] - centroids[None, :, :]
        dist = np.sum(diff * diff, axis=2)
        labels = np.argmin(dist, axis=1)
        for j in range(k):
            members = vectors[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster with the point farthest from its
                # current centroid to keep k effective clusters.
                farthest = int(np.argmax(np.min(dist, axis=1)))
                centroids[j] = vectors[farthest]
    return centroids, labels


def kmeans(vectors, k: int, iterations: int = 10, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Public k-means helper used by baselines and the partitioners.

    Unlike the internal routine this accepts vectors of any dimensionality
    (the autocorrelation partitioner clusters AR(k) coefficient vectors).
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2 or len(vectors) == 0:
        raise ValueError("kmeans requires a non-empty (n, d) array")
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = np.random.default_rng(seed)
    return _kmeans(vectors, k, iterations, rng)

"""``PPQTrajectory`` -- the public facade of the reproduction.

Ties together the three parts of the system exactly as Figure 1 of the paper
does: the partition-wise predictive quantizer produces an error-bounded
summary, CQC refines it for accurate reconstruction, and the temporal
partition-based index organises the quantized data for online querying.

Typical usage::

    from repro import PPQTrajectory
    from repro.data import generate_porto_like

    dataset = generate_porto_like(num_trajectories=100)
    system = PPQTrajectory()                     # paper defaults
    system.fit(dataset)                          # build summary + index
    result = system.strq(x, y, t)                # who was here at time t?
    paths = system.tpq(x, y, t, length=20)       # ... and where did they go?

    system.save("model.ppq")                     # persist the fitted model
    served = PPQTrajectory.load("model.ppq")     # serve it elsewhere, no refit
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CQCConfig, IndexConfig, PartitionCriterion, PPQConfig
from repro.core.epq import ErrorBoundedPredictiveQuantizer
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.core.summary import TrajectorySummary
from repro.data.trajectory import TrajectoryDataset
from repro.queries.engine import QueryEngine


class PPQTrajectory:
    """End-to-end PPQ-trajectory system: compress, index and query.

    Parameters
    ----------
    ppq_config:
        Quantizer parameters; defaults follow Section 6.1 of the paper.
    cqc_config:
        CQC parameters (``enabled=False`` gives the ``-basic`` variant).
    index_config:
        TPI parameters.
    variant:
        ``"ppq"`` (partition-wise, the full system) or ``"epq"``
        (single-partition ablation).
    """

    def __init__(self, ppq_config: PPQConfig | None = None,
                 cqc_config: CQCConfig | None = None,
                 index_config: IndexConfig | None = None,
                 variant: str = "ppq") -> None:
        if variant not in ("ppq", "epq"):
            raise ValueError(f"variant must be 'ppq' or 'epq', got {variant!r}")
        self.ppq_config = ppq_config or PPQConfig()
        self.cqc_config = cqc_config or CQCConfig()
        self.index_config = index_config or IndexConfig()
        self.variant = variant
        self.quantizer = self._build_quantizer()
        self.summary: TrajectorySummary | None = None
        self.engine: QueryEngine | None = None
        self._dataset: TrajectoryDataset | None = None
        # Set by the storage layer when the system is restored from an
        # artifact (a LoadReport); None for freshly fitted systems.
        self.load_report = None

    @classmethod
    def ppq_a(cls, **kwargs) -> "PPQTrajectory":
        """The PPQ-A configuration (autocorrelation partitioning, CQC on)."""
        config = kwargs.pop("ppq_config", None) or PPQConfig(
            criterion=PartitionCriterion.AUTOCORRELATION, epsilon_p=0.01
        )
        return cls(ppq_config=config, **kwargs)

    @classmethod
    def ppq_s(cls, **kwargs) -> "PPQTrajectory":
        """The PPQ-S configuration (spatial partitioning, CQC on)."""
        config = kwargs.pop("ppq_config", None) or PPQConfig(
            criterion=PartitionCriterion.SPATIAL, epsilon_p=0.1
        )
        return cls(ppq_config=config, **kwargs)

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def _build_quantizer(self) -> PartitionwisePredictiveQuantizer:
        if self.variant == "epq":
            return ErrorBoundedPredictiveQuantizer(self.ppq_config, self.cqc_config)
        return PartitionwisePredictiveQuantizer(self.ppq_config, self.cqc_config)

    def fit(self, dataset: TrajectoryDataset, t_max: int | None = None,
            build_index: bool = True) -> "PPQTrajectory":
        """Summarise ``dataset`` and (optionally) build the query index."""
        self._dataset = dataset
        self.summary = self.quantizer.summarize(dataset, t_max=t_max)
        if build_index:
            self.engine = QueryEngine(self.summary, self.index_config, raw_dataset=dataset)
        return self

    # ------------------------------------------------------------------ #
    # queries (thin delegation to the engine)
    # ------------------------------------------------------------------ #
    def strq(self, x: float, y: float, t: int, local_search: bool = True):
        """Spatio-temporal range query; see :meth:`QueryEngine.strq`."""
        return self._require_engine().strq(x, y, t, local_search=local_search)

    def tpq(self, x: float, y: float, t: int, length: int, local_search: bool = True):
        """Trajectory path query; see :meth:`QueryEngine.tpq`."""
        return self._require_engine().tpq(x, y, t, length, local_search=local_search)

    def exact(self, x: float, y: float, t: int):
        """Exact-match query; see :meth:`QueryEngine.exact`."""
        return self._require_engine().exact(x, y, t)

    def run_batch(self, workload, isolate: bool = False, jobs: int = 1):
        """Batched mixed workload; see :meth:`QueryEngine.run_batch`.

        With ``jobs > 1`` the workload is served by that many worker
        processes, each loading the model artifact once.  A system restored
        by :meth:`load` (or previously saved) reuses its artifact; a system
        fitted in memory spills a temporary artifact first (kept for the
        system's lifetime so repeated parallel calls reuse it).  Results are
        identical to ``jobs=1``, in workload order.
        """
        engine = self._require_engine()
        if jobs > 1 and engine.source_path is None:
            engine.source_path = self._spill_artifact()
        return engine.run_batch(workload, isolate=isolate, jobs=jobs)

    def _spill_artifact(self) -> str:
        """Save the fitted system to a temporary artifact for worker loads."""
        import atexit
        import os
        import tempfile

        handle, path = tempfile.mkstemp(suffix=".ppq", prefix="repro-parallel-")
        os.close(handle)
        self.save(path, include_raw=self._dataset is not None)
        atexit.register(lambda: os.path.exists(path) and os.unlink(path))
        return path

    def predict_next_positions(self, traj_id: int, t: int, horizon: int = 5) -> np.ndarray:
        """Forecast the next positions of a trajectory from the summary."""
        return self._require_engine().predict_next_positions(traj_id, t, horizon=horizon)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path, include_raw: bool = True):
        """Serialize the fitted system to a versioned model artifact.

        The artifact contains everything a serving process needs to answer
        queries without refitting: configuration, codebook, summary records
        (coefficients, codeword indices, CQC bit streams), cached
        reconstructions and the full TPI.  See
        :func:`repro.storage.save_model` for details and
        ``docs/ARTIFACT_FORMAT.md`` for the on-disk layout.

        Parameters
        ----------
        path:
            Destination file (conventionally ``*.ppq``).
        include_raw:
            Embed the raw trajectories so exact-match queries keep working
            after a load; pass ``False`` for a smaller STRQ/TPQ-only
            artifact.

        Returns
        -------
        pathlib.Path
            The path written.

        Raises
        ------
        RuntimeError
            If the system is not fitted (``fit(build_index=True)`` first).
        OSError
            If the file cannot be written.
        """
        from repro.storage.io import save_model

        return save_model(self, path, include_raw=include_raw)

    @classmethod
    def load(cls, path, verify: bool = True, strict: bool = True) -> "PPQTrajectory":
        """Restore a query-ready system from a model artifact.

        The loaded system answers STRQ/TPQ/exact workloads identically --
        byte for byte -- to the instance that was saved; only quantizer
        fitting state (timings, partition history) is not restored.

        Parameters
        ----------
        path:
            An artifact written by :meth:`save`.
        verify:
            Verify every section's CRC32 before decoding (default).
        strict:
            With ``strict=False`` a damaged artifact is salvaged where
            possible -- derivable sections (reconstruction cache, index)
            are rebuilt and a damaged raw-data section is dropped -- and
            the outcome is recorded in the returned system's
            ``load_report``.  See :func:`repro.storage.load_model`.

        Returns
        -------
        PPQTrajectory
            The restored, query-ready system.

        Raises
        ------
        OSError
            If the file cannot be read.
        repro.storage.ArtifactError
            If the file is malformed, from a newer format version, or
            fails checksum verification (in non-strict mode, only when a
            non-derivable section is damaged).
        """
        from repro.storage.io import load_model

        return load_model(path, verify=verify, strict=strict)

    # ------------------------------------------------------------------ #
    # reconstruction and reporting
    # ------------------------------------------------------------------ #
    def reconstruct(self, traj_id: int, t: int, use_cqc: bool = True) -> np.ndarray | None:
        """Reconstruct a single point from the summary."""
        return self._require_summary().reconstruct_point(traj_id, t, use_cqc=use_cqc)

    def compression_ratio(self) -> float:
        """Raw size divided by summary size."""
        return self._require_summary().compression_ratio()

    def num_codewords(self) -> int:
        """Size of the error-bounded codebook."""
        return self._require_summary().num_codewords

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _require_summary(self) -> TrajectorySummary:
        if self.summary is None:
            raise RuntimeError("call fit() before using the summary")
        return self.summary

    def _require_engine(self) -> QueryEngine:
        if self.engine is None:
            raise RuntimeError("call fit(build_index=True) before querying")
        return self.engine

"""Core of the reproduction: the partition-wise predictive quantizer (PPQ).

Modules
-------
``config``
    Dataclasses collecting the paper's tunable parameters with its defaults.
``codebook``
    Error-bounded codebook (Definition 3.2) with incremental growth.
``quantizer``
    The ``Incremental_Quantizer`` of Algorithm 1: assigns error vectors to
    codewords and extends the codebook when the bound would be violated.
``prediction``
    Linear predictors (Equation 1/2) and AR(k) autocorrelation estimation.
``partitioning``
    Spatial / autocorrelation partitioning and the incremental temporal
    partitioning of Section 3.2.
``epq``
    Error-bounded predictive quantization, Algorithm 1 (single partition).
``ppq``
    Partition-wise predictive quantization (PPQ-S / PPQ-A), Section 3.2.
``summary``
    The summary produced by quantization: prediction coefficients, codebook,
    codeword indices and optional CQC codes; supports reconstruction.
``pipeline``
    ``PPQTrajectory`` -- the public facade tying PPQ + CQC + TPI together,
    with ``save()``/``load()`` persistence through :mod:`repro.storage`.
"""

from repro.core.config import CQCConfig, IndexConfig, PPQConfig, PartitionCriterion
from repro.core.codebook import Codebook
from repro.core.quantizer import IncrementalQuantizer
from repro.core.prediction import LinearPredictor, estimate_ar_coefficients
from repro.core.partitioning import IncrementalPartitioner, Partition, partition_points
from repro.core.epq import ErrorBoundedPredictiveQuantizer
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.core.summary import ReconstructionCache, TrajectorySummary
from repro.core.pipeline import PPQTrajectory

__all__ = [
    "PPQConfig",
    "CQCConfig",
    "IndexConfig",
    "PartitionCriterion",
    "Codebook",
    "IncrementalQuantizer",
    "LinearPredictor",
    "estimate_ar_coefficients",
    "Partition",
    "partition_points",
    "IncrementalPartitioner",
    "ErrorBoundedPredictiveQuantizer",
    "PartitionwisePredictiveQuantizer",
    "ReconstructionCache",
    "TrajectorySummary",
    "PPQTrajectory",
]

"""Partition-wise predictive quantization (PPQ), Section 3.2 of the paper.

The quantizer processes a :class:`~repro.data.trajectory.TrajectoryDataset`
one timestamp at a time:

1. the active trajectory points are partitioned by spatial proximity (PPQ-S)
   or by AR(k) autocorrelation similarity (PPQ-A), maintained incrementally
   across timestamps by :class:`~repro.core.partitioning.IncrementalPartitioner`;
2. each partition fits its own linear predictor over the previous ``k``
   *reconstructed* points of its member trajectories (Equation 6);
3. the per-point prediction errors are quantized by the shared error-bounded
   incremental codebook (Equation 3);
4. optionally, the residual deviation between the true point and its
   reconstruction is CQC-encoded for accurate reconstruction (Section 4).

The result is a :class:`~repro.core.summary.TrajectorySummary`.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.core.codebook import Codebook
from repro.core.config import CQCConfig, PartitionCriterion, PPQConfig
from repro.core.partitioning import IncrementalPartitioner
from repro.core.prediction import LinearPredictor, estimate_ar_coefficients
from repro.core.quantizer import IncrementalQuantizer
from repro.core.summary import TimestepRecord, TrajectorySummary
from repro.cqc.coding import CQCCoder
from repro.data.trajectory import TimeSlice, TrajectoryDataset


class PartitionwisePredictiveQuantizer:
    """PPQ: error-bounded predictive quantization with partition-wise models.

    Parameters
    ----------
    config:
        Quantizer parameters (``epsilon1``, ``epsilon_p``, criterion, ...).
    cqc_config:
        CQC parameters; pass ``enabled=False`` for the ``-basic`` variants.

    Examples
    --------
    >>> from repro.data import generate_porto_like
    >>> from repro.core import PPQConfig, CQCConfig
    >>> dataset = generate_porto_like(num_trajectories=20, max_length=60)
    >>> ppq = PartitionwisePredictiveQuantizer(PPQConfig(), CQCConfig())
    >>> summary = ppq.summarize(dataset)
    >>> summary.num_points == dataset.num_points
    True
    """

    def __init__(self, config: PPQConfig | None = None,
                 cqc_config: CQCConfig | None = None) -> None:
        self.config = config or PPQConfig()
        self.cqc_config = cqc_config or CQCConfig()
        #: Wall-clock statistics filled by :meth:`summarize` (seconds).
        self.timings = {"total": 0.0, "partitioning": 0.0, "prediction": 0.0,
                        "quantization": 0.0, "cqc": 0.0}
        #: Number of partitions after each processed timestamp (Figure 8).
        self.partition_history: list[int] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def summarize(self, dataset: TrajectoryDataset, t_max: int | None = None) -> TrajectorySummary:
        """Summarise ``dataset`` online and return the trajectory summary."""
        codebook = Codebook()
        quantizer = IncrementalQuantizer(
            epsilon=self.config.epsilon1,
            kmeans_iterations=self.config.kmeans_iterations,
            max_new_codewords_per_step=self.config.max_codewords_per_step,
            seed=self.config.seed,
        )
        cqc_coder = self._build_cqc_coder()
        summary = TrajectorySummary(self.config, self.cqc_config, codebook, cqc_coder)
        partitioner = self._build_partitioner()
        history: dict[int, deque[np.ndarray]] = {}
        predictors: dict[int, LinearPredictor] = {}

        start_total = time.perf_counter()
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            self._process_slice(slice_, summary, codebook, quantizer, cqc_coder,
                                partitioner, history, predictors)
            self.partition_history.append(self._partition_count(partitioner))
        self.timings["total"] = time.perf_counter() - start_total
        return summary

    # ------------------------------------------------------------------ #
    # per-timestamp processing
    # ------------------------------------------------------------------ #
    def _process_slice(self, slice_: TimeSlice, summary: TrajectorySummary,
                       codebook: Codebook, quantizer: IncrementalQuantizer,
                       cqc_coder: CQCCoder | None,
                       partitioner: IncrementalPartitioner | None,
                       history: dict[int, deque[np.ndarray]],
                       predictors: dict[int, LinearPredictor]) -> None:
        traj_ids = slice_.traj_ids
        points = slice_.points
        order = self.config.prediction_order

        histories = self._history_tensor(traj_ids, history, order)

        # --- partitioning -------------------------------------------------
        start = time.perf_counter()
        groups = self._partition_slice(partitioner, traj_ids, points, histories)
        self.timings["partitioning"] += time.perf_counter() - start

        record = TimestepRecord(t=slice_.t)
        predictions = np.zeros_like(points)

        # --- prediction ----------------------------------------------------
        start = time.perf_counter()
        for pid, rows in groups.items():
            if len(rows) == 0:
                continue
            predictor = predictors.setdefault(pid, LinearPredictor(order=order))
            group_history = histories[rows] if histories is not None else None
            if self.config.use_prediction and group_history is not None:
                valid = ~np.isnan(group_history).any(axis=(1, 2))
                if np.any(valid):
                    predictor.fit(group_history[valid], points[rows][valid])
                coeffs = predictor.coefficients
                if coeffs is None:
                    coeffs = np.zeros(order, dtype=float)
                filled = _replace_nan_history(group_history)
                predictions[rows] = np.einsum("k,nkd->nd", coeffs, filled)
                record.coefficients[pid] = coeffs.copy()
            else:
                record.coefficients[pid] = np.zeros(order, dtype=float)
            for row in rows:
                record.partition_of[int(traj_ids[row])] = pid
        self.timings["prediction"] += time.perf_counter() - start

        # --- quantization of prediction errors -----------------------------
        start = time.perf_counter()
        errors = points - predictions
        indices = quantizer.quantize(errors, codebook)
        reconstructions = predictions + codebook.reconstruct(indices)
        self.timings["quantization"] += time.perf_counter() - start

        # --- CQC encoding ---------------------------------------------------
        start = time.perf_counter()
        if cqc_coder is not None:
            offsets = points - reconstructions
            for row, tid in enumerate(traj_ids):
                record.cqc_codes[int(tid)] = cqc_coder.encode_offset(offsets[row])
        self.timings["cqc"] += time.perf_counter() - start

        # --- bookkeeping ------------------------------------------------------
        for row, tid in enumerate(traj_ids):
            tid = int(tid)
            record.codeword_index[tid] = int(indices[row])
            summary.cache_reconstruction(tid, slice_.t, reconstructions[row])
            queue = history.setdefault(tid, deque(maxlen=self.config.prediction_order))
            queue.appendleft(reconstructions[row])
        summary.add_record(record)

    # ------------------------------------------------------------------ #
    # hooks overridden by E-PQ
    # ------------------------------------------------------------------ #
    def _build_partitioner(self) -> IncrementalPartitioner | None:
        return IncrementalPartitioner(self.config)

    def _build_cqc_coder(self) -> CQCCoder | None:
        if not self.cqc_config.enabled:
            return None
        return CQCCoder(epsilon=self.config.epsilon1, grid_size=self.cqc_config.grid_size)

    def _partition_slice(self, partitioner: IncrementalPartitioner | None,
                         traj_ids: np.ndarray, points: np.ndarray,
                         histories: np.ndarray | None) -> dict[int, np.ndarray]:
        """Return a mapping partition id -> row indices for this slice."""
        if partitioner is None:
            return {0: np.arange(len(traj_ids), dtype=np.int64)}
        features = self._partition_features(points, histories)
        return partitioner.update(traj_ids, features)

    def _partition_features(self, points: np.ndarray,
                            histories: np.ndarray | None) -> np.ndarray:
        """Feature vectors driving the partitioning criterion."""
        if self.config.criterion is PartitionCriterion.SPATIAL or histories is None:
            return points
        filled = _replace_nan_history(histories)
        return estimate_ar_coefficients(filled, points)

    def _partition_count(self, partitioner: IncrementalPartitioner | None) -> int:
        return 1 if partitioner is None else partitioner.num_partitions

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _history_tensor(self, traj_ids: np.ndarray,
                        history: dict[int, deque[np.ndarray]],
                        order: int) -> np.ndarray | None:
        """Previous ``order`` reconstructions per active trajectory.

        Shape ``(n, order, 2)``.  Missing lags are NaN; completely new
        trajectories therefore have an all-NaN history, which downstream code
        treats as "predict zero" (the paper sets ``P_j[t] = 0`` for ``t <= k``).
        """
        n = len(traj_ids)
        if n == 0:
            return None
        tensor = np.full((n, order, 2), np.nan, dtype=float)
        for row, tid in enumerate(traj_ids):
            queue = history.get(int(tid))
            if not queue:
                continue
            for lag, point in enumerate(queue):
                if lag >= order:
                    break
                tensor[row, lag] = point
        return tensor


def _replace_nan_history(histories: np.ndarray) -> np.ndarray:
    """Replace missing lags by the nearest available one (or zero).

    Keeps prediction well-defined for points with a short history: the most
    recent available reconstruction is repeated for older missing lags, and a
    fully missing history becomes zeros so the prediction collapses to the
    codeword alone, as in the paper's ``t <= k`` bootstrap.
    """
    filled = histories.copy()
    n, order, _ = filled.shape
    for row in range(n):
        last = None
        for lag in range(order):
            if not np.isnan(filled[row, lag]).any():
                last = filled[row, lag]
            elif last is not None:
                filled[row, lag] = last
        if last is None:
            filled[row] = 0.0
        else:
            # Older lags before the first available value were already filled
            # forward; fill any leading NaNs (most recent lags) backwards.
            for lag in range(order - 1, -1, -1):
                if not np.isnan(filled[row, lag]).any():
                    last = filled[row, lag]
                else:
                    filled[row, lag] = last
    return filled

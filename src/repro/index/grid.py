"""Per-rectangle grid index with compressed trajectory-ID posting lists.

Each disjoint rectangle produced by the partition index is covered by a
uniform grid of cells of side ``g_c`` (Algorithm 3, line 11).  Every trajectory
point falling inside the rectangle is mapped to its cell and its trajectory ID
is appended to the cell's posting list, which is stored delta+Huffman
compressed (:mod:`repro.index.idcodec`).

Cell boundaries are anchored at the coordinate origin (cell ``(i, j)`` covers
``[i*g_c, (i+1)*g_c) x [j*g_c, (j+1)*g_c)``), not at the rectangle corner, so
that "the grid cell that (x, y) is in" (Definition 5.2) means the same cell
for every rectangle, every method and the ground truth used in the
experiments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.index.idcodec import CompressedIdList, compress_ids, decompress_ids
from repro.index.rectangles import Rect


class GridIndex:
    """Uniform grid over one rectangle, mapping cells to trajectory-ID lists.

    Parameters
    ----------
    rect:
        The rectangle covered by this grid.
    cell_size:
        Grid cell side length ``g_c``.
    """

    def __init__(self, rect: Rect, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be > 0")
        self.rect = rect
        self.cell_size = float(cell_size)
        self.num_cells_x = max(1, int(math.ceil(rect.width / self.cell_size)))
        self.num_cells_y = max(1, int(math.ceil(rect.height / self.cell_size)))
        # Cell -> compressed posting list.  Cells without points are absent.
        self._cells: dict[tuple[int, int], CompressedIdList] = {}
        # Staging area used while the index is being populated.
        self._staging: dict[tuple[int, int], set[int]] = {}

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    def insert(self, traj_ids: np.ndarray, points: np.ndarray) -> int:
        """Insert points (with their trajectory IDs) that fall inside the rect.

        Points outside the rectangle are ignored (they belong to a different
        rectangle of the partition index).  Returns the number of points
        actually inserted.
        """
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        points = np.asarray(points, dtype=float)
        if len(traj_ids) != len(points):
            raise ValueError("traj_ids and points must be aligned")
        mask = self.rect.contains_points(points) if len(points) else np.zeros(0, dtype=bool)
        inserted = 0
        for tid, point in zip(traj_ids[mask], points[mask]):
            cell = self.cell_of(point[0], point[1])
            self._staging.setdefault(cell, set()).add(int(tid))
            inserted += 1
        if inserted:
            self._flush()
        return inserted

    def _flush(self) -> None:
        """Re-compress the posting lists of cells touched since the last flush."""
        for cell, new_ids in self._staging.items():
            existing = self._cells.get(cell)
            ids = set(new_ids)
            if existing is not None:
                ids.update(decompress_ids(existing))
            self._cells[cell] = compress_ids(ids)
        self._staging.clear()

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Globally-anchored grid cell indices of a point."""
        return int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size))

    def ids_in_cell(self, cell: tuple[int, int]) -> list[int]:
        """Trajectory IDs stored in one grid cell (empty list if none)."""
        compressed = self._cells.get(cell)
        if compressed is None:
            return []
        return decompress_ids(compressed)

    def lookup(self, x: float, y: float) -> list[int]:
        """Trajectory IDs stored in the cell containing ``(x, y)``."""
        if not self.rect.contains(x, y):
            return []
        return self.ids_in_cell(self.cell_of(x, y))

    def lookup_cells(self, cells) -> set[int]:
        """Union of the ID lists of several cells."""
        result: set[int] = set()
        for cell in cells:
            result.update(self.ids_in_cell(cell))
        return result

    def covers(self, x: float, y: float) -> bool:
        """Whether the point falls inside this grid's rectangle."""
        return self.rect.contains(x, y)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def num_nonempty_cells(self) -> int:
        return len(self._cells)

    @property
    def num_indexed_ids(self) -> int:
        """Total number of (cell, trajectory) postings."""
        return sum(cl.count for cl in self._cells.values())

    def storage_bits(self) -> int:
        """Storage footprint of the grid: cell keys + compressed posting lists."""
        bits = 0
        for compressed in self._cells.values():
            bits += 2 * 32  # cell coordinates
            bits += compressed.storage_bits
        # Rectangle bounds and grid metadata.
        bits += 4 * 64 + 2 * 32
        return bits

    def density(self) -> float:
        """Trajectory region density (Definition 5.1): postings per unit area.

        ``|R_i,gc|`` is taken as the rectangle's area; degenerate (zero-area)
        rectangles fall back to counting postings directly.
        """
        area = self.rect.area
        if area <= 0:
            return float(self.num_indexed_ids)
        return self.num_indexed_ids / area

    def count_for_points(self, points: np.ndarray) -> int:
        """How many of ``points`` fall inside this rectangle (TRD updates)."""
        points = np.asarray(points, dtype=float)
        if len(points) == 0:
            return 0
        return int(np.count_nonzero(self.rect.contains_points(points)))

"""Per-rectangle grid index with compressed trajectory-ID posting lists.

Each disjoint rectangle produced by the partition index is covered by a
uniform grid of cells of side ``g_c`` (Algorithm 3, line 11).  Every trajectory
point falling inside the rectangle is mapped to its cell and its trajectory ID
is appended to the cell's posting list, which is stored delta+Huffman
compressed (:mod:`repro.index.idcodec`).

Cell boundaries are anchored at the coordinate origin (cell ``(i, j)`` covers
``[i*g_c, (i+1)*g_c) x [j*g_c, (j+1)*g_c)``), not at the rectangle corner, so
that "the grid cell that (x, y) is in" (Definition 5.2) means the same cell
for every rectangle, every method and the ground truth used in the
experiments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.index.idcodec import CompressedIdList, compress_ids, decompress_ids
from repro.index.rectangles import Rect
from repro.reliability import faults as _faults
from repro.reliability.faults import FaultError


class PostingDecodeError(RuntimeError):
    """A grid cell's stored posting list could not be decoded.

    Wraps the low-level decode failure (corrupt Huffman stream, truncated
    bit stream, injected fault) with enough context -- the cell, the owning
    grid and the original cause -- for the query engine to quarantine the
    cell and recompute its postings from summary reconstructions instead of
    aborting the query.
    """

    def __init__(self, cell: tuple[int, int], grid: "GridIndex",
                 cause: BaseException) -> None:
        super().__init__(
            f"posting list of cell {cell} failed to decode: "
            f"{type(cause).__name__}: {cause}"
        )
        self.cell = cell
        self.grid = grid
        self.cause = cause
        self.transient = bool(getattr(cause, "transient", False))


def encode_cells(cells: np.ndarray) -> np.ndarray:
    """Pack integer ``(cx, cy)`` cell indices into sortable int64 codes.

    The encoding ``(cx << 32) + cy`` is injective for cell indices below
    2^31 in magnitude (far beyond any geographic grid) and is shared by
    :meth:`GridIndex.encoded_table` and the batched PI lookups.
    """
    cells = np.asarray(cells, dtype=np.int64)
    return (cells[..., 0] << np.int64(32)) + cells[..., 1]


class GridIndex:
    """Uniform grid over one rectangle, mapping cells to trajectory-ID lists.

    Parameters
    ----------
    rect:
        The rectangle covered by this grid.
    cell_size:
        Grid cell side length ``g_c``.
    """

    def __init__(self, rect: Rect, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be > 0")
        self.rect = rect
        self.cell_size = float(cell_size)
        self.num_cells_x = max(1, int(math.ceil(rect.width / self.cell_size)))
        self.num_cells_y = max(1, int(math.ceil(rect.height / self.cell_size)))
        # Cell -> compressed posting list.  Cells without points are absent.
        self._cells: dict[tuple[int, int], CompressedIdList] = {}
        # Staging area used while the index is being populated.
        self._staging: dict[tuple[int, int], set[int]] = {}
        # Lazily decoded posting lists (cell -> tuple of IDs).  Queries pay
        # the Huffman decode of a cell at most once between inserts; the
        # cache is derivable from the compressed lists, so it is not charged
        # to the index's storage accounting.
        self._decoded: dict[tuple[int, int], tuple[int, ...]] = {}
        # Sorted encoded-cell lookup table for the batched query path
        # (built lazily by encoded_table, invalidated on insert).
        self._table: tuple[np.ndarray, list[tuple[int, ...]]] | None = None

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    def insert(self, traj_ids: np.ndarray, points: np.ndarray) -> int:
        """Insert points (with their trajectory IDs) that fall inside the rect.

        Points outside the rectangle are ignored (they belong to a different
        rectangle of the partition index).  Returns the number of points
        actually inserted.
        """
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        points = np.asarray(points, dtype=float)
        if len(traj_ids) != len(points):
            raise ValueError("traj_ids and points must be aligned")
        mask = self.rect.contains_points(points) if len(points) else np.zeros(0, dtype=bool)
        inserted = 0
        for tid, point in zip(traj_ids[mask], points[mask]):
            cell = self.cell_of(point[0], point[1])
            self._staging.setdefault(cell, set()).add(int(tid))
            inserted += 1
        if inserted:
            self._flush()
        return inserted

    def _flush(self) -> None:
        """Re-compress the posting lists of cells touched since the last flush."""
        for cell, new_ids in self._staging.items():
            existing = self._cells.get(cell)
            ids = set(new_ids)
            if existing is not None:
                # Prefer the decoded cache: after a quarantine repair it is
                # the authoritative copy (the compressed payload may still be
                # the corrupt original).
                decoded = self._decoded.get(cell)
                ids.update(decoded if decoded is not None else self._decode_cell(cell, existing))
            self._cells[cell] = compress_ids(ids)
            self._decoded.pop(cell, None)
        self._table = None
        self._staging.clear()

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Globally-anchored grid cell indices of a point."""
        return int(math.floor(x / self.cell_size)), int(math.floor(y / self.cell_size))

    def cells_of(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`cell_of` for an ``(n, 2)`` array of points.

        Returns an ``(n, 2)`` integer array of cell indices, identical row by
        row to calling :meth:`cell_of` on each point.
        """
        points = np.asarray(points, dtype=float)
        return np.floor(points / self.cell_size).astype(np.int64)

    def _decode_cell(self, cell: tuple[int, int],
                     compressed: CompressedIdList) -> tuple[int, ...]:
        """Decode one compressed posting list, wrapping failures with context.

        This is the ``index.cell_decode`` fault-injection point; injected
        faults and genuine decode failures (corrupt Huffman streams raise
        ``ValueError``/``EOFError``/``KeyError`` from the codec layers) both
        surface as :class:`PostingDecodeError` so the engine's quarantine
        logic has a single exception type to catch.
        """
        try:
            if _faults.ACTIVE is not None:
                _faults.ACTIVE.check("index.cell_decode", key=cell)
            return tuple(decompress_ids(compressed))
        except (FaultError, ValueError, EOFError, KeyError) as exc:
            raise PostingDecodeError(cell, self, exc) from exc

    def patch_cell(self, cell: tuple[int, int], ids) -> None:
        """Install externally recovered postings for a quarantined cell.

        Used by the engine's degradation path after recomputing a corrupt
        cell's IDs from summary reconstructions: the decoded cache becomes
        the authoritative copy and the batched lookup table is invalidated
        so it is rebuilt from the patched postings.
        """
        self._decoded[cell] = tuple(int(i) for i in ids)
        self._table = None

    def ids_in_cell(self, cell: tuple[int, int]) -> list[int]:
        """Trajectory IDs stored in one grid cell (empty list if none)."""
        decoded = self._decoded.get(cell)
        if decoded is None:
            compressed = self._cells.get(cell)
            if compressed is None:
                return []
            self._decoded[cell] = decoded = self._decode_cell(cell, compressed)
        return list(decoded)

    def decoded_postings(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """Decode every posting list once and return the cell -> IDs map.

        The batched lookups read this map directly, turning per-query
        posting-list decompression into one decode per cell per index
        lifetime.  Treat the returned mapping (and its tuples) as read-only;
        it is invalidated cell by cell on insert.
        """
        if len(self._decoded) < len(self._cells):
            for cell, compressed in self._cells.items():
                if cell not in self._decoded:
                    self._decoded[cell] = self._decode_cell(cell, compressed)
        return self._decoded

    def encoded_table(self) -> tuple[np.ndarray, list[tuple[int, ...]]]:
        """Sorted encoded-cell table for batched lookups.

        Returns ``(codes, postings)`` where ``codes`` is a sorted int64 array
        of :func:`encode_cells`-encoded non-empty cells and ``postings[i]``
        is the decoded ID tuple of ``codes[i]``.  Batched lookups resolve all
        candidate cells of all queries against this table with a single
        ``searchsorted`` per grid, instead of one dict probe per (query,
        cell) pair.  Rebuilt lazily after inserts.
        """
        if self._table is None:
            postings = self.decoded_postings()
            cells = np.array(list(postings), dtype=np.int64).reshape(-1, 2)
            codes = encode_cells(cells)
            lists = list(postings.values())
            order = np.argsort(codes, kind="stable")
            self._table = (codes[order], [lists[i] for i in order.tolist()])
        return self._table

    def lookup(self, x: float, y: float) -> list[int]:
        """Trajectory IDs stored in the cell containing ``(x, y)``."""
        if not self.rect.contains(x, y):
            return []
        return self.ids_in_cell(self.cell_of(x, y))

    def lookup_cells(self, cells) -> set[int]:
        """Union of the ID lists of several cells."""
        result: set[int] = set()
        for cell in cells:
            result.update(self.ids_in_cell(cell))
        return result

    def covers(self, x: float, y: float) -> bool:
        """Whether the point falls inside this grid's rectangle."""
        return self.rect.contains(x, y)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def num_nonempty_cells(self) -> int:
        return len(self._cells)

    @property
    def num_indexed_ids(self) -> int:
        """Total number of (cell, trajectory) postings."""
        return sum(cl.count for cl in self._cells.values())

    def storage_bits(self) -> int:
        """Storage footprint of the grid: cell keys + compressed posting lists."""
        bits = 0
        for compressed in self._cells.values():
            bits += 2 * 32  # cell coordinates
            bits += compressed.storage_bits
        # Rectangle bounds and grid metadata.
        bits += 4 * 64 + 2 * 32
        return bits

    def density(self) -> float:
        """Trajectory region density (Definition 5.1): postings per unit area.

        ``|R_i,gc|`` is taken as the rectangle's area; degenerate (zero-area)
        rectangles fall back to counting postings directly.
        """
        area = self.rect.area
        if area <= 0:
            return float(self.num_indexed_ids)
        return self.num_indexed_ids / area

    def count_for_points(self, points: np.ndarray) -> int:
        """How many of ``points`` fall inside this rectangle (TRD updates)."""
        points = np.asarray(points, dtype=float)
        if len(points) == 0:
            return 0
        return int(np.count_nonzero(self.rect.contains_points(points)))

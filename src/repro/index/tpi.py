"""Temporal partition-based index (TPI) -- Algorithm 4 of the paper.

A single PI is reused across consecutive timestamps as long as the spatial
distribution of points does not change too much.  The change measure is the
average dropping rate (ADR) of the trajectory region density (TRD) of the
PI's rectangles:

* for each rectangle the dropping rate of its density relative to the value
  recorded when the PI was built is computed (Equation 13);
* a rectangle whose density dropped by more than ``epsilon_c`` counts towards
  the ADR (Equation 14);
* when the ADR exceeds ``epsilon_d`` the current time period is closed and a
  fresh PI is built ("Re-build"); otherwise only the points not covered by
  the current PI are indexed by appending new rectangles ("Insertion").

The TPI therefore produces a sequence of time periods, each with one PI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import IndexConfig
from repro.data.trajectory import TrajectoryDataset
from repro.index.pi import PartitionIndex, build_partition_index
from repro.reliability import faults as _faults


@dataclass
class TimePeriod:
    """One period of the TPI: a PI valid for timestamps ``[start, end]``."""

    start: int
    end: int
    index: PartitionIndex


@dataclass
class TPIStatistics:
    """Counters reported by the dynamic-organization experiments (Tables 7/8)."""

    num_periods: int = 0
    num_rebuilds: int = 0
    num_insertions: int = 0
    build_seconds: float = 0.0
    index_bits: int = 0

    @property
    def index_bytes(self) -> float:
        return self.index_bits / 8.0

    @property
    def index_megabytes(self) -> float:
        return self.index_bits / 8.0 / (1 << 20)


class TemporalPartitionIndex:
    """The TPI: time periods, each owning a partition-based index.

    Parameters
    ----------
    config:
        Index parameters; ``epsilon_c`` and ``epsilon_d`` control the
        re-build/insertion trade-off.
    seed:
        Seed forwarded to the per-period partitioning.
    """

    def __init__(self, config: IndexConfig | None = None, seed: int = 0) -> None:
        self.config = config or IndexConfig()
        self.seed = seed
        self.periods: list[TimePeriod] = []
        self.stats = TPIStatistics()

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def build(self, dataset: TrajectoryDataset,
              t_max: int | None = None) -> "TemporalPartitionIndex":
        """Consume the dataset timestamp by timestamp (Algorithm 4)."""
        import time as _time

        start_clock = _time.perf_counter()
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            self.insert_slice(slice_.t, slice_.traj_ids, slice_.points)
        self.stats.build_seconds = _time.perf_counter() - start_clock
        self.stats.num_periods = len(self.periods)
        self.stats.index_bits = self.storage_bits()
        return self

    def insert_slice(self, t: int, traj_ids: np.ndarray, points: np.ndarray) -> str:
        """Index the points of one timestamp; returns the action taken.

        The return value is one of ``"initial"``, ``"rebuild"``, ``"insert"``
        or ``"reuse"`` (reuse means the current PI already covered every point
        and the densities did not drop enough to trigger a re-build).
        """
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        points = np.asarray(points, dtype=float)
        if not self.periods:
            pi = build_partition_index(t, traj_ids, points, self.config, seed=self.seed)
            self.periods.append(TimePeriod(start=int(t), end=int(t), index=pi))
            return "initial"

        period = self.periods[-1]
        pi = period.index
        covered = pi.covered_mask(points)
        adr = self._average_dropping_rate(pi, points)
        if adr > self.config.epsilon_d:
            # Close the current period and rebuild from scratch for this t.
            period.end = int(t) - 1 if int(t) > period.start else period.end
            new_pi = build_partition_index(t, traj_ids, points, self.config, seed=self.seed)
            self.periods.append(TimePeriod(start=int(t), end=int(t), index=new_pi))
            self.stats.num_rebuilds += 1
            return "rebuild"

        period.end = int(t)
        # Covered points are inserted into the existing grids.
        if np.any(covered):
            pi.insert(traj_ids[covered], points[covered])
        uncovered = ~covered
        if np.any(uncovered):
            # Index the uncovered points with a fresh set of rectangles and
            # append them to the current PI (the "Insertion" case).  The new
            # rectangles may overlap older ones; queries union the posting
            # lists, so correctness is unaffected, and appending keeps the
            # per-timestamp update cost flat instead of re-shaping the whole
            # rectangle set online.
            addition = build_partition_index(
                t, traj_ids[uncovered], points[uncovered], self.config, seed=self.seed + 1
            )
            pi.append_grids(addition)
            self.stats.num_insertions += 1
            return "insert"
        return "reuse"

    def _average_dropping_rate(self, pi: PartitionIndex, points: np.ndarray) -> float:
        """ADR of the PI's rectangles for the new point distribution (Eq. 12-14)."""
        if not pi.grids:
            return 1.0
        baseline = pi.baseline_density
        dropped = 0
        for grid, base in zip(pi.grids, baseline):
            area = grid.rect.area
            count = grid.count_for_points(points)
            density = count / area if area > 0 else float(count)
            if base <= 0:
                continue
            rate = (density - base) / base
            if rate < 0 and abs(rate) > self.config.epsilon_c:
                dropped += 1
        return dropped / len(pi.grids)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def period_for(self, t: int) -> TimePeriod | None:
        """The time period containing timestamp ``t`` (binary search)."""
        lo, hi = 0, len(self.periods) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            period = self.periods[mid]
            if t < period.start:
                hi = mid - 1
            elif t > period.end:
                lo = mid + 1
            else:
                return period
        return None

    def lookup(self, x: float, y: float, t: int) -> list[int]:
        """Trajectory IDs indexed at the grid cell of ``(x, y)`` for time ``t``."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.check("index.tpi_lookup", key=int(t))
        period = self.period_for(int(t))
        if period is None:
            return []
        return period.index.lookup(x, y)

    def lookup_local(self, x: float, y: float, t: int, radius: float) -> list[int]:
        """Local-search lookup within ``radius`` (Section 5.2)."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.check("index.tpi_lookup", key=int(t))
        period = self.period_for(int(t))
        if period is None:
            return []
        return period.index.lookup_local(x, y, radius)

    # ------------------------------------------------------------------ #
    # batched lookup
    # ------------------------------------------------------------------ #
    def period_indices_for(self, ts: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`period_for`: index into :attr:`periods` per query.

        Returns an integer array aligned with ``ts``; entries are ``-1`` for
        timestamps not covered by any period.  Periods are non-overlapping
        and sorted by start, so one ``searchsorted`` resolves every query.
        """
        ts = np.asarray(ts, dtype=np.int64)
        if not self.periods or len(ts) == 0:
            return np.full(len(ts), -1, dtype=np.int64)
        starts = np.asarray([p.start for p in self.periods], dtype=np.int64)
        ends = np.asarray([p.end for p in self.periods], dtype=np.int64)
        idx = np.searchsorted(starts, ts, side="right") - 1
        clipped = np.clip(idx, 0, len(self.periods) - 1)
        valid = (idx >= 0) & (ts <= ends[clipped])
        return np.where(valid, clipped, -1)

    def lookup_batch(self, xs: np.ndarray, ys: np.ndarray, ts: np.ndarray) -> list[list[int]]:
        """Batched :meth:`lookup`: one candidate list per ``(x, y, t)`` query.

        Queries are grouped by the time period covering their timestamp and
        each period's PI is scanned once for all of its queries, so the cost
        of iterating rectangles is paid per period instead of per query.
        Entry ``i`` equals ``self.lookup(xs[i], ys[i], ts[i])``.
        """
        return self._dispatch_batch(xs, ys, ts, radius=None)

    def lookup_local_batch(self, xs: np.ndarray, ys: np.ndarray, ts: np.ndarray,
                           radius: float) -> list[list[int]]:
        """Batched :meth:`lookup_local`; entry ``i`` matches the scalar call."""
        return self._dispatch_batch(xs, ys, ts, radius=radius)

    def _dispatch_batch(self, xs: np.ndarray, ys: np.ndarray, ts: np.ndarray,
                        radius: float | None) -> list[list[int]]:
        """Group queries by period and fan them out to the per-period PIs."""
        if _faults.ACTIVE is not None:
            _faults.ACTIVE.check("index.tpi_lookup", key="batch")
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        ts = np.asarray(ts, dtype=np.int64)
        if not (len(xs) == len(ys) == len(ts)):
            raise ValueError("xs, ys and ts must be aligned")
        results: list[list[int]] = [[] for _ in range(len(ts))]
        period_idx = self.period_indices_for(ts)
        points = np.column_stack([xs, ys]) if len(ts) else np.empty((0, 2))
        for pidx in np.unique(period_idx):
            if pidx < 0:
                continue
            queries = np.nonzero(period_idx == pidx)[0]
            pi = self.periods[int(pidx)].index
            if radius is None:
                answers = pi.lookup_batch(points[queries])
            else:
                answers = pi.lookup_local_batch(points[queries], radius)
            for qi, ids in zip(queries, answers):
                results[int(qi)] = ids
        return results

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def num_periods(self) -> int:
        return len(self.periods)

    def storage_bits(self) -> int:
        """Total index size in bits across all periods."""
        bits = 0
        for period in self.periods:
            bits += period.index.storage_bits()
            bits += 2 * 64  # period boundaries
        return bits

    def storage_megabytes(self) -> float:
        return self.storage_bits() / 8.0 / (1 << 20)

"""Delta + Huffman compression of trajectory-ID lists (Section 5.1).

Every grid cell of the partition index stores the IDs of the trajectories
mapped to it.  Following the paper (and the cited integer-compression work)
the sorted ID list is delta encoded -- consecutive differences are small for
dense cells -- and the deltas are entropy coded with a Huffman codec built per
cell.  The compressed representation records exact bit counts so that index
sizes reported by the experiments are byte-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.utils.huffman import HuffmanCodec


@dataclass
class CompressedIdList:
    """A delta+Huffman compressed list of trajectory IDs.

    Attributes
    ----------
    payload:
        The Huffman-coded delta stream.
    bit_length:
        Number of meaningful bits in ``payload``.
    first_id:
        The smallest ID (the delta base).
    count:
        Number of IDs stored.
    codec:
        The Huffman codec used (kept so the list can be decompressed and so
        the code-table overhead can be charged to the storage cost).
    """

    payload: bytes
    bit_length: int
    first_id: int
    count: int
    codec: HuffmanCodec | None

    @property
    def storage_bits(self) -> int:
        """Total storage footprint in bits, including the code table."""
        table_bits = self.codec.table_bit_cost() if self.codec is not None else 0
        # 32 bits for the base ID and 32 bits for the count.
        return self.bit_length + table_bits + 64

    @property
    def storage_bytes(self) -> float:
        return self.storage_bits / 8.0


def compress_ids(ids: Iterable[int]) -> CompressedIdList:
    """Compress a collection of trajectory IDs.

    The IDs are de-duplicated and sorted before delta encoding, matching the
    set semantics of a grid cell's posting list.
    """
    unique = sorted(set(int(i) for i in ids))
    if not unique:
        return CompressedIdList(payload=b"", bit_length=0, first_id=0, count=0, codec=None)
    deltas = [unique[0] - unique[0]] + [b - a for a, b in zip(unique, unique[1:])]
    # The first entry's delta is always zero (relative to first_id); encoding
    # it keeps decode logic uniform.
    codec = HuffmanCodec.from_symbols(deltas)
    payload, bit_length = codec.encode(deltas)
    return CompressedIdList(
        payload=payload,
        bit_length=bit_length,
        first_id=unique[0],
        count=len(unique),
        codec=codec,
    )


def decompress_ids(compressed: CompressedIdList) -> list[int]:
    """Recover the sorted ID list from its compressed form."""
    if compressed.count == 0 or compressed.codec is None:
        return []
    deltas = compressed.codec.decode(compressed.payload, compressed.bit_length)
    if len(deltas) != compressed.count:
        raise ValueError(
            f"corrupt ID list: expected {compressed.count} deltas, decoded {len(deltas)}"
        )
    ids = []
    current = compressed.first_id
    for delta in deltas:
        current += delta
        ids.append(current)
    return ids


def raw_id_bits(ids: Sequence[int], bits_per_id: int = 32) -> int:
    """Uncompressed cost of an ID list, used for compression accounting."""
    return len(ids) * bits_per_id

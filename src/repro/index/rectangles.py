"""Axis-aligned rectangles and overlap removal for the partition index.

Algorithm 3 of the paper covers each partition of trajectory points with its
minimum bounding rectangle; when a new rectangle overlaps previously indexed
ones, the overlapping part is removed and the remaining polygon is split back
into non-overlapping rectangles (the polygon-to-rectangle conversion of
Gourley & Green).  We implement the equivalent subtraction directly on
rectangles: subtracting one rectangle from another yields at most four
disjoint rectangles, and subtracting a list of rectangles is the repeated
application of that step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Rect:
    """Closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(f"degenerate rectangle: {self}")

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    def contains(self, x: float, y: float) -> bool:
        """Whether the point lies inside (closed boundaries)."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an ``(n, 2)`` array."""
        points = np.asarray(points, dtype=float)
        return ((points[:, 0] >= self.min_x) & (points[:, 0] <= self.max_x)
                & (points[:, 1] >= self.min_y) & (points[:, 1] <= self.max_y))

    def expanded(self, margin: float) -> "Rect":
        """A copy grown by ``margin`` on every side (``margin >= 0``)."""
        if margin < 0:
            raise ValueError("margin must be >= 0")
        return Rect(self.min_x - margin, self.min_y - margin,
                    self.max_x + margin, self.max_y + margin)

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share any area (not just a boundary)."""
        return (self.min_x < other.max_x and other.min_x < self.max_x
                and self.min_y < other.max_y and other.min_y < self.max_y)

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when there is no overlap."""
        if not self.intersects(other):
            return None
        return Rect(
            min_x=max(self.min_x, other.min_x),
            min_y=max(self.min_y, other.min_y),
            max_x=min(self.max_x, other.max_x),
            max_y=min(self.max_y, other.max_y),
        )

    def subtract(self, other: "Rect") -> list["Rect"]:
        """Rectangles covering ``self`` minus ``other`` (at most four pieces).

        The pieces are pairwise disjoint (up to shared boundaries) and their
        union equals ``self`` with the interior of ``other`` removed.
        """
        overlap = self.intersection(other)
        if overlap is None:
            return [self]
        pieces: list[Rect] = []
        # Left strip.
        if self.min_x < overlap.min_x:
            pieces.append(Rect(self.min_x, self.min_y, overlap.min_x, self.max_y))
        # Right strip.
        if overlap.max_x < self.max_x:
            pieces.append(Rect(overlap.max_x, self.min_y, self.max_x, self.max_y))
        # Bottom strip (only across the overlapped x range).
        if self.min_y < overlap.min_y:
            pieces.append(Rect(overlap.min_x, self.min_y, overlap.max_x, overlap.min_y))
        # Top strip.
        if overlap.max_y < self.max_y:
            pieces.append(Rect(overlap.min_x, overlap.max_y, overlap.max_x, self.max_y))
        return [p for p in pieces if p.width > 0 and p.height > 0]


def minimum_bounding_rect(points: np.ndarray, padding: float = 0.0) -> Rect:
    """Minimum bounding rectangle of an ``(n, 2)`` point array.

    ``padding`` expands the rectangle symmetrically; Algorithm 3 uses a small
    padding so that points on the boundary fall strictly inside grid cells.
    """
    points = np.asarray(points, dtype=float)
    if points.size == 0:
        raise ValueError("cannot bound an empty point set")
    return Rect(
        min_x=float(points[:, 0].min()) - padding,
        min_y=float(points[:, 1].min()) - padding,
        max_x=float(points[:, 0].max()) + padding,
        max_y=float(points[:, 1].max()) + padding,
    )


def remove_overlap(rect: Rect, existing: list[Rect]) -> list[Rect]:
    """Subtract all ``existing`` rectangles from ``rect``.

    Returns a list of pairwise-disjoint rectangles covering exactly the part
    of ``rect`` not already covered by ``existing`` (the ``remove_overlap``
    function of Algorithm 3).  The list may be empty when ``rect`` is fully
    covered.
    """
    pieces = [rect]
    for other in existing:
        next_pieces: list[Rect] = []
        for piece in pieces:
            next_pieces.extend(piece.subtract(other))
        pieces = next_pieces
        if not pieces:
            break
    return pieces

"""Partition-based index (PI) for one timestamp -- Algorithm 3 of the paper.

Building a PI for the points of timestamp ``t``:

1. partition the points with the spatial criterion and threshold ``eps_s``
   (same procedure as PPQ partitioning, Equation 7 with ``eps_s``);
2. cover each partition with its minimum bounding rectangle;
3. remove overlaps against previously emitted rectangles, splitting the
   remainder into disjoint rectangles;
4. build a grid index (cell ``g_c``) per rectangle and insert every point's
   trajectory ID into its cell, with delta+Huffman compressed posting lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import IndexConfig
from repro.core.partitioning import partition_points
from repro.cqc.local_search import cells_within_radius, neighbor_cells
from repro.index.grid import GridIndex, encode_cells
from repro.index.rectangles import Rect, minimum_bounding_rect, remove_overlap

#: Cell offsets of the 3x3 local-search neighbourhood (``r <= g_c`` case),
#: pre-built for the broadcast path of :meth:`PartitionIndex.lookup_local_batch`.
_NEIGHBOR_OFFSETS = np.array([(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)],
                             dtype=np.int64)


@dataclass
class PartitionIndex:
    """The PI of one timestamp: a list of disjoint grid-indexed rectangles.

    Attributes
    ----------
    t:
        Timestamp the PI was built for (the earliest one when reused by TPI).
    grids:
        One :class:`~repro.index.grid.GridIndex` per disjoint rectangle.
    config:
        The index configuration the PI was built with.
    baseline_density:
        Rectangle densities at build time; the TPI compares current densities
        against these to compute the TRD dropping rate.
    """

    t: int
    grids: list[GridIndex] = field(default_factory=list)
    config: IndexConfig = field(default_factory=IndexConfig)
    baseline_density: list[float] = field(default_factory=list)
    # Cached (num_grids, 5) matrix of rectangle bounds + cell size, rebuilt
    # lazily when the grid list grows (rectangles themselves are immutable).
    _bounds: np.ndarray | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # building / updating
    # ------------------------------------------------------------------ #
    def insert(self, traj_ids: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Insert points into the grids that cover them.

        Returns a boolean mask of the points that were covered by at least
        one rectangle (uncovered points are the ``T_uc`` of Algorithm 4).
        """
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        points = np.asarray(points, dtype=float)
        covered = np.zeros(len(points), dtype=bool)
        for grid in self.grids:
            inside = grid.rect.contains_points(points) if len(points) else covered
            if np.any(inside):
                grid.insert(traj_ids[inside], points[inside])
                covered |= inside
        return covered

    def append_grids(self, other: "PartitionIndex") -> None:
        """Append another PI's rectangles (the *insertion* case of TPI)."""
        self.grids.extend(other.grids)
        self.baseline_density.extend(other.baseline_density)

    def extend_with(self, traj_ids: np.ndarray, points: np.ndarray, seed: int = 0) -> int:
        """Index previously uncovered points by growing the rectangle set.

        This is the *insertion* step of Algorithm 4: the uncovered points are
        partitioned with the same ``eps_s`` criterion, covered with minimum
        bounding rectangles, and -- exactly as in Algorithm 3 -- the parts
        already covered by this PI's existing rectangles are removed so the
        rectangle set stays disjoint (every point is indexed by exactly one
        grid).  Returns the number of rectangles added.
        """
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        points = np.asarray(points, dtype=float)
        if len(points) == 0:
            return 0
        labels, _centroids, _rounds = partition_points(points, self.config.epsilon_s, seed=seed)
        existing = [grid.rect for grid in self.grids]
        padding = self.config.grid_cell * 0.5
        added = 0
        for label in np.unique(labels):
            members = points[labels == label]
            rect = minimum_bounding_rect(members, padding=padding)
            for piece in remove_overlap(rect, existing):
                grid = GridIndex(piece, self.config.grid_cell)
                self.grids.append(grid)
                existing.append(piece)
                self.baseline_density.append(0.0)
                added += 1
        self.insert(traj_ids, points)
        # Newly added rectangles take their current density as the baseline.
        for offset in range(len(self.grids) - added, len(self.grids)):
            self.baseline_density[offset] = self.grids[offset].density()
        return added

    def snapshot_density(self) -> None:
        """Record current rectangle densities as the TRD baseline."""
        self.baseline_density = [grid.density() for grid in self.grids]

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def covered_mask(self, points: np.ndarray) -> np.ndarray:
        """Which of ``points`` fall inside any indexed rectangle."""
        points = np.asarray(points, dtype=float)
        covered = np.zeros(len(points), dtype=bool)
        for grid in self.grids:
            covered |= grid.rect.contains_points(points)
        return covered

    def lookup(self, x: float, y: float) -> list[int]:
        """Trajectory IDs whose indexed point shares the grid cell of (x, y)."""
        result: set[int] = set()
        for grid in self.grids:
            if grid.covers(x, y):
                result.update(grid.lookup(x, y))
        return sorted(result)

    def lookup_batch(self, points: np.ndarray) -> list[list[int]]:
        """Vectorised :meth:`lookup` for many query points at once.

        One pass is made over the grids: each grid tests every query point
        against its rectangle with a single vectorised containment check and
        resolves all matching queries' cells against its sorted encoded-cell
        table in one ``searchsorted``.  Entry ``i`` of the result is exactly
        ``self.lookup(points[i, 0], points[i, 1])``.
        """
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        found: list[set[int]] = [set() for _ in range(len(points))]
        if len(points) == 0:
            return []
        inside = self._containment_matrix(points, slack=None)
        for gi in np.nonzero(inside.any(axis=1))[0]:
            grid = self.grids[gi]
            queries = np.nonzero(inside[gi])[0]
            codes = encode_cells(grid.cells_of(points[queries]))
            self._scatter_postings(grid, codes, queries, found)
        return [sorted(ids) for ids in found]

    def lookup_local_batch(self, points: np.ndarray, radius: float) -> list[list[int]]:
        """Vectorised :meth:`lookup_local` for many query points at once.

        Same candidate semantics as the scalar version (entry ``i`` equals
        ``self.lookup_local(points[i, 0], points[i, 1], radius)``), but the
        rectangle slack test is broadcast over the whole batch and every
        query's candidate cells are matched against the grid's encoded-cell
        table with a single ``searchsorted`` per grid.
        """
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        found: list[set[int]] = [set() for _ in range(len(points))]
        if len(points) == 0:
            return []
        inside = self._containment_matrix(points, slack=max(radius, 0.0))
        for gi in np.nonzero(inside.any(axis=1))[0]:
            grid = self.grids[gi]
            queries = np.nonzero(inside[gi])[0]
            if radius > grid.cell_size:
                per_query_cells = [
                    cells_within_radius(
                        (points[qi, 0], points[qi, 1]), radius, (0.0, 0.0), grid.cell_size
                    )
                    for qi in queries
                ]
                lengths = [len(cells) for cells in per_query_cells]
                flat = [cell for cells in per_query_cells for cell in cells]
                codes = encode_cells(np.asarray(flat, dtype=np.int64).reshape(-1, 2))
                owners = np.repeat(queries, lengths)
            else:
                # 3x3 neighbourhood per query, broadcast in one shot.
                blocks = (grid.cells_of(points[queries])[:, None, :]
                          + _NEIGHBOR_OFFSETS[None, :, :])
                codes = encode_cells(blocks).ravel()
                owners = np.repeat(queries, _NEIGHBOR_OFFSETS.shape[0])
            self._scatter_postings(grid, codes, owners, found)
        return [sorted(ids) for ids in found]

    def _containment_matrix(self, points: np.ndarray, slack: float | None) -> np.ndarray:
        """Boolean (num_grids, num_points) rectangle-containment matrix.

        ``slack`` of ``None`` tests the rectangles as-is; otherwise each
        rectangle is expanded by ``slack + cell_size`` on every side, exactly
        like the scalar local-search lookup.  One broadcast replaces a
        Python-level rectangle test per (grid, query) pair.
        """
        bounds = self._grid_bounds()
        if len(bounds) == 0:
            return np.zeros((0, len(points)), dtype=bool)
        margin = 0.0 if slack is None else slack + bounds[:, 4]
        min_x = bounds[:, 0] - margin
        min_y = bounds[:, 1] - margin
        max_x = bounds[:, 2] + margin
        max_y = bounds[:, 3] + margin
        xs = points[:, 0]
        ys = points[:, 1]
        return ((xs >= min_x[:, None]) & (xs <= max_x[:, None])
                & (ys >= min_y[:, None]) & (ys <= max_y[:, None]))

    def _grid_bounds(self) -> np.ndarray:
        """Cached per-grid ``(min_x, min_y, max_x, max_y, cell_size)`` rows."""
        if self._bounds is None or len(self._bounds) != len(self.grids):
            self._bounds = np.array(
                [[g.rect.min_x, g.rect.min_y, g.rect.max_x, g.rect.max_y, g.cell_size]
                 for g in self.grids], dtype=float,
            ).reshape(len(self.grids), 5)
        return self._bounds

    @staticmethod
    def _scatter_postings(grid: GridIndex, codes: np.ndarray, owners: np.ndarray,
                          found: list[set[int]]) -> None:
        """Union each matched cell's postings into its owning query's set.

        ``codes`` are encoded candidate cells, ``owners`` the parallel array
        of query indices.  Cells are matched against the grid's sorted table
        with one ``searchsorted``; only non-empty cells reach the Python
        loop.
        """
        table_codes, table_postings = grid.encoded_table()
        if len(table_codes) == 0 or len(codes) == 0:
            return
        positions = np.searchsorted(table_codes, codes)
        positions[positions == len(table_codes)] = 0
        hits = table_codes[positions] == codes
        for qi, pos in zip(owners[hits].tolist(), positions[hits].tolist()):
            found[qi].update(table_postings[pos])

    def lookup_local(self, x: float, y: float, radius: float) -> list[int]:
        """Local-search lookup (Section 5.2) around ``(x, y)``.

        When ``radius`` exceeds the grid cell size every cell intersecting the
        disc is scanned; otherwise the query cell and its neighbours are
        scanned.  Grids whose rectangle lies within ``radius + g_c`` of the
        query point participate even when the point itself falls just outside
        them (indexed reconstructions deviate from the true positions by up to
        the CQC bound).  The caller is responsible for any distance-based
        filtering of the returned candidates.
        """
        result: set[int] = set()
        for grid in self.grids:
            slack = max(radius, 0.0) + grid.cell_size
            if not grid.rect.expanded(slack).contains(x, y):
                continue
            if radius > grid.cell_size:
                cells = cells_within_radius((x, y), radius, (0.0, 0.0), grid.cell_size)
            else:
                cells = neighbor_cells(grid.cell_of(x, y))
            result.update(grid.lookup_cells(cells))
        return sorted(result)

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def num_rectangles(self) -> int:
        return len(self.grids)

    @property
    def num_indexed_ids(self) -> int:
        return sum(grid.num_indexed_ids for grid in self.grids)

    def storage_bits(self) -> int:
        """Total storage footprint of the PI in bits."""
        return sum(grid.storage_bits() for grid in self.grids) + 64

    def densities(self) -> list[float]:
        """Current TRD of each rectangle."""
        return [grid.density() for grid in self.grids]


def build_partition_index(t: int, traj_ids: np.ndarray, points: np.ndarray,
                          config: IndexConfig, seed: int = 0) -> PartitionIndex:
    """Build the PI of one timestamp (Algorithm 3).

    Parameters
    ----------
    t:
        Timestamp being indexed.
    traj_ids, points:
        Aligned arrays of trajectory IDs and positions at ``t``.
    config:
        Index parameters (``epsilon_s``, ``grid_cell``).
    seed:
        Random seed for the partitioning step.
    """
    traj_ids = np.asarray(traj_ids, dtype=np.int64)
    points = np.asarray(points, dtype=float)
    pi = PartitionIndex(t=int(t), config=config)
    if len(points) == 0:
        return pi

    labels, _centroids, _rounds = partition_points(
        points, config.epsilon_s, seed=seed
    )
    region_list: list[Rect] = []
    grids: list[GridIndex] = []
    # Pad every rectangle by half a grid cell so that degenerate partitions
    # (a single point) still cover a full cell and nearby points inserted at
    # later timestamps remain covered.
    padding = config.grid_cell * 0.5
    for label in np.unique(labels):
        members = points[labels == label]
        rect = minimum_bounding_rect(members, padding=padding)
        pieces = remove_overlap(rect, region_list)
        for piece in pieces:
            region_list.append(piece)
            grids.append(GridIndex(piece, config.grid_cell))
    pi.grids = grids
    pi.insert(traj_ids, points)
    pi.snapshot_density()
    return pi

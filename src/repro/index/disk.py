"""Simulated page store and disk-backed index for the I/O experiments.

Section 5.1 (end) and Section 6.5 of the paper evaluate a disk-resident
deployment: the trajectory points of a time period are written to fixed-size
pages together with the corresponding part of the summary, and a lightweight
index records, per period, the starting page and the number of pages.  A
spatio-temporal query then touches only the pages of the relevant period
(TPI), of a single timestamp (per-timestamp PI), or of the spatial cells of a
shared quadtree (TrajStore), and the number of page reads is the I/O cost.

We simulate the page device: pages are byte-sized buckets, writes append
records with explicit byte costs and reads are counted.  No real disk is
touched, which keeps the experiments deterministic while preserving the
quantity the paper reports (page I/O counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import IndexConfig
from repro.data.trajectory import TrajectoryDataset
from repro.index.tpi import TemporalPartitionIndex


#: Bytes charged per stored trajectory point: trajectory id (4), timestamp (4)
#: and two float32 coordinates (8).
POINT_RECORD_BYTES = 16

#: Bytes charged per point for the slice of the quantized summary (codeword
#: index, CQC code, partition id) co-located with the period's pages.
SUMMARY_RECORD_BYTES = 4


@dataclass
class PageStore:
    """Append-only page device with read/write accounting.

    Parameters
    ----------
    page_size_bytes:
        Capacity of one page (the paper uses 1 MB pages).
    """

    page_size_bytes: int = 1 << 20
    _pages: list[int] = field(default_factory=list)
    reads: int = 0
    writes: int = 0

    def __post_init__(self) -> None:
        if self.page_size_bytes <= 0:
            raise ValueError("page_size_bytes must be > 0")

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        """Open a new empty page and return its page number."""
        self._pages.append(0)
        self.writes += 1
        return len(self._pages) - 1

    def append(self, page_number: int, num_bytes: int) -> bool:
        """Try to append ``num_bytes`` to the page; ``False`` when it is full."""
        if not 0 <= page_number < len(self._pages):
            raise IndexError(f"unknown page {page_number}")
        if self._pages[page_number] + num_bytes > self.page_size_bytes:
            return False
        self._pages[page_number] += num_bytes
        return True

    def write_sequence(self, total_bytes: int) -> tuple[int, int]:
        """Write ``total_bytes`` across as many fresh pages as needed.

        Returns ``(start_page, num_pages)``; always allocates at least one
        page so that empty periods still have an addressable location.
        """
        start = self.allocate()
        remaining = int(total_bytes)
        current = start
        while remaining > self.page_size_bytes:
            self._pages[current] = self.page_size_bytes
            remaining -= self.page_size_bytes
            current = self.allocate()
        self._pages[current] = remaining
        return start, current - start + 1

    def read_page(self, page_number: int) -> None:
        """Count one page read."""
        if not 0 <= page_number < len(self._pages):
            raise IndexError(f"unknown page {page_number}")
        self.reads += 1

    def read_range(self, start_page: int, num_pages: int) -> None:
        """Count sequential reads of ``num_pages`` pages starting at ``start_page``."""
        for page in range(start_page, start_page + num_pages):
            self.read_page(page)


@dataclass
class _PeriodLocation:
    """Lightweight per-period disk index entry.

    Stores the period boundaries, the page run holding the period's records
    and, because records are written in time order, the byte offset at which
    each timestamp's records start -- which lets a query read only the pages
    containing the queried timestamp instead of the whole period.
    """

    start_t: int
    end_t: int
    start_page: int
    num_pages: int
    timestamp_offsets: dict[int, tuple[int, int]]


class DiskBackedIndex:
    """TPI (or per-timestamp PI) laid out on a simulated page store.

    The index assigns the raw points (and, conceptually, the matching slice of
    the summary) of every time period to a run of pages and keeps the
    lightweight (period, start page, page count) table in memory.  Query I/O
    is the number of pages of the periods that intersect the query time,
    optionally narrowed to single timestamps for the per-timestamp layout.

    Parameters
    ----------
    config:
        Index configuration (page size, TPI thresholds).
    per_timestamp:
        When ``True`` every timestamp gets its own period (the "PI" row of
        Table 9); otherwise the TPI period structure is used.
    """

    def __init__(self, config: IndexConfig | None = None, per_timestamp: bool = False,
                 seed: int = 0) -> None:
        self.config = config or IndexConfig()
        self.per_timestamp = per_timestamp
        self.seed = seed
        self.store = PageStore(page_size_bytes=self.config.page_size_bytes)
        self.tpi: TemporalPartitionIndex | None = None
        self._locations: list[_PeriodLocation] = []
        self.build_seconds = 0.0

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def build(self, dataset: TrajectoryDataset, t_max: int | None = None) -> "DiskBackedIndex":
        """Build the in-memory index structure and lay the data out on pages."""
        import time as _time

        start_clock = _time.perf_counter()
        config = self.config
        if self.per_timestamp:
            # Force a re-build at every timestamp by making the ADR test
            # always fire (epsilon_d = -1 accepts any non-negative ADR).
            config = IndexConfig(
                epsilon_s=config.epsilon_s, grid_cell=config.grid_cell,
                epsilon_c=config.epsilon_c, epsilon_d=0.0,
                page_size_bytes=config.page_size_bytes,
            )
            config.epsilon_d = -1.0
        tpi = TemporalPartitionIndex(config, seed=self.seed)
        tpi.build(dataset, t_max=t_max)
        self.tpi = tpi
        self._layout(dataset, t_max=t_max)
        self.build_seconds = _time.perf_counter() - start_clock
        return self

    def _layout(self, dataset: TrajectoryDataset, t_max: int | None) -> None:
        """Write each period's points (plus their summary slice) to pages.

        The in-memory TPI grid structure is *not* written to the pages -- it
        is accounted for separately by :meth:`index_size_megabytes`; the pages
        hold the raw point records and the per-point summary slice, matching
        the layout described at the end of Section 5.1.
        """
        assert self.tpi is not None
        counts: dict[int, int] = {}
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            counts[slice_.t] = len(slice_)
        record_bytes = POINT_RECORD_BYTES + SUMMARY_RECORD_BYTES
        for period in self.tpi.periods:
            offsets: dict[int, tuple[int, int]] = {}
            cursor = 0
            for t in sorted(counts):
                if period.start <= t <= period.end:
                    length = counts[t] * record_bytes
                    offsets[t] = (cursor, length)
                    cursor += length
            start_page, num_pages = self.store.write_sequence(max(1, cursor))
            self._locations.append(
                _PeriodLocation(period.start, period.end, start_page, num_pages, offsets)
            )

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(self, x: float, y: float, t: int) -> list[int]:
        """Answer an STRQ against the disk layout, counting page I/Os.

        Because records are laid out in time order inside a period's page
        run, only the pages holding the queried timestamp (plus the period's
        leading page, which carries the summary slice header) are read.
        """
        if self.tpi is None:
            raise RuntimeError("index has not been built")
        location = self._location_for(int(t))
        if location is None:
            return []
        offset = location.timestamp_offsets.get(int(t))
        pages_to_read = {location.start_page}
        if offset is not None:
            begin, length = offset
            first = location.start_page + begin // self.store.page_size_bytes
            last = (location.start_page
                    + max(begin, begin + length - 1) // self.store.page_size_bytes)
            last = min(last, location.start_page + location.num_pages - 1)
            pages_to_read.update(range(first, last + 1))
        for page in sorted(pages_to_read):
            self.store.read_page(page)
        return self.tpi.lookup(x, y, int(t))

    def _location_for(self, t: int) -> _PeriodLocation | None:
        for location in self._locations:
            if location.start_t <= t <= location.end_t:
                return location
        return None

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def num_ios(self) -> int:
        """Page reads performed so far."""
        return self.store.reads

    def reset_io_counters(self) -> None:
        self.store.reads = 0

    def index_size_megabytes(self) -> float:
        """Size of the index structure (not the paged raw data) in MiB."""
        if self.tpi is None:
            return 0.0
        # Lightweight period table: 4 integers per entry.
        table_bits = len(self._locations) * 4 * 32
        return (self.tpi.storage_bits() + table_bits) / 8.0 / (1 << 20)

    def data_size_megabytes(self) -> float:
        """Size of the paged data in MiB (pages actually used)."""
        return sum(self.store._pages) / (1 << 20)

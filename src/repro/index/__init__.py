"""Spatio-temporal indexing of quantized trajectories (Section 5 of the paper).

* :mod:`repro.index.rectangles` -- minimum bounding rectangles and the
  overlap-removal step that turns overlapping partition rectangles into a
  disjoint set (Algorithm 3, lines 6-8).
* :mod:`repro.index.grid` -- the per-rectangle grid index with compressed
  trajectory-ID lists per cell.
* :mod:`repro.index.idcodec` -- delta + Huffman compression of ID lists.
* :mod:`repro.index.pi` -- the partition-based index (PI) built for one
  timestamp (Algorithm 3).
* :mod:`repro.index.tpi` -- the temporal partition-based index (TPI) that
  reuses PIs across timestamps based on the TRD average dropping rate
  (Algorithm 4).
* :mod:`repro.index.disk` -- a simulated page store with I/O accounting for
  the disk-resident experiments (Table 9).
"""

from repro.index.rectangles import Rect, minimum_bounding_rect, remove_overlap
from repro.index.idcodec import CompressedIdList, compress_ids, decompress_ids
from repro.index.grid import GridIndex
from repro.index.pi import PartitionIndex, build_partition_index
from repro.index.tpi import TemporalPartitionIndex, TPIStatistics
from repro.index.disk import PageStore, DiskBackedIndex

__all__ = [
    "Rect",
    "minimum_bounding_rect",
    "remove_overlap",
    "CompressedIdList",
    "compress_ids",
    "decompress_ids",
    "GridIndex",
    "PartitionIndex",
    "build_partition_index",
    "TemporalPartitionIndex",
    "TPIStatistics",
    "PageStore",
    "DiskBackedIndex",
]

"""Save and load fitted PPQ-trajectory models as versioned artifacts.

:func:`save_model` serializes everything a serving process needs to answer
queries without re-running ``fit()``:

* ``CONFIG``  -- the quantizer/CQC/index configuration and variant (JSON);
* ``CODEBOOK`` -- the error-bounded codebook as a raw float64 buffer;
* ``RECORDS`` -- the per-timestamp summary records: prediction coefficients,
  partition assignments, codeword indices and the CQC bit streams (packed
  through :mod:`repro.utils.bitio`);
* ``RECON``   -- the cached ε₁-bounded reconstructions, kept so that a
  loaded model reproduces the in-memory model's answers bit for bit;
* ``INDEX``   -- the TPI: time periods, partition-index rectangles and each
  grid cell's delta+Huffman compressed posting list (the Huffman codecs are
  persisted as canonical code lengths);
* ``RAWDATA`` -- optionally, the raw trajectories, which exact-match
  queries verify against.

:func:`load_model` restores a query-ready :class:`~repro.core.pipeline.PPQTrajectory`
(with its :class:`~repro.queries.engine.QueryEngine` wired to the stored
index) and :func:`inspect_model` reports an artifact's layout and checksum
status without constructing the model.  The container layout itself lives
in :mod:`repro.storage.format` and is specified in ``docs/ARTIFACT_FORMAT.md``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.codebook import Codebook
from repro.core.config import CQCConfig, IndexConfig, PPQConfig
from repro.core.summary import TimestepRecord, TrajectorySummary
from repro.cqc.coding import CQCCoder
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.index.grid import GridIndex
from repro.index.idcodec import CompressedIdList
from repro.index.pi import PartitionIndex
from repro.index.rectangles import Rect
from repro.index.tpi import TemporalPartitionIndex, TimePeriod
from repro.reliability import faults as _faults
from repro.reliability.salvage import LoadReport
from repro.storage.format import (
    FORMAT_VERSION,
    ArtifactChecksumError,
    ArtifactFormatError,
    ByteReader,
    ByteWriter,
    SectionInfo,
    inspect_artifact,
    unpack_artifact,
    write_artifact_file,
)
from repro.utils.bitio import BitReader, BitWriter
from repro.utils.huffman import HuffmanCodec

#: Section names, in the order they are written.
SECTION_CONFIG = "CONFIG"
SECTION_CODEBOOK = "CODEBOOK"
SECTION_RECORDS = "RECORDS"
SECTION_RECON = "RECON"
SECTION_INDEX = "INDEX"
SECTION_RAWDATA = "RAWDATA"

_REQUIRED_SECTIONS = (SECTION_CONFIG, SECTION_CODEBOOK, SECTION_RECORDS,
                      SECTION_RECON, SECTION_INDEX)


# ---------------------------------------------------------------------- #
# CONFIG section
# ---------------------------------------------------------------------- #
def _encode_config(system) -> bytes:
    from repro import __version__

    config = {
        "library_version": __version__,
        "variant": system.variant,
        "ppq": {
            "epsilon1": system.ppq_config.epsilon1,
            "epsilon_p": system.ppq_config.epsilon_p,
            "criterion": system.ppq_config.criterion.value,
            "prediction_order": system.ppq_config.prediction_order,
            "max_partitions": system.ppq_config.max_partitions,
            "partition_growth": system.ppq_config.partition_growth,
            "kmeans_iterations": system.ppq_config.kmeans_iterations,
            "max_codewords_per_step": system.ppq_config.max_codewords_per_step,
            "use_prediction": system.ppq_config.use_prediction,
            "seed": system.ppq_config.seed,
        },
        "cqc": {
            "grid_size": system.cqc_config.grid_size,
            "enabled": system.cqc_config.enabled,
        },
        "index": {
            "epsilon_s": system.index_config.epsilon_s,
            "grid_cell": system.index_config.grid_cell,
            "epsilon_c": system.index_config.epsilon_c,
            "epsilon_d": system.index_config.epsilon_d,
            "page_size_bytes": system.index_config.page_size_bytes,
        },
    }
    return json.dumps(config, sort_keys=True).encode("utf-8")


def _decode_config(payload: bytes) -> dict:
    try:
        config = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactFormatError(f"CONFIG section is not valid JSON: {exc}") from exc
    for key in ("variant", "ppq", "cqc", "index"):
        if key not in config:
            raise ArtifactFormatError(f"CONFIG section is missing the {key!r} entry")
    return config


# ---------------------------------------------------------------------- #
# RECORDS section (summary)
# ---------------------------------------------------------------------- #
def _encode_records(summary: TrajectorySummary) -> bytes:
    writer = ByteWriter()
    timestamps = summary.timestamps
    writer.u64(len(timestamps))
    for t in timestamps:
        record = summary.records[t]
        writer.i64(int(t))

        partitions = sorted(record.coefficients)
        writer.u64(len(partitions))
        for pid in partitions:
            writer.i64(int(pid))
            writer.array(np.asarray(record.coefficients[pid], dtype=np.float64))

        tids = np.asarray(sorted(record.partition_of), dtype=np.int64)
        writer.array(tids)
        writer.array(np.asarray([record.partition_of[int(tid)] for tid in tids],
                                dtype=np.int64))

        tids = np.asarray(sorted(record.codeword_index), dtype=np.int64)
        writer.array(tids)
        writer.array(np.asarray([record.codeword_index[int(tid)] for tid in tids],
                                dtype=np.int64))

        cqc_tids = np.asarray(sorted(record.cqc_codes), dtype=np.int64)
        writer.array(cqc_tids)
        lengths = np.asarray([len(record.cqc_codes[int(tid)]) for tid in cqc_tids],
                             dtype=np.int64)
        writer.array(lengths)
        bits = BitWriter()
        for tid in cqc_tids:
            bits.write_code(record.cqc_codes[int(tid)])
        writer.blob(bits.to_bytes())
    return writer.getvalue()


def _decode_records(payload: bytes, summary: TrajectorySummary) -> None:
    reader = ByteReader(payload)
    for _ in range(reader.u64()):
        record = TimestepRecord(t=reader.i64())

        for _ in range(reader.u64()):
            pid = reader.i64()
            record.coefficients[pid] = reader.array()

        tids = reader.array()
        pids = reader.array()
        record.partition_of = {int(tid): int(pid) for tid, pid in zip(tids, pids)}

        tids = reader.array()
        indices = reader.array()
        record.codeword_index = {int(tid): int(idx) for tid, idx in zip(tids, indices)}

        cqc_tids = reader.array()
        lengths = reader.array()
        bits = BitReader(reader.blob())
        for tid, width in zip(cqc_tids, lengths):
            try:
                record.cqc_codes[int(tid)] = bits.read_bitstring(int(width))
            except EOFError as exc:
                raise ArtifactFormatError("truncated CQC bit stream") from exc
        summary.records[record.t] = record


# ---------------------------------------------------------------------- #
# RECON section (cached reconstructions)
# ---------------------------------------------------------------------- #
def _encode_reconstructions(summary: TrajectorySummary) -> bytes:
    entries: list[tuple[int, int]] = []
    for tid in sorted(summary._reconstructions):
        for t in sorted(summary._reconstructions[tid]):
            entries.append((tid, t))
    writer = ByteWriter()
    writer.u64(len(entries))
    if entries:
        tids = np.asarray([tid for tid, _ in entries], dtype=np.int64)
        ts = np.asarray([t for _, t in entries], dtype=np.int64)
        points = np.asarray(
            [summary._reconstructions[tid][t] for tid, t in entries], dtype=np.float64
        )
        writer.array(tids)
        writer.array(ts)
        writer.array(points)
    return writer.getvalue()


def _decode_reconstructions(payload: bytes, summary: TrajectorySummary) -> None:
    reader = ByteReader(payload)
    if reader.u64() == 0:
        return
    tids = reader.array()
    ts = reader.array()
    points = reader.array()
    if not (len(tids) == len(ts) == len(points)):
        raise ArtifactFormatError("RECON arrays are not aligned")
    for tid, t, point in zip(tids, ts, points):
        summary._reconstructions.setdefault(int(tid), {})[int(t)] = point


# ---------------------------------------------------------------------- #
# INDEX section (TPI)
# ---------------------------------------------------------------------- #
def _encode_grid(writer: ByteWriter, grid: GridIndex, baseline: float) -> None:
    rect = grid.rect
    writer.f64(rect.min_x)
    writer.f64(rect.min_y)
    writer.f64(rect.max_x)
    writer.f64(rect.max_y)
    writer.f64(grid.cell_size)
    writer.f64(baseline)
    cells = sorted(grid._cells)
    writer.u64(len(cells))
    for cell in cells:
        compressed = grid._cells[cell]
        writer.i64(cell[0])
        writer.i64(cell[1])
        writer.i64(compressed.first_id)
        writer.u64(compressed.count)
        writer.u64(compressed.bit_length)
        writer.blob(compressed.payload)
        lengths = compressed.codec.code_lengths if compressed.codec is not None else {}
        writer.u64(len(lengths))
        for symbol in sorted(lengths):
            writer.i64(int(symbol))
            writer.u8(int(lengths[symbol]))


def _decode_grid(reader: ByteReader, config: IndexConfig) -> tuple[GridIndex, float]:
    rect = Rect(reader.f64(), reader.f64(), reader.f64(), reader.f64())
    cell_size = reader.f64()
    baseline = reader.f64()
    grid = GridIndex(rect, cell_size)
    for _ in range(reader.u64()):
        cell = (reader.i64(), reader.i64())
        first_id = reader.i64()
        count = reader.u64()
        bit_length = reader.u64()
        payload = reader.blob()
        lengths = {}
        for _ in range(reader.u64()):
            symbol = reader.i64()
            lengths[symbol] = reader.u8()
        codec = HuffmanCodec.from_code_lengths(lengths) if lengths else None
        grid._cells[cell] = CompressedIdList(
            payload=payload, bit_length=bit_length,
            first_id=first_id, count=count, codec=codec,
        )
    return grid, baseline


def _encode_index(index: TemporalPartitionIndex) -> bytes:
    writer = ByteWriter()
    writer.i64(index.seed)
    writer.u64(index.stats.num_rebuilds)
    writer.u64(index.stats.num_insertions)
    writer.f64(index.stats.build_seconds)
    writer.u64(len(index.periods))
    for period in index.periods:
        writer.i64(period.start)
        writer.i64(period.end)
        pi = period.index
        writer.i64(pi.t)
        writer.u64(len(pi.grids))
        baselines = pi.baseline_density or [0.0] * len(pi.grids)
        for grid, baseline in zip(pi.grids, baselines):
            _encode_grid(writer, grid, float(baseline))
    return writer.getvalue()


def _decode_index(payload: bytes, config: IndexConfig) -> TemporalPartitionIndex:
    reader = ByteReader(payload)
    index = TemporalPartitionIndex(config, seed=reader.i64())
    index.stats.num_rebuilds = reader.u64()
    index.stats.num_insertions = reader.u64()
    index.stats.build_seconds = reader.f64()
    for _ in range(reader.u64()):
        start = reader.i64()
        end = reader.i64()
        pi = PartitionIndex(t=reader.i64(), config=config)
        for _ in range(reader.u64()):
            grid, baseline = _decode_grid(reader, config)
            pi.grids.append(grid)
            pi.baseline_density.append(baseline)
        index.periods.append(TimePeriod(start=start, end=end, index=pi))
    index.stats.num_periods = len(index.periods)
    index.stats.index_bits = index.storage_bits()
    return index


# ---------------------------------------------------------------------- #
# RAWDATA section
# ---------------------------------------------------------------------- #
def _encode_dataset(dataset: TrajectoryDataset) -> bytes:
    writer = ByteWriter()
    traj_ids = dataset.trajectory_ids
    writer.u64(len(traj_ids))
    for tid in traj_ids:
        traj = dataset.get(tid)
        writer.i64(int(tid))
        writer.array(np.asarray(traj.timestamps, dtype=np.int64))
        writer.array(np.asarray(traj.points, dtype=np.float64))
    return writer.getvalue()


def _decode_dataset(payload: bytes) -> TrajectoryDataset:
    reader = ByteReader(payload)
    trajectories = []
    for _ in range(reader.u64()):
        tid = reader.i64()
        timestamps = reader.array()
        points = reader.array()
        trajectories.append(Trajectory(traj_id=tid, points=points, timestamps=timestamps))
    return TrajectoryDataset(trajectories)


# ---------------------------------------------------------------------- #
# public API
# ---------------------------------------------------------------------- #
def save_model(system, path: str | Path, include_raw: bool = True) -> Path:
    """Serialize a fitted PPQ-trajectory system to a versioned artifact file.

    Parameters
    ----------
    system:
        A fitted :class:`~repro.core.pipeline.PPQTrajectory` (``fit()`` must
        have been called with ``build_index=True``).
    path:
        Destination file; written atomically (temp file + rename).
    include_raw:
        Whether to embed the raw trajectories in a ``RAWDATA`` section.
        Exact-match queries verify candidates against the raw data, so a
        model saved with ``include_raw=False`` loads without exact-query
        support (STRQ/TPQ are unaffected) and is correspondingly smaller.

    Returns
    -------
    pathlib.Path
        The path written.

    Raises
    ------
    RuntimeError
        If the system has no summary or no query engine (not fitted).
    OSError
        If the file cannot be written.
    """
    if system.summary is None:
        raise RuntimeError("cannot save an unfitted model: call fit() first")
    if system.engine is None:
        raise RuntimeError("cannot save a model without an index: "
                           "call fit(build_index=True) first")
    sections = [
        (SECTION_CONFIG, _encode_config(system)),
        (SECTION_CODEBOOK, _encode_codebook(system.summary.codebook)),
        (SECTION_RECORDS, _encode_records(system.summary)),
        (SECTION_RECON, _encode_reconstructions(system.summary)),
        (SECTION_INDEX, _encode_index(system.engine.index)),
    ]
    if include_raw and system.engine.raw_dataset is not None:
        sections.append((SECTION_RAWDATA, _encode_dataset(system.engine.raw_dataset)))
    written = write_artifact_file(path, sections)
    # The freshly written artifact reproduces this engine's answers exactly,
    # so parallel workers may load it on the engine's behalf.
    system.engine.source_path = str(written)
    return written


def _encode_codebook(codebook: Codebook) -> bytes:
    writer = ByteWriter()
    writer.array(np.asarray(codebook.codewords, dtype=np.float64))
    return writer.getvalue()


def _decode_codebook(payload: bytes) -> Codebook:
    codewords = ByteReader(payload).array()
    codebook = Codebook(initial_capacity=max(64, len(codewords)))
    codebook.extend(codewords)
    return codebook


def _read_section(payloads: dict[str, bytes], name: str) -> bytes:
    """Fetch one section payload; the ``storage.section_read`` fault point."""
    if _faults.ACTIVE is not None:
        _faults.ACTIVE.check("storage.section_read", key=name)
    return payloads[name]


#: Sections that cannot be rebuilt from other sections.  When one of these
#: is damaged there is no model, so even ``strict=False`` loads raise.
_NON_DERIVABLE_SECTIONS = (SECTION_CONFIG, SECTION_CODEBOOK, SECTION_RECORDS)


def load_model(path: str | Path, verify: bool = True, strict: bool = True):
    """Load a model artifact into a query-ready ``PPQTrajectory``.

    The returned system answers STRQ/TPQ (and, when the artifact has a
    ``RAWDATA`` section, exact-match) queries -- scalar or batched --
    identically to the system that was saved, without refitting: the
    summary, codebook, reconstructions and the full TPI are restored from
    the artifact.

    Parameters
    ----------
    path:
        An artifact produced by :func:`save_model`.
    verify:
        When true (the default), every section's CRC32 is verified before
        decoding (strict mode only; non-strict loads always consult the
        checksums to decide what to salvage).
    strict:
        When true (the default), any damage raises.  With ``strict=False``
        the loader salvages what it can: the config, codebook and summary
        records must be intact (they are not derivable), but a damaged or
        truncated reconstruction cache is recomputed lazily from the
        records, a damaged index is rebuilt from the summary's
        reconstructions, and a damaged raw-data section is dropped with a
        ``RuntimeWarning`` (disabling exact-match queries).  The resulting
        system's ``load_report`` (a
        :class:`~repro.reliability.salvage.LoadReport`) lists every
        section's fate; rebuilt sections are bit-identical to the originals
        because both are deterministic functions of the summary.

    Returns
    -------
    PPQTrajectory
        The restored system (its ``engine`` uses the stored index), with a
        ``load_report`` attribute describing per-section outcomes.

    Raises
    ------
    OSError
        If the file cannot be read.
    ArtifactFormatError
        If the file is not a well-formed artifact or a non-salvageable
        section is missing.
    ArtifactVersionError
        If the artifact was written by a newer format version.
    ArtifactChecksumError
        If a checksum mismatch affects a section the load cannot proceed
        without (any section in strict mode with ``verify=True``; the
        config/codebook/records sections in non-strict mode).
    """
    from repro.core.pipeline import PPQTrajectory
    from repro.queries.engine import QueryEngine

    path = Path(path)
    blob = path.read_bytes()
    report = LoadReport(path=str(path), strict=strict)

    if strict:
        _version, payloads = unpack_artifact(blob, verify=verify)
        crc_ok = dict.fromkeys(payloads, True)
        missing = [name for name in _REQUIRED_SECTIONS if name not in payloads]
        if missing:
            raise ArtifactFormatError(
                f"artifact is missing required section(s): {', '.join(missing)}"
            )
    else:
        _version, infos = inspect_artifact(blob, strict=False)
        payloads = {info.name: blob[info.offset:info.offset + info.length] for info in infos}
        crc_ok = {info.name: info.crc_ok for info in infos}
        missing = [name for name in _NON_DERIVABLE_SECTIONS if name not in payloads]
        if missing:
            raise ArtifactFormatError(
                f"artifact is missing non-derivable section(s): {', '.join(missing)}"
            )
        damaged = [name for name in _NON_DERIVABLE_SECTIONS if not crc_ok[name]]
        if damaged:
            raise ArtifactChecksumError(
                f"section(s) {', '.join(damaged)} are corrupt and cannot be "
                "rebuilt from other sections"
            )

    config = _decode_config(_read_section(payloads, SECTION_CONFIG))
    ppq_config = PPQConfig(**config["ppq"])
    cqc_config = CQCConfig(**config["cqc"])
    index_config = IndexConfig(**config["index"])
    system = PPQTrajectory(ppq_config=ppq_config, cqc_config=cqc_config,
                           index_config=index_config, variant=config["variant"])
    report.record(SECTION_CONFIG, "ok")

    codebook = _decode_codebook(_read_section(payloads, SECTION_CODEBOOK))
    report.record(SECTION_CODEBOOK, "ok")
    cqc_coder = None
    if cqc_config.enabled:
        cqc_coder = CQCCoder(epsilon=ppq_config.epsilon1, grid_size=cqc_config.grid_size)
    summary = TrajectorySummary(ppq_config, cqc_config, codebook, cqc_coder)
    _decode_records(_read_section(payloads, SECTION_RECORDS), summary)
    report.record(SECTION_RECORDS, "ok")

    if strict:
        _decode_reconstructions(_read_section(payloads, SECTION_RECON), summary)
        report.record(SECTION_RECON, "ok")
        index = _decode_index(_read_section(payloads, SECTION_INDEX), index_config)
        report.record(SECTION_INDEX, "ok")
        raw_dataset = None
        if SECTION_RAWDATA in payloads:
            raw_dataset = _decode_dataset(_read_section(payloads, SECTION_RAWDATA))
            report.record(SECTION_RAWDATA, "ok")
    else:
        index, raw_dataset = _salvage_sections(
            payloads, crc_ok, summary, index_config, report
        )

    system.summary = summary
    system._dataset = raw_dataset
    system.engine = QueryEngine(summary, index_config, raw_dataset=raw_dataset, index=index)
    # Remember where the model came from so run_batch(jobs>1) can hand the
    # artifact path (not the live objects) to its worker processes.  Salvaged
    # loads do not record a path: workers load independently and must not
    # silently serve from a damaged file the parent only survived by salvage.
    if strict or report.clean:
        system.engine.source_path = str(path)
    system.load_report = report
    return system


def _salvage_sections(payloads: dict[str, bytes], crc_ok: dict[str, bool],
                      summary: TrajectorySummary, index_config: IndexConfig,
                      report: LoadReport):
    """Decode the derivable sections of a damaged artifact, rebuilding as needed.

    Returns ``(index, raw_dataset)`` where ``index`` is ``None`` when the
    stored TPI was unusable (the caller's ``QueryEngine`` then rebuilds it
    deterministically from the summary's reconstructions -- the same
    seed-0 build that produced the original at fit time, so the rebuilt
    index is bit-identical) and ``raw_dataset`` is ``None`` when the
    raw-data section was damaged or absent.
    """
    if SECTION_RECON in payloads and crc_ok[SECTION_RECON]:
        try:
            _decode_reconstructions(_read_section(payloads, SECTION_RECON), summary)
            report.record(SECTION_RECON, "ok")
        except Exception as exc:  # noqa: BLE001 - any decode failure is salvageable
            summary._reconstructions.clear()
            report.record(SECTION_RECON, "rebuilt",
                          f"decode failed ({exc}); recomputed lazily from records")
    else:
        detail = "missing" if SECTION_RECON not in payloads else "checksum mismatch"
        report.record(SECTION_RECON, "rebuilt",
                      f"{detail}; recomputed lazily from records")

    index = None
    if SECTION_INDEX in payloads and crc_ok[SECTION_INDEX]:
        try:
            index = _decode_index(_read_section(payloads, SECTION_INDEX), index_config)
            report.record(SECTION_INDEX, "ok")
        except Exception as exc:  # noqa: BLE001 - any decode failure is salvageable
            index = None
            report.record(SECTION_INDEX, "rebuilt",
                          f"decode failed ({exc}); rebuilt from summary reconstructions")
    else:
        detail = "missing" if SECTION_INDEX not in payloads else "checksum mismatch"
        report.record(SECTION_INDEX, "rebuilt",
                      f"{detail}; rebuilt from summary reconstructions")

    raw_dataset = None
    if SECTION_RAWDATA in payloads:
        if crc_ok[SECTION_RAWDATA]:
            try:
                raw_dataset = _decode_dataset(_read_section(payloads, SECTION_RAWDATA))
                report.record(SECTION_RAWDATA, "ok")
            except Exception as exc:  # noqa: BLE001 - dropping raw data is safe
                report.record(SECTION_RAWDATA, "dropped", f"decode failed ({exc})")
        else:
            report.record(SECTION_RAWDATA, "dropped", "checksum mismatch")
        if raw_dataset is None:
            report.mark_lost("exact queries")
            warnings.warn(
                "RAWDATA section of the artifact is damaged; raw trajectories "
                "were dropped and exact-match queries are disabled",
                RuntimeWarning, stacklevel=3,
            )
    return index, raw_dataset


@dataclass(frozen=True)
class ArtifactInfo:
    """What ``repro info`` reports about an artifact without loading it.

    Attributes
    ----------
    path:
        The inspected file.
    file_size:
        Total size in bytes.
    format_version:
        The artifact's format version.
    sections:
        Per-section :class:`~repro.storage.format.SectionInfo` rows (name,
        offset, length, checksum status).
    config:
        The decoded ``CONFIG`` section, or ``None`` when it is corrupt.
    """

    path: Path
    file_size: int
    format_version: int
    sections: list[SectionInfo]
    config: dict | None

    @property
    def checksums_ok(self) -> bool:
        """Whether every section's payload matches its stored CRC32."""
        return all(info.crc_ok for info in self.sections)


def inspect_model(path: str | Path) -> ArtifactInfo:
    """Describe an artifact -- sections, sizes, checksums -- without loading it.

    Corrupt section payloads are reported via ``sections[i].crc_ok`` rather
    than raised, so damaged files can still be described; only structural
    damage (bad magic, truncated table) raises.

    Raises
    ------
    OSError
        If the file cannot be read.
    ArtifactFormatError, ArtifactVersionError, ArtifactChecksumError
        If the header or section table is unreadable.
    """
    path = Path(path)
    blob = path.read_bytes()
    version, sections = inspect_artifact(blob)
    config = None
    for info in sections:
        if info.name == SECTION_CONFIG and info.crc_ok:
            try:
                config = _decode_config(blob[info.offset:info.offset + info.length])
            except ArtifactFormatError:
                config = None
    return ArtifactInfo(path=path, file_size=len(blob), format_version=version,
                        sections=sections, config=config)


__all__ = [
    "save_model",
    "load_model",
    "inspect_model",
    "ArtifactInfo",
    "FORMAT_VERSION",
]

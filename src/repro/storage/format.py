"""Binary container format for persistent model artifacts.

An artifact is a single file holding named, CRC-checked sections:

* a fixed 24-byte header: magic, format version, section count and a CRC32
  of the section table, so header corruption is detected before any offset
  is trusted;
* a section table of ``(name, offset, length, crc32)`` entries;
* the section payloads, stored back to back in table order.

The full byte-level layout (including versioning and compatibility rules)
is specified in ``docs/ARTIFACT_FORMAT.md``; this module implements exactly
that spec.  What *goes into* each section -- codebooks, summary records,
index grids -- is the job of :mod:`repro.storage.io`; this module only
provides the container plus :class:`ByteWriter` / :class:`ByteReader`,
typed little-endian primitive codecs shared by every section serializer.

No pickle is involved anywhere: every value is written through an explicit,
versioned encoding, so artifacts are safe to load from untrusted sources
(worst case is a clean :class:`ArtifactError`, never code execution).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: File magic: identifies a PPQ-trajectory artifact (the trailing byte is
#: the container generation, bumped only on incompatible container changes).
MAGIC = b"PPQTRAJ\x01"

#: Version of the *section contents*; readers must reject newer versions.
FORMAT_VERSION = 1

#: Fixed size of a section name in the table (ASCII, NUL padded).
SECTION_NAME_LEN = 8

_HEADER = struct.Struct("<8sIII I".replace(" ", ""))  # magic, version, count, table_crc, reserved
_TABLE_ENTRY = struct.Struct("<8sQQI")

#: Numpy dtypes an artifact may contain, keyed by their on-disk code.
_DTYPE_CODES = {0: "<f8", 1: "<i8", 2: "<u1"}
_DTYPE_TO_CODE = {dtype: code for code, dtype in _DTYPE_CODES.items()}


class ArtifactError(Exception):
    """Base class for everything that can go wrong with a model artifact."""


class ArtifactFormatError(ArtifactError):
    """The file is not a well-formed artifact (bad magic, truncation, ...)."""


class ArtifactVersionError(ArtifactError):
    """The artifact was written by a newer, incompatible format version."""


class ArtifactChecksumError(ArtifactError):
    """A stored CRC32 does not match the bytes on disk (corruption)."""


class ByteWriter:
    """Append-only little-endian encoder used to build section payloads.

    All integers are fixed-width little-endian; byte strings and numpy
    arrays are length-prefixed so the matching :class:`ByteReader` calls
    need no out-of-band size information.
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def _append(self, data: bytes) -> None:
        self._chunks.append(data)
        self._length += len(data)

    def u8(self, value: int) -> None:
        """Write an unsigned 8-bit integer."""
        self._append(struct.pack("<B", value))

    def u32(self, value: int) -> None:
        """Write an unsigned 32-bit integer."""
        self._append(struct.pack("<I", value))

    def u64(self, value: int) -> None:
        """Write an unsigned 64-bit integer."""
        self._append(struct.pack("<Q", value))

    def i64(self, value: int) -> None:
        """Write a signed 64-bit integer."""
        self._append(struct.pack("<q", value))

    def f64(self, value: float) -> None:
        """Write an IEEE-754 double."""
        self._append(struct.pack("<d", value))

    def raw(self, data: bytes) -> None:
        """Write bytes verbatim (no length prefix)."""
        self._append(bytes(data))

    def blob(self, data: bytes) -> None:
        """Write a ``u64`` length followed by the bytes."""
        self.u64(len(data))
        self._append(bytes(data))

    def text(self, value: str) -> None:
        """Write a UTF-8 string as a length-prefixed blob."""
        self.blob(value.encode("utf-8"))

    def array(self, arr: np.ndarray) -> None:
        """Write a numpy array: dtype code, ndim, dims, then the raw buffer.

        Only the dtypes listed in the format spec (float64, int64, uint8)
        are allowed; values are stored little-endian and C-contiguous, so
        the round trip is bit-exact.

        Raises
        ------
        ValueError
            If the array's dtype is not storable in an artifact.
        """
        arr = np.ascontiguousarray(arr)
        dtype = np.dtype(arr.dtype).newbyteorder("<")
        if dtype.str not in _DTYPE_TO_CODE:
            raise ValueError(f"dtype {arr.dtype} is not storable in an artifact")
        self.u8(_DTYPE_TO_CODE[dtype.str])
        self.u8(arr.ndim)
        for dim in arr.shape:
            self.u64(dim)
        self._append(arr.astype(dtype, copy=False).tobytes())

    def getvalue(self) -> bytes:
        """The payload written so far, as one bytes object."""
        return b"".join(self._chunks)


class ByteReader:
    """Sequential decoder matching :class:`ByteWriter`, with bounds checks.

    Every read raises :class:`ArtifactFormatError` instead of silently
    returning short data when the payload is truncated.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        """Number of unread bytes."""
        return len(self._data) - self._pos

    def _take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise ArtifactFormatError(
                f"truncated section: needed {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        """Read an unsigned 8-bit integer."""
        return struct.unpack("<B", self._take(1))[0]

    def u32(self) -> int:
        """Read an unsigned 32-bit integer."""
        return struct.unpack("<I", self._take(4))[0]

    def u64(self) -> int:
        """Read an unsigned 64-bit integer."""
        return struct.unpack("<Q", self._take(8))[0]

    def i64(self) -> int:
        """Read a signed 64-bit integer."""
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        """Read an IEEE-754 double."""
        return struct.unpack("<d", self._take(8))[0]

    def blob(self) -> bytes:
        """Read a ``u64``-length-prefixed byte string."""
        return self._take(self.u64())

    def text(self) -> str:
        """Read a UTF-8 string written by :meth:`ByteWriter.text`."""
        return self.blob().decode("utf-8")

    def array(self) -> np.ndarray:
        """Read a numpy array written by :meth:`ByteWriter.array`.

        Raises
        ------
        ArtifactFormatError
            On an unknown dtype code or a truncated buffer.
        """
        code = self.u8()
        if code not in _DTYPE_CODES:
            raise ArtifactFormatError(f"unknown array dtype code {code}")
        dtype = np.dtype(_DTYPE_CODES[code])
        ndim = self.u8()
        shape = tuple(self.u64() for _ in range(ndim))
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        buffer = self._take(count * dtype.itemsize)
        return np.frombuffer(buffer, dtype=dtype).reshape(shape).copy()


@dataclass(frozen=True)
class SectionInfo:
    """One row of an artifact's section table, plus its verification status.

    Attributes
    ----------
    name:
        Section name (ASCII, at most 8 characters).
    offset, length:
        Byte range of the payload within the file.
    crc32:
        CRC32 stored in the table for this payload.
    crc_ok:
        Whether the payload bytes on disk currently match ``crc32``.
    """

    name: str
    offset: int
    length: int
    crc32: int
    crc_ok: bool


def pack_artifact(sections: list[tuple[str, bytes]]) -> bytes:
    """Assemble named section payloads into a complete artifact blob.

    Parameters
    ----------
    sections:
        Ordered ``(name, payload)`` pairs; names must be ASCII and at most
        :data:`SECTION_NAME_LEN` characters, and unique.

    Returns
    -------
    bytes
        The artifact: header, CRC-protected section table, payloads.

    Raises
    ------
    ValueError
        On an invalid or duplicate section name.
    """
    seen: set[str] = set()
    for name, _ in sections:
        if not name or len(name) > SECTION_NAME_LEN or not name.isascii():
            raise ValueError(f"invalid section name {name!r}")
        if name in seen:
            raise ValueError(f"duplicate section name {name!r}")
        seen.add(name)

    table = bytearray()
    offset = _HEADER.size + _TABLE_ENTRY.size * len(sections)
    for name, payload in sections:
        table += _TABLE_ENTRY.pack(
            name.encode("ascii").ljust(SECTION_NAME_LEN, b"\x00"),
            offset, len(payload), zlib.crc32(payload),
        )
        offset += len(payload)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, len(sections), zlib.crc32(bytes(table)), 0)
    return header + bytes(table) + b"".join(payload for _, payload in sections)


def _parse_table(blob: bytes, strict: bool = True) -> tuple[int, list[SectionInfo]]:
    """Validate header and table of ``blob``; return (version, sections).

    With ``strict=False`` a section whose extent runs outside the file (the
    typical shape of a truncated download) is clamped to the available bytes
    and reported with ``crc_ok=False`` instead of raising, so salvage loads
    can still recover the intact sections.  Header/table damage always
    raises: without a trustworthy table there is nothing to salvage.

    Raises
    ------
    ArtifactFormatError
        On bad magic, truncation, or (in strict mode) out-of-range section
        extents.
    ArtifactVersionError
        If the artifact's format version is newer than this reader.
    ArtifactChecksumError
        If the section table's own CRC32 does not match.
    """
    if len(blob) < _HEADER.size:
        raise ArtifactFormatError(
            f"file too short to be an artifact ({len(blob)} bytes, "
            f"need at least {_HEADER.size})"
        )
    magic, version, count, table_crc, reserved = _HEADER.unpack_from(blob, 0)
    if magic != MAGIC:
        raise ArtifactFormatError(
            f"bad magic {magic!r}: not a PPQ-trajectory model artifact"
        )
    if reserved != 0:
        raise ArtifactFormatError("reserved header field must be zero in this format version")
    if version > FORMAT_VERSION:
        raise ArtifactVersionError(
            f"artifact format version {version} is newer than the supported "
            f"version {FORMAT_VERSION}; upgrade the library to read it"
        )
    table_end = _HEADER.size + _TABLE_ENTRY.size * count
    if len(blob) < table_end:
        raise ArtifactFormatError("truncated artifact: section table is incomplete")
    table_bytes = blob[_HEADER.size:table_end]
    if zlib.crc32(table_bytes) != table_crc:
        raise ArtifactChecksumError("section table checksum mismatch (corrupt header)")

    sections = []
    for i in range(count):
        raw_name, offset, length, crc = _TABLE_ENTRY.unpack_from(table_bytes, i * _TABLE_ENTRY.size)
        name = raw_name.rstrip(b"\x00").decode("ascii", errors="replace")
        if offset < table_end or offset + length > len(blob):
            if strict:
                raise ArtifactFormatError(
                    f"section {name!r} extends outside the file "
                    f"(offset {offset}, length {length}, file size {len(blob)})"
                )
            clamped_offset = min(max(offset, table_end), len(blob))
            clamped_length = max(0, min(length, len(blob) - clamped_offset))
            payload = blob[clamped_offset:clamped_offset + clamped_length]
            sections.append(SectionInfo(
                name=name, offset=clamped_offset, length=clamped_length, crc32=crc,
                crc_ok=clamped_length == length and zlib.crc32(payload) == crc,
            ))
            continue
        payload = blob[offset:offset + length]
        sections.append(SectionInfo(name=name, offset=offset, length=length,
                                    crc32=crc, crc_ok=zlib.crc32(payload) == crc))
    return version, sections


def unpack_artifact(blob: bytes, verify: bool = True) -> tuple[int, dict[str, bytes]]:
    """Split an artifact blob into its named section payloads.

    Parameters
    ----------
    blob:
        The full artifact file contents.
    verify:
        When true (the default), every section's CRC32 is checked and a
        mismatch raises :class:`ArtifactChecksumError`.

    Returns
    -------
    (format_version, sections):
        The artifact's format version and a name -> payload mapping.

    Raises
    ------
    ArtifactFormatError, ArtifactVersionError, ArtifactChecksumError
        See :func:`_parse_table`; additionally a per-section checksum
        mismatch when ``verify`` is true.
    """
    version, infos = _parse_table(blob)
    if verify:
        bad = [info.name for info in infos if not info.crc_ok]
        if bad:
            raise ArtifactChecksumError(
                f"checksum mismatch in section(s) {', '.join(sorted(bad))}: "
                "the artifact is corrupt"
            )
    return version, {info.name: blob[info.offset:info.offset + info.length] for info in infos}


def inspect_artifact(blob: bytes, strict: bool = True) -> tuple[int, list[SectionInfo]]:
    """Parse the header/table and report per-section checksum status.

    Unlike :func:`unpack_artifact` this never raises on payload corruption
    (the status is reported in :attr:`SectionInfo.crc_ok` instead), so it is
    what ``repro info`` uses to describe damaged files.  Structural damage
    to the header or table itself still raises; ``strict=False`` additionally
    tolerates truncated section extents (see :func:`_parse_table`), which is
    what salvage loads use.
    """
    return _parse_table(blob, strict=strict)


def read_artifact_file(path: str | Path, verify: bool = True) -> tuple[int, dict[str, bytes]]:
    """Read and :func:`unpack_artifact` a file.

    Raises
    ------
    OSError
        If the file cannot be read.
    ArtifactError
        If the contents are not a valid artifact.
    """
    return unpack_artifact(Path(path).read_bytes(), verify=verify)


def write_artifact_file(path: str | Path, sections: list[tuple[str, bytes]]) -> Path:
    """:func:`pack_artifact` the sections and write them to ``path``.

    The blob is written to a temporary sibling file first and atomically
    renamed into place, so readers never observe a half-written artifact.
    """
    path = Path(path)
    blob = pack_artifact(sections)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    tmp.replace(path)
    return path

"""Persistent model artifacts: versioned save/load for fitted pipelines.

The storage subpackage turns a fitted :class:`~repro.core.pipeline.PPQTrajectory`
into a single self-describing file and back, enabling the build-once /
serve-many split: one process fits and saves, any number of serving
processes load and answer queries with bit-identical results.

* :mod:`repro.storage.format` -- the binary container: magic, format
  version, CRC-checked section table, typed little-endian primitives.
* :mod:`repro.storage.io` -- per-component serializers plus the public
  :func:`save_model` / :func:`load_model` / :func:`inspect_model` entry
  points.

The on-disk layout is specified in ``docs/ARTIFACT_FORMAT.md``; no pickle
is used anywhere.
"""

from repro.storage.format import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactChecksumError,
    ArtifactError,
    ArtifactFormatError,
    ArtifactVersionError,
    SectionInfo,
)
from repro.storage.io import ArtifactInfo, inspect_model, load_model, save_model

__all__ = [
    "save_model",
    "load_model",
    "inspect_model",
    "ArtifactInfo",
    "SectionInfo",
    "ArtifactError",
    "ArtifactFormatError",
    "ArtifactVersionError",
    "ArtifactChecksumError",
    "FORMAT_VERSION",
    "MAGIC",
]

"""Wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset and start timing again."""
        self.elapsed = 0.0
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the elapsed seconds."""
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None
        return self.elapsed

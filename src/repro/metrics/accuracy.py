"""Accuracy metrics: MAE, precision/recall and TPQ path errors.

All functions accept any *summary-like* object exposing
``reconstruct_point(traj_id, t)`` / ``reconstruct_path(traj_id, t, length)``,
which both :class:`repro.core.summary.TrajectorySummary` and
:class:`repro.baselines.common.BaselineSummary` do, so PPQ variants and
baselines are evaluated through identical code.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.data.trajectory import TrajectoryDataset
from repro.utils.geo import DEGREE_TO_METERS


def reconstruction_errors(summary, dataset: TrajectoryDataset,
                          t_max: int | None = None) -> np.ndarray:
    """Per-point Euclidean reconstruction errors of a summary over a dataset.

    Points without a reconstruction are skipped (they indicate the summary
    was built on a truncated time range).
    """
    errors: list[float] = []
    for slice_ in dataset.iter_time_slices(t_max=t_max):
        for tid, point in zip(slice_.traj_ids, slice_.points):
            reconstruction = summary.reconstruct_point(int(tid), slice_.t)
            if reconstruction is None:
                continue
            errors.append(float(np.linalg.norm(point - reconstruction)))
    return np.asarray(errors, dtype=float)


def mean_absolute_error(summary, dataset: TrajectoryDataset, t_max: int | None = None,
                        in_meters: bool = True) -> float:
    """Mean absolute error of a summary's reconstructions.

    The paper reports MAE in metres; set ``in_meters=False`` to stay in
    coordinate units.
    """
    errors = reconstruction_errors(summary, dataset, t_max=t_max)
    if len(errors) == 0:
        return float("nan")
    mae = float(errors.mean())
    return mae * DEGREE_TO_METERS if in_meters else mae


def precision_recall(retrieved: Iterable[int], relevant: Iterable[int]) -> tuple[float, float]:
    """Precision and recall of a retrieved ID set against the ground truth.

    Conventions follow the paper's STRQ evaluation: if nothing is relevant and
    nothing is retrieved both measures are 1; if nothing is relevant but
    something is retrieved precision is 0 and recall 1.
    """
    retrieved_set = set(int(i) for i in retrieved)
    relevant_set = set(int(i) for i in relevant)
    if not relevant_set:
        recall = 1.0
        precision = 1.0 if not retrieved_set else 0.0
        return precision, recall
    if not retrieved_set:
        return 0.0, 0.0
    hits = len(retrieved_set & relevant_set)
    return hits / len(retrieved_set), hits / len(relevant_set)


def aggregate_precision_recall(per_query: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """Average per-query precision/recall pairs."""
    if not per_query:
        return float("nan"), float("nan")
    arr = np.asarray(per_query, dtype=float)
    return float(arr[:, 0].mean()), float(arr[:, 1].mean())


def path_mean_absolute_error(summary, dataset: TrajectoryDataset,
                             queries: Sequence[tuple[int, int]],
                             length: int, in_meters: bool = True) -> float:
    """MAE of TPQ sub-trajectory reconstructions.

    Parameters
    ----------
    summary:
        Summary-like object.
    dataset:
        Raw trajectories (ground truth).
    queries:
        Sequence of ``(traj_id, t_start)`` pairs -- the same IDs are used for
        every method, as in the paper's Table 3 protocol.
    length:
        Path length ``l`` (number of consecutive points).
    """
    errors: list[float] = []
    for traj_id, t_start in queries:
        reconstruction = summary.reconstruct_path(int(traj_id), int(t_start), int(length))
        if len(reconstruction) == 0:
            continue
        if int(traj_id) not in dataset:
            continue
        t_end = int(t_start) + len(reconstruction) - 1
        truth = dataset.get(int(traj_id)).segment(int(t_start), t_end)
        m = min(len(truth), len(reconstruction))
        if m == 0:
            continue
        deltas = np.linalg.norm(truth[:m] - reconstruction[:m], axis=1)
        errors.extend(float(d) for d in deltas)
    if not errors:
        return float("nan")
    mae = float(np.mean(errors))
    return mae * DEGREE_TO_METERS if in_meters else mae

"""Compression-ratio and codebook-size accounting for summaries of any method."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.summary import TrajectorySummary


@dataclass
class CompressionReport:
    """Uniform compression statistics for a summary of any method.

    Attributes
    ----------
    method:
        Method name.
    num_points:
        Number of summarised trajectory points.
    num_codewords:
        Total codewords across the method's codebooks.
    summary_bits:
        Storage footprint of the summary in bits.
    raw_bits:
        Storage footprint of the raw points (two float64 values per point).
    """

    method: str
    num_points: int
    num_codewords: int
    summary_bits: int
    raw_bits: int

    @property
    def compression_ratio(self) -> float:
        """Raw size divided by summary size (higher is better)."""
        if self.summary_bits <= 0:
            return float("inf")
        return self.raw_bits / self.summary_bits

    @property
    def summary_megabytes(self) -> float:
        return self.summary_bits / 8.0 / (1 << 20)


def summary_size_bits(summary) -> int:
    """Storage footprint in bits of a PPQ or baseline summary."""
    if isinstance(summary, TrajectorySummary):
        return summary.storage().total_bits
    return int(summary.storage_bits)


def compression_report(summary, method: str | None = None,
                       coordinate_bytes: int = 8) -> CompressionReport:
    """Build a :class:`CompressionReport` for any summary-like object."""
    if isinstance(summary, TrajectorySummary):
        num_points = summary.num_points
        num_codewords = summary.num_codewords
        bits = summary.storage(coordinate_bytes=coordinate_bytes).total_bits
        name = method or "PPQ-trajectory"
    else:
        num_points = summary.num_points
        num_codewords = getattr(summary, "num_codewords", 0)
        bits = int(summary.storage_bits)
        name = method or getattr(summary, "method", "unknown")
    return CompressionReport(
        method=name,
        num_points=num_points,
        num_codewords=num_codewords,
        summary_bits=bits,
        raw_bits=num_points * 2 * coordinate_bytes * 8,
    )

"""Evaluation metrics used by the paper's experiments.

* :mod:`repro.metrics.accuracy` -- MAE of reconstructions, precision/recall of
  STRQ answers and TPQ path errors.
* :mod:`repro.metrics.compression` -- compression ratios and codebook-size
  accounting for summaries of any method.
* :mod:`repro.metrics.timing` -- a small wall-clock timer used by the
  benchmark harness.
"""

from repro.metrics.accuracy import (
    mean_absolute_error,
    path_mean_absolute_error,
    precision_recall,
    reconstruction_errors,
)
from repro.metrics.compression import compression_report, summary_size_bits
from repro.metrics.timing import Timer

__all__ = [
    "mean_absolute_error",
    "reconstruction_errors",
    "precision_recall",
    "path_mean_absolute_error",
    "compression_report",
    "summary_size_bits",
    "Timer",
]

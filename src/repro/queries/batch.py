"""Batched query execution: answer many queries with shared index scans.

The scalar query functions (:mod:`repro.queries.strq`, :mod:`~.tpq`,
:mod:`~.exact`) reconstruct and scan per call.  This module amortises that
work across a whole workload:

* candidate generation is pushed down into the vectorised TPI/PI lookups
  (:meth:`TemporalPartitionIndex.lookup_batch` and friends), which group
  queries by time period and scan each period's rectangles once;
* reconstructions are served from the summary's LRU slice cache
  (:meth:`TrajectorySummary.reconstruct_slice`), so a timestamp touched by
  many queries is reconstructed once per batch;
* mixed workloads (STRQ + TPQ + exact-match) are described by
  :class:`QuerySpec` / :class:`Workload` and executed in one call through
  :meth:`repro.queries.engine.QueryEngine.run_batch`.

Results are guaranteed to be identical, query by query, to running the
scalar functions in a loop -- the equivalence tests in
``tests/test_queries_batch.py`` enforce this on randomized workloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.core.summary import TrajectorySummary
from repro.cqc.local_search import search_radius
from repro.data.trajectory import TrajectoryDataset
from repro.index.tpi import TemporalPartitionIndex
from repro.queries.exact import ExactQueryResult, could_match_mask, verify_against_raw
from repro.queries.strq import STRQResult
from repro.queries.tpq import TPQResult

QUERY_KINDS = ("strq", "tpq", "exact")


class WorkloadError(ValueError):
    """A workload file or object cannot be parsed into query specs.

    Raised (instead of raw ``KeyError``/``TypeError``/``AttributeError``
    leaks from malformed JSON) by :meth:`QuerySpec.from_dict`,
    :meth:`Workload.from_obj` and :meth:`Workload.from_file`, with the
    offending entry identified in the message.  The CLI maps it to exit
    code 4 (``EXIT_WORKLOAD``).
    """


@dataclass(frozen=True)
class QuerySpec:
    """One query of a batch workload.

    Attributes
    ----------
    kind:
        ``"strq"``, ``"tpq"`` or ``"exact"``.
    x, y, t:
        Query location and timestamp (shared by all three kinds).
    length:
        Path length; required (``>= 1``) for TPQ, ignored otherwise.
    """

    kind: str
    x: float
    y: float
    t: int
    length: int = 0

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(f"kind must be one of {QUERY_KINDS}, got {self.kind!r}")
        if self.kind == "tpq" and self.length < 1:
            raise ValueError("tpq queries need length >= 1")

    @classmethod
    def from_dict(cls, obj: dict) -> "QuerySpec":
        """Build a spec from a workload-file entry (``type`` aliases ``kind``).

        Raises
        ------
        WorkloadError
            When the entry is not a mapping, names an unknown kind, misses a
            required field or holds a non-numeric value -- never a raw
            ``KeyError``/``TypeError``.
        """
        if not isinstance(obj, dict):
            raise WorkloadError(
                f"query entry must be an object, got {type(obj).__name__}: {obj!r}"
            )
        kind = obj.get("kind", obj.get("type"))
        if kind is None:
            raise WorkloadError(f"query entry needs a 'type' (or 'kind') field: {obj!r}")
        fields = {}
        for name, convert in (("x", float), ("y", float), ("t", int)):
            if name not in obj:
                raise WorkloadError(f"query entry is missing the {name!r} field: {obj!r}")
            try:
                fields[name] = convert(obj[name])
            except (TypeError, ValueError) as exc:
                raise WorkloadError(
                    f"query entry has a non-numeric {name!r} field ({obj[name]!r}): {exc}"
                ) from exc
        try:
            length = int(obj.get("length", 0))
        except (TypeError, ValueError) as exc:
            raise WorkloadError(
                f"query entry has a non-integer 'length' field ({obj.get('length')!r})"
            ) from exc
        try:
            return cls(kind=str(kind), length=length, **fields)
        except ValueError as exc:
            raise WorkloadError(str(exc)) from exc


@dataclass
class Workload:
    """An ordered collection of :class:`QuerySpec` entries.

    The on-disk format is JSON: either a bare list of query objects or an
    object with a ``"queries"`` list, each entry like::

        {"type": "strq", "x": -8.62, "y": 41.16, "t": 20}
        {"type": "tpq",  "x": -8.62, "y": 41.16, "t": 20, "length": 10}
        {"type": "exact", "x": -8.62, "y": 41.16, "t": 20}
    """

    queries: list[QuerySpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[QuerySpec]:
        return iter(self.queries)

    def counts(self) -> dict[str, int]:
        """Number of queries per kind (zero entries included)."""
        counts = {kind: 0 for kind in QUERY_KINDS}
        for spec in self.queries:
            counts[spec.kind] += 1
        return counts

    @classmethod
    def from_obj(cls, obj) -> "Workload":
        """Parse a decoded JSON object (bare list or ``{"queries": [...]}``).

        An empty list is a valid (empty) workload.  Anything malformed --
        wrong top-level shape, or a bad entry -- raises
        :class:`WorkloadError` naming the entry position.
        """
        if isinstance(obj, dict):
            obj = obj.get("queries")
        if not isinstance(obj, list):
            raise WorkloadError(
                "workload must be a list of queries or {'queries': [...]}, "
                f"got {type(obj).__name__}"
            )
        queries = []
        for position, entry in enumerate(obj):
            try:
                queries.append(QuerySpec.from_dict(entry))
            except WorkloadError as exc:
                raise WorkloadError(f"query #{position}: {exc}") from exc
        return cls(queries=queries)

    @classmethod
    def from_file(cls, path: str | Path) -> "Workload":
        """Load a workload from a JSON file.

        Raises
        ------
        OSError
            When the file cannot be read.
        WorkloadError
            When the file is not valid JSON or not a valid workload.
        """
        with open(path, encoding="utf-8") as handle:
            try:
                obj = json.load(handle)
            except json.JSONDecodeError as exc:
                raise WorkloadError(f"workload file is not valid JSON: {exc}") from exc
        return cls.from_obj(obj)


def load_workload(path: str | Path) -> Workload:
    """Load a JSON workload file (see :class:`Workload` for the format)."""
    return Workload.from_file(path)


# ---------------------------------------------------------------------- #
# batched query functions
# ---------------------------------------------------------------------- #
def batch_strq(index: TemporalPartitionIndex, queries: Sequence,
               summary: TrajectorySummary | None = None,
               local_search_radius: float | None = None) -> list[STRQResult]:
    """Answer many STRQs with one vectorised index pass.

    Parameters
    ----------
    index:
        The TPI over (reconstructed or raw) points.
    queries:
        Sequence of ``(x, y, t)`` triples (extra trailing elements, e.g. the
        ``traj_id`` of benchmark probes, are ignored).
    summary:
        Optional summary used to attach reconstructed positions, exactly as
        in :func:`~repro.queries.strq.spatio_temporal_range_query`.
    local_search_radius:
        When given, local-search candidate generation is used (Section 5.2).

    Entry ``i`` of the result is identical to the scalar call on query ``i``.
    """
    xs, ys, ts = _query_columns(queries)
    if local_search_radius is not None:
        candidate_lists = index.lookup_local_batch(xs, ys, ts, radius=local_search_radius)
    else:
        candidate_lists = index.lookup_batch(xs, ys, ts)
    results = []
    for x, y, t, candidates in zip(xs, ys, ts, candidate_lists):
        result = STRQResult(x=float(x), y=float(y), t=int(t), candidates=list(candidates))
        if summary is not None:
            for tid in candidates:
                point = summary.reconstruct_point_cached(tid, int(t))
                if point is not None:
                    result.reconstructed[tid] = point
        results.append(result)
    return results


def batch_tpq(index: TemporalPartitionIndex, summary: TrajectorySummary,
              queries: Sequence, local_search_radius: float | None = None) -> list[TPQResult]:
    """Answer many TPQs, sharing candidate scans and slice reconstructions.

    ``queries`` is a sequence of ``(x, y, t, length)`` tuples.  Candidate
    generation is one batched STRQ pass; path reconstruction walks the
    summary's cached slices so overlapping path windows across queries are
    reconstructed once.
    """
    xs, ys, ts, lengths = _query_columns_tpq(queries)
    if local_search_radius is not None:
        candidate_lists = index.lookup_local_batch(xs, ys, ts, radius=local_search_radius)
    else:
        candidate_lists = index.lookup_batch(xs, ys, ts)
    results = []
    for x, y, t, length, candidates in zip(xs, ys, ts, lengths, candidate_lists):
        result = TPQResult(x=float(x), y=float(y), t=int(t), length=int(length))
        for tid in candidates:
            path = summary.reconstruct_path(tid, int(t), int(length), cached=True)
            if len(path):
                result.paths[tid] = path
        results.append(result)
    return results


def batch_exact(index: TemporalPartitionIndex, summary: TrajectorySummary,
                dataset: TrajectoryDataset, queries: Sequence,
                cell_size: float) -> list[ExactQueryResult]:
    """Answer many exact-match queries with shared scans and broadcast filters.

    Mirrors :func:`~repro.queries.exact.exact_match_query` query by query:
    batched local-search candidate generation, a broadcast reconstruction
    pre-filter (one :func:`could_match_mask` call per query instead of a
    Python loop over candidates) and raw-data verification of the survivors.
    """
    xs, ys, ts = _query_columns(queries)
    radius = None
    if summary.cqc_coder is not None:
        radius = search_radius(summary.cqc_coder.grid_size)
    if radius is not None:
        candidate_lists = index.lookup_local_batch(xs, ys, ts, radius=radius)
    else:
        candidate_lists = index.lookup_batch(xs, ys, ts)
    slack = radius if radius is not None else 0.0
    active_at: dict[int, int] = {}
    results = []
    for x, y, t, candidates in zip(xs, ys, ts, candidate_lists):
        t = int(t)
        cell_x = np.floor(x / cell_size)
        cell_y = np.floor(y / cell_size)
        present = []
        reconstructed = []
        for tid in candidates:
            point = summary.reconstruct_point_cached(tid, t)
            if point is not None:
                present.append(tid)
                reconstructed.append(point)
        if present:
            mask = could_match_mask(np.vstack(reconstructed), cell_x, cell_y, cell_size, slack)
            filtered = [tid for tid, ok in zip(present, mask) if ok]
        else:
            filtered = []
        matches = verify_against_raw(dataset, filtered, t, cell_x, cell_y, cell_size)
        if t not in active_at:
            active_at[t] = len(dataset.time_slice(t))
        active = active_at[t]
        results.append(ExactQueryResult(
            x=float(x), y=float(y), t=t,
            candidates=filtered, matches=matches,
            visited_ratio=len(filtered) / active if active else 0.0,
        ))
    return results


# ---------------------------------------------------------------------- #
# internals
# ---------------------------------------------------------------------- #
def _query_columns(queries: Iterable) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(x, y, t, ...)`` tuples or specs into aligned column arrays."""
    xs, ys, ts = [], [], []
    for query in queries:
        if isinstance(query, QuerySpec):
            x, y, t = query.x, query.y, query.t
        else:
            x, y, t = query[0], query[1], query[2]
        xs.append(float(x))
        ys.append(float(y))
        ts.append(int(t))
    return (np.asarray(xs, dtype=float), np.asarray(ys, dtype=float),
            np.asarray(ts, dtype=np.int64))


def _query_columns_tpq(queries: Iterable) -> tuple[np.ndarray, ...]:
    """Column arrays for TPQ queries, validating each path length."""
    xs, ys, ts, lengths = [], [], [], []
    for query in queries:
        if isinstance(query, QuerySpec):
            x, y, t, length = query.x, query.y, query.t, query.length
        else:
            x, y, t, length = query[0], query[1], query[2], query[3]
        if int(length) < 1:
            raise ValueError("length must be >= 1")
        xs.append(float(x))
        ys.append(float(y))
        ts.append(int(t))
        lengths.append(int(length))
    return (np.asarray(xs, dtype=float), np.asarray(ys, dtype=float),
            np.asarray(ts, dtype=np.int64), np.asarray(lengths, dtype=np.int64))

"""Convenience query engine tying a summary and a TPI together.

The engine is what applications interact with after compressing a repository:
it owns the summary, builds (or accepts) a TPI over the reconstructed points
and exposes STRQ / TPQ / exact-match queries with the paper's local-search
defaults applied.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IndexConfig
from repro.core.summary import TrajectorySummary
from repro.cqc.local_search import search_radius
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.index.tpi import TemporalPartitionIndex
from repro.queries.batch import QuerySpec, Workload, batch_exact, batch_strq, batch_tpq
from repro.queries.exact import ExactQueryResult, exact_match_query
from repro.queries.strq import STRQResult, spatio_temporal_range_query
from repro.queries.tpq import TPQResult, trajectory_path_query


class QueryEngine:
    """Answer spatio-temporal queries over a quantized trajectory repository.

    Parameters
    ----------
    summary:
        The trajectory summary produced by a quantizer.
    index_config:
        Parameters for the TPI built over the summary's reconstructed points.
    raw_dataset:
        Optional raw dataset; only needed for exact-match verification.
    index:
        Optional pre-built TPI.  When given (e.g. restored from a model
        artifact by :func:`repro.storage.load_model`), it is used as-is and
        no index is built from the summary.
    """

    def __init__(self, summary: TrajectorySummary, index_config: IndexConfig | None = None,
                 raw_dataset: TrajectoryDataset | None = None,
                 index: TemporalPartitionIndex | None = None) -> None:
        self.summary = summary
        self.index_config = index_config or IndexConfig()
        self.raw_dataset = raw_dataset
        self.index = index if index is not None else self._build_index()

    # ------------------------------------------------------------------ #
    # index construction
    # ------------------------------------------------------------------ #
    def _build_index(self) -> TemporalPartitionIndex:
        """Build a TPI over the summary's reconstructed points."""
        reconstructed = self._reconstructed_dataset()
        tpi = TemporalPartitionIndex(self.index_config)
        tpi.build(reconstructed)
        return tpi

    def _reconstructed_dataset(self) -> TrajectoryDataset:
        """Materialise the reconstructed points as a dataset for indexing."""
        per_traj: dict[int, list[tuple[int, np.ndarray]]] = {}
        for t in self.summary.timestamps:
            for tid, point in self.summary.reconstruct_slice(t).items():
                per_traj.setdefault(tid, []).append((t, point))
        trajectories = []
        for tid, entries in per_traj.items():
            entries.sort(key=lambda item: item[0])
            timestamps = np.asarray([t for t, _ in entries], dtype=np.int64)
            points = np.vstack([p for _, p in entries])
            trajectories.append(Trajectory(traj_id=tid, points=points, timestamps=timestamps))
        return TrajectoryDataset(trajectories)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def local_search_radius(self) -> float | None:
        """The ``√2/2 · g_s`` radius, or ``None`` when CQC is disabled."""
        if self.summary.cqc_coder is None:
            return None
        return search_radius(self.summary.cqc_coder.grid_size)

    def strq(self, x: float, y: float, t: int, local_search: bool = True) -> STRQResult:
        """Spatio-temporal range query (Definition 5.2)."""
        radius = self.local_search_radius if local_search else None
        return spatio_temporal_range_query(
            self.index, x, y, t, summary=self.summary, local_search_radius=radius
        )

    def tpq(self, x: float, y: float, t: int, length: int,
            local_search: bool = True) -> TPQResult:
        """Trajectory path query (Definition 5.3)."""
        radius = self.local_search_radius if local_search else None
        return trajectory_path_query(
            self.index, self.summary, x, y, t, length, local_search_radius=radius
        )

    def exact(self, x: float, y: float, t: int) -> ExactQueryResult:
        """Exact-match query; requires the raw dataset for verification."""
        if self.raw_dataset is None:
            raise RuntimeError("exact queries require the raw dataset")
        return exact_match_query(
            self.index, self.summary, self.raw_dataset, x, y, t,
            cell_size=self.index_config.grid_cell,
        )

    def run_batch(self, workload) -> list[STRQResult | TPQResult | ExactQueryResult]:
        """Execute a mixed STRQ/TPQ/exact workload with shared scans.

        Queries are grouped by kind and answered through the batched
        functions of :mod:`repro.queries.batch`: candidate generation is one
        vectorised TPI pass per kind, and reconstructions are shared through
        the summary's LRU slice cache.  Results come back in workload order
        and are identical to running each query through :meth:`strq`,
        :meth:`tpq` or :meth:`exact` individually.

        Parameters
        ----------
        workload:
            A :class:`~repro.queries.batch.Workload`, or any iterable of
            :class:`~repro.queries.batch.QuerySpec` / dict entries (dicts use
            the workload-file schema: ``type``, ``x``, ``y``, ``t`` and, for
            TPQ, ``length``).

        Examples
        --------
        ::

            workload = Workload.from_obj([
                {"type": "strq", "x": -8.62, "y": 41.16, "t": 20},
                {"type": "tpq", "x": -8.62, "y": 41.16, "t": 20, "length": 10},
                {"type": "exact", "x": -8.60, "y": 41.15, "t": 35},
            ])
            results = engine.run_batch(workload)
            strq_result, tpq_result, exact_result = results
        """
        specs = self._normalize_workload(workload)
        radius = self.local_search_radius
        by_kind: dict[str, list[int]] = {"strq": [], "tpq": [], "exact": []}
        for position, spec in enumerate(specs):
            by_kind[spec.kind].append(position)
        if by_kind["exact"] and self.raw_dataset is None:
            raise RuntimeError("exact queries require the raw dataset")

        results: list = [None] * len(specs)
        if by_kind["strq"]:
            answers = batch_strq(
                self.index, [specs[i] for i in by_kind["strq"]],
                summary=self.summary, local_search_radius=radius,
            )
            for position, answer in zip(by_kind["strq"], answers):
                results[position] = answer
        if by_kind["tpq"]:
            answers = batch_tpq(
                self.index, self.summary, [specs[i] for i in by_kind["tpq"]],
                local_search_radius=radius,
            )
            for position, answer in zip(by_kind["tpq"], answers):
                results[position] = answer
        if by_kind["exact"]:
            answers = batch_exact(
                self.index, self.summary, self.raw_dataset,
                [specs[i] for i in by_kind["exact"]],
                cell_size=self.index_config.grid_cell,
            )
            for position, answer in zip(by_kind["exact"], answers):
                results[position] = answer
        return results

    @staticmethod
    def _normalize_workload(workload) -> list[QuerySpec]:
        """Coerce a workload argument into a list of :class:`QuerySpec`."""
        if isinstance(workload, Workload):
            return list(workload.queries)
        specs = []
        for entry in workload:
            if isinstance(entry, QuerySpec):
                specs.append(entry)
            elif isinstance(entry, dict):
                specs.append(QuerySpec.from_dict(entry))
            else:
                raise TypeError(f"unsupported workload entry: {entry!r}")
        return specs

    def predict_next_positions(self, traj_id: int, t: int, horizon: int = 5) -> np.ndarray:
        """Forecast future positions of a trajectory from the summary.

        Uses the last stored prediction coefficients of the trajectory's
        partition and rolls the linear model forward ``horizon`` steps -- the
        "predicting future positions of entities" analytics task mentioned in
        the paper's introduction.
        """
        order = self.summary.config.prediction_order
        history = []
        for lag in range(order):
            point = self.summary.reconstruct_point(traj_id, t - lag)
            if point is None:
                break
            history.append(point)
        if not history:
            return np.empty((0, 2), dtype=float)
        while len(history) < order:
            history.append(history[-1])
        record = self.summary.records.get(int(t))
        coefficients = None
        if record is not None:
            partition = record.partition_of.get(int(traj_id))
            coefficients = record.coefficients.get(partition)
        if coefficients is None:
            coefficients = np.zeros(order, dtype=float)
            coefficients[0] = 1.0
        forecast = []
        window = list(history)
        for _ in range(horizon):
            prediction = np.einsum("k,kd->d", coefficients, np.stack(window[:order]))
            forecast.append(prediction)
            window.insert(0, prediction)
        return np.vstack(forecast)

"""Convenience query engine tying a summary and a TPI together.

The engine is what applications interact with after compressing a repository:
it owns the summary, builds (or accepts) a TPI over the reconstructed points
and exposes STRQ / TPQ / exact-match queries with the paper's local-search
defaults applied.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import IndexConfig
from repro.core.summary import TrajectorySummary
from repro.cqc.local_search import search_radius
from repro.data.trajectory import Trajectory, TrajectoryDataset
from repro.index.grid import PostingDecodeError
from repro.index.tpi import TemporalPartitionIndex, TimePeriod
from repro.queries.batch import QuerySpec, Workload, batch_exact, batch_strq, batch_tpq
from repro.reliability.degrade import QuarantineRecord, QueryError, recompute_cell_postings
from repro.reliability.retry import RetryExhaustedError, RetryPolicy
from repro.queries.exact import ExactQueryResult, exact_match_query
from repro.queries.strq import STRQResult, spatio_temporal_range_query
from repro.queries.tpq import TPQResult, trajectory_path_query


def _posting_error_in(error: BaseException) -> PostingDecodeError | None:
    """Find a :class:`PostingDecodeError` on ``error``'s cause chain, if any.

    Retry policies wrap the final failure in a ``RetryExhaustedError``; the
    degradation path needs the underlying decode error (with its grid/cell
    context) to know what to quarantine.
    """
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, PostingDecodeError):
            return current
        current = (
            getattr(current, "last_error", None)
            or getattr(current, "cause", None)
            or current.__cause__
        )
    return None


class QueryEngine:
    """Answer spatio-temporal queries over a quantized trajectory repository.

    Parameters
    ----------
    summary:
        The trajectory summary produced by a quantizer.
    index_config:
        Parameters for the TPI built over the summary's reconstructed points.
    raw_dataset:
        Optional raw dataset; only needed for exact-match verification.
    index:
        Optional pre-built TPI.  When given (e.g. restored from a model
        artifact by :func:`repro.storage.load_model`), it is used as-is and
        no index is built from the summary.
    on_fault:
        ``"degrade"`` (the default): when a grid cell's posting list fails
        to decode mid-query, quarantine the cell, recompute its postings by
        brute force from summary reconstructions over the owning time
        period, patch the index and re-run -- results stay identical to the
        healthy path.  ``"raise"``: fail fast, propagating the
        :class:`~repro.index.grid.PostingDecodeError`.
    retry_policy:
        Optional :class:`~repro.reliability.retry.RetryPolicy` applied to
        every guarded query; transient faults (flaky reads) are retried
        with exponential backoff before degradation is considered.
    """

    def __init__(self, summary: TrajectorySummary, index_config: IndexConfig | None = None,
                 raw_dataset: TrajectoryDataset | None = None,
                 index: TemporalPartitionIndex | None = None,
                 on_fault: str = "degrade",
                 retry_policy: RetryPolicy | None = None) -> None:
        if on_fault not in ("degrade", "raise"):
            raise ValueError(f"on_fault must be 'degrade' or 'raise', got {on_fault!r}")
        self.summary = summary
        self.index_config = index_config or IndexConfig()
        self.raw_dataset = raw_dataset
        self.on_fault = on_fault
        self.retry_policy = retry_policy
        #: Artifact file this engine's model can be reloaded from, when known
        #: (set by the storage layer on load/save).  Parallel execution hands
        #: this path to its worker processes instead of pickling the engine.
        self.source_path: str | None = None
        #: Quarantine log: one record per repaired cell, in repair order.
        self.quarantined: list[QuarantineRecord] = []
        # Cells already repaired once; a second failure of the same cell
        # means repair cannot help, so it propagates instead of looping.
        self._repaired: set[tuple[int, tuple[int, int]]] = set()
        self.index = index if index is not None else self._build_index()

    # ------------------------------------------------------------------ #
    # index construction
    # ------------------------------------------------------------------ #
    def _build_index(self) -> TemporalPartitionIndex:
        """Build a TPI over the summary's reconstructed points."""
        reconstructed = self._reconstructed_dataset()
        tpi = TemporalPartitionIndex(self.index_config)
        tpi.build(reconstructed)
        return tpi

    def _reconstructed_dataset(self) -> TrajectoryDataset:
        """Materialise the reconstructed points as a dataset for indexing."""
        per_traj: dict[int, list[tuple[int, np.ndarray]]] = {}
        for t in self.summary.timestamps:
            for tid, point in self.summary.reconstruct_slice(t).items():
                per_traj.setdefault(tid, []).append((t, point))
        trajectories = []
        for tid, entries in per_traj.items():
            entries.sort(key=lambda item: item[0])
            timestamps = np.asarray([t for t, _ in entries], dtype=np.int64)
            points = np.vstack([p for _, p in entries])
            trajectories.append(Trajectory(traj_id=tid, points=points, timestamps=timestamps))
        return TrajectoryDataset(trajectories)

    # ------------------------------------------------------------------ #
    # degradation machinery
    # ------------------------------------------------------------------ #
    def _guard(self, fn):
        """Run ``fn`` with retry and quarantine-repair protection.

        Transient errors are retried per :attr:`retry_policy` (when set).
        A posting-list decode failure under ``on_fault="degrade"`` triggers
        :meth:`_quarantine_and_repair` and the query is re-run against the
        patched index; the loop terminates because a cell that fails again
        after its one repair propagates the error instead of re-repairing.
        """
        while True:
            try:
                if self.retry_policy is not None:
                    return self.retry_policy.call(fn)
                return fn()
            except PostingDecodeError as exc:
                if self.on_fault != "degrade":
                    raise
                self._quarantine_and_repair(exc)
            except RetryExhaustedError as exc:
                decode_error = _posting_error_in(exc)
                if self.on_fault != "degrade" or decode_error is None:
                    raise
                self._quarantine_and_repair(decode_error)

    def _quarantine_and_repair(self, error: PostingDecodeError) -> None:
        """Repair one quarantined cell or re-raise if repair cannot help.

        The recomputation is exact: rectangles are only ever appended to a
        period's PI and never shrink or move, so every point inserted at
        some timestamp of the period is still inside the same rectangle
        (and maps to the same globally-anchored cell) under the final
        geometry.  Scanning the period's reconstructions therefore yields
        precisely the posting list the corrupt payload encoded.
        """
        grid, cell = error.grid, error.cell
        key = (id(grid), cell)
        if key in self._repaired:
            raise error
        period = self._period_of_grid(grid)
        if period is None:
            raise error
        recovered = recompute_cell_postings(self.summary, grid, cell,
                                            period.start, period.end)
        grid.patch_cell(cell, recovered)
        self._repaired.add(key)
        self.quarantined.append(QuarantineRecord(
            cell=cell, period_start=period.start, period_end=period.end,
            reason=f"{type(error.cause).__name__}: {error.cause}",
            recovered_ids=len(recovered),
        ))

    def _period_of_grid(self, grid) -> TimePeriod | None:
        """The TPI period whose PI owns ``grid`` (identity scan)."""
        for period in self.index.periods:
            if any(g is grid for g in period.index.grids):
                return period
        return None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def local_search_radius(self) -> float | None:
        """The ``√2/2 · g_s`` radius, or ``None`` when CQC is disabled."""
        if self.summary.cqc_coder is None:
            return None
        return search_radius(self.summary.cqc_coder.grid_size)

    def strq(self, x: float, y: float, t: int, local_search: bool = True) -> STRQResult:
        """Spatio-temporal range query (Definition 5.2)."""
        radius = self.local_search_radius if local_search else None
        return self._guard(lambda: spatio_temporal_range_query(
            self.index, x, y, t, summary=self.summary, local_search_radius=radius
        ))

    def tpq(self, x: float, y: float, t: int, length: int,
            local_search: bool = True) -> TPQResult:
        """Trajectory path query (Definition 5.3)."""
        radius = self.local_search_radius if local_search else None
        return self._guard(lambda: trajectory_path_query(
            self.index, self.summary, x, y, t, length, local_search_radius=radius
        ))

    def exact(self, x: float, y: float, t: int) -> ExactQueryResult:
        """Exact-match query; requires the raw dataset for verification."""
        if self.raw_dataset is None:
            raise RuntimeError("exact queries require the raw dataset")
        return self._guard(lambda: exact_match_query(
            self.index, self.summary, self.raw_dataset, x, y, t,
            cell_size=self.index_config.grid_cell,
        ))

    def run_batch(self, workload, isolate: bool = False, jobs: int = 1,
                  model_path=None) -> list[STRQResult | TPQResult | ExactQueryResult
                                           | QueryError]:
        """Execute a mixed STRQ/TPQ/exact workload with shared scans.

        Queries are grouped by kind and answered through the batched
        functions of :mod:`repro.queries.batch`: candidate generation is one
        vectorised TPI pass per kind, and reconstructions are shared through
        the summary's LRU slice cache.  Results come back in workload order
        and are identical to running each query through :meth:`strq`,
        :meth:`tpq` or :meth:`exact` individually.

        Parameters
        ----------
        workload:
            A :class:`~repro.queries.batch.Workload`, or any iterable of
            :class:`~repro.queries.batch.QuerySpec` / dict entries (dicts use
            the workload-file schema: ``type``, ``x``, ``y``, ``t`` and, for
            TPQ, ``length``).
        isolate:
            With ``isolate=True`` one failing query cannot abort the
            workload: if a kind's batched pass raises even after the
            engine's retry/degradation protections, its queries are re-run
            individually and each failure is returned as a structured
            :class:`~repro.reliability.degrade.QueryError` in that query's
            result slot (successes keep their normal result objects).
            The default re-raises the first unrecoverable error.
        jobs:
            With ``jobs > 1`` the workload is sharded across that many
            worker processes by a
            :class:`~repro.parallel.executor.ParallelExecutor`; each worker
            loads the model artifact once and results (identical to
            ``jobs=1``, in workload order) are merged back.  Requires a
            model artifact: either ``model_path`` or an engine restored by
            :func:`repro.storage.load_model` (which records
            :attr:`source_path`).  Fitted-in-memory systems should call
            :meth:`PPQTrajectory.run_batch`, which spills a temporary
            artifact automatically.
        model_path:
            Artifact file the workers load; defaults to :attr:`source_path`.

        Examples
        --------
        ::

            workload = Workload.from_obj([
                {"type": "strq", "x": -8.62, "y": 41.16, "t": 20},
                {"type": "tpq", "x": -8.62, "y": 41.16, "t": 20, "length": 10},
                {"type": "exact", "x": -8.60, "y": 41.15, "t": 35},
            ])
            results = engine.run_batch(workload)
            strq_result, tpq_result, exact_result = results
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs > 1:
            return self._run_parallel(workload, isolate=isolate, jobs=jobs,
                                      model_path=model_path)
        specs = self._normalize_workload(workload)
        radius = self.local_search_radius
        by_kind: dict[str, list[int]] = {"strq": [], "tpq": [], "exact": []}
        for position, spec in enumerate(specs):
            by_kind[spec.kind].append(position)
        if by_kind["exact"] and self.raw_dataset is None and not isolate:
            raise RuntimeError("exact queries require the raw dataset")

        results: list = [None] * len(specs)
        batches = {
            "strq": lambda positions: batch_strq(
                self.index, [specs[i] for i in positions],
                summary=self.summary, local_search_radius=radius,
            ),
            "tpq": lambda positions: batch_tpq(
                self.index, self.summary, [specs[i] for i in positions],
                local_search_radius=radius,
            ),
            "exact": lambda positions: batch_exact(
                self.index, self.summary, self.raw_dataset,
                [specs[i] for i in positions],
                cell_size=self.index_config.grid_cell,
            ),
        }
        for kind, positions in by_kind.items():
            if not positions:
                continue
            if kind == "exact" and self.raw_dataset is None:
                # Only reachable with isolate=True (checked above).
                error = RuntimeError("exact queries require the raw dataset")
                for position in positions:
                    results[position] = QueryError.from_exception(position, kind, error)
                continue
            try:
                answers = self._guard(lambda k=kind, p=positions: batches[k](p))
            except Exception:
                if not isolate:
                    raise
                self._run_isolated(specs, positions, results)
            else:
                for position, answer in zip(positions, answers):
                    results[position] = answer
        return results

    def _run_parallel(self, workload, isolate: bool, jobs: int, model_path) -> list:
        """Fan a workload out to worker processes (the ``jobs > 1`` path)."""
        from repro.parallel.executor import ParallelExecutor

        path = model_path or self.source_path
        if path is None:
            raise ValueError(
                "run_batch(jobs>1) needs a model artifact for the workers to "
                "load: pass model_path=, or use an engine restored by "
                "repro.storage.load_model, or call PPQTrajectory.run_batch "
                "(which saves a temporary artifact automatically)"
            )
        with ParallelExecutor(path, jobs=jobs, retry_policy=self.retry_policy) as pool:
            return pool.run(workload, isolate=isolate)

    def _run_isolated(self, specs: list[QuerySpec], positions: list[int],
                      results: list) -> None:
        """Scalar fallback for one kind's batch: per-query error isolation."""
        for position in positions:
            spec = specs[position]
            try:
                results[position] = self._run_scalar(spec)
            except Exception as exc:  # noqa: BLE001 - converted to a record
                results[position] = QueryError.from_exception(
                    position, spec.kind, exc,
                    attempts=getattr(exc, "attempts", 1),
                )

    def _run_scalar(self, spec: QuerySpec):
        """Answer one query spec through the (guarded) scalar methods."""
        if spec.kind == "strq":
            return self.strq(spec.x, spec.y, spec.t)
        if spec.kind == "tpq":
            return self.tpq(spec.x, spec.y, spec.t, spec.length)
        return self.exact(spec.x, spec.y, spec.t)

    @staticmethod
    def _normalize_workload(workload) -> list[QuerySpec]:
        """Coerce a workload argument into a list of :class:`QuerySpec`."""
        if isinstance(workload, Workload):
            return list(workload.queries)
        specs = []
        for entry in workload:
            if isinstance(entry, QuerySpec):
                specs.append(entry)
            elif isinstance(entry, dict):
                specs.append(QuerySpec.from_dict(entry))
            else:
                raise TypeError(f"unsupported workload entry: {entry!r}")
        return specs

    def predict_next_positions(self, traj_id: int, t: int, horizon: int = 5) -> np.ndarray:
        """Forecast future positions of a trajectory from the summary.

        Uses the last stored prediction coefficients of the trajectory's
        partition and rolls the linear model forward ``horizon`` steps -- the
        "predicting future positions of entities" analytics task mentioned in
        the paper's introduction.
        """
        order = self.summary.config.prediction_order
        history = []
        for lag in range(order):
            point = self.summary.reconstruct_point(traj_id, t - lag)
            if point is None:
                break
            history.append(point)
        if not history:
            return np.empty((0, 2), dtype=float)
        while len(history) < order:
            history.append(history[-1])
        record = self.summary.records.get(int(t))
        coefficients = None
        if record is not None:
            partition = record.partition_of.get(int(traj_id))
            coefficients = record.coefficients.get(partition)
        if coefficients is None:
            coefficients = np.zeros(order, dtype=float)
            coefficients[0] = 1.0
        forecast = []
        window = list(history)
        for _ in range(horizon):
            prediction = np.einsum("k,kd->d", coefficients, np.stack(window[:order]))
            forecast.append(prediction)
            window.insert(0, prediction)
        return np.vstack(forecast)

"""Trajectory path query (TPQ), Definition 5.3 of the paper.

Given ``(x, y, t)`` and a path duration ``l``, the TPQ first answers the STRQ
at ``(x, y, t)`` and then reproduces, directly from the indexed summary, the
next ``l`` positions of every retrieved trajectory -- without touching the
raw data and without reconstructing whole trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.summary import TrajectorySummary
from repro.index.tpi import TemporalPartitionIndex
from repro.queries.strq import spatio_temporal_range_query


@dataclass
class TPQResult:
    """Result of one trajectory path query.

    Attributes
    ----------
    x, y, t, length:
        The query.
    paths:
        Mapping trajectory ID -> array of shape ``(m, 2)`` with the
        reconstructed positions for timestamps ``t .. t+length-1``
        (``m <= length`` if a trajectory ends early).
    """

    x: float
    y: float
    t: int
    length: int
    paths: dict[int, np.ndarray] = field(default_factory=dict)


def trajectory_path_query(index: TemporalPartitionIndex, summary: TrajectorySummary,
                          x: float, y: float, t: int, length: int,
                          local_search_radius: float | None = None) -> TPQResult:
    """Answer a TPQ: STRQ at ``(x, y, t)`` followed by path reconstruction."""
    if length < 1:
        raise ValueError("length must be >= 1")
    strq = spatio_temporal_range_query(
        index, x, y, t, summary=None, local_search_radius=local_search_radius
    )
    result = TPQResult(x=float(x), y=float(y), t=int(t), length=int(length))
    for tid in strq.candidates:
        path = summary.reconstruct_path(tid, int(t), int(length))
        if len(path):
            result.paths[tid] = path
    return result


def reconstruct_paths_for_ids(summary: TrajectorySummary, traj_ids, t: int,
                              length: int) -> dict[int, np.ndarray]:
    """Reconstruct fixed-ID paths (used by the Table 3 benchmark).

    The paper measures TPQ MAE on the *same* 10 000 trajectory IDs for every
    method so that differences in STRQ recall do not contaminate the
    comparison; this helper reproduces exactly that protocol.
    """
    return {
        int(tid): summary.reconstruct_path(int(tid), int(t), int(length))
        for tid in traj_ids
    }

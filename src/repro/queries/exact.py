"""Exact-match query filtering using the summary as an index (Section 6.2.3).

When exact answers are required, the summary acts as a filter: the local
search around the query point produces a small candidate list (guaranteed to
contain every true match thanks to Lemma 3), and only those candidates'
original trajectories are accessed for verification.  The fraction of
trajectories visited in the second step is the efficiency measure of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.summary import TrajectorySummary
from repro.cqc.local_search import search_radius
from repro.data.trajectory import TrajectoryDataset
from repro.index.tpi import TemporalPartitionIndex


@dataclass
class ExactQueryResult:
    """Result of an exact-match query.

    Attributes
    ----------
    x, y, t:
        The query (a grid-cell membership test at time ``t``).
    candidates:
        Trajectory IDs surviving the summary-based filter.
    matches:
        Trajectory IDs confirmed against the raw data.
    visited_ratio:
        ``len(candidates) / total active trajectories`` -- the fraction of
        trajectories whose raw data had to be accessed.
    """

    x: float
    y: float
    t: int
    candidates: list[int] = field(default_factory=list)
    matches: list[int] = field(default_factory=list)
    visited_ratio: float = 0.0


def exact_match_query(index: TemporalPartitionIndex, summary: TrajectorySummary,
                      dataset: TrajectoryDataset, x: float, y: float, t: int,
                      cell_size: float) -> ExactQueryResult:
    """Exact STRQ: filter with the summary, verify against the raw data.

    Parameters
    ----------
    index:
        TPI built over the reconstructed points.
    summary:
        The quantized summary (used for the local-search radius and the
        reconstruction-based pre-filter).
    dataset:
        The raw trajectories (accessed only for the surviving candidates).
    x, y, t:
        Query location and timestamp.
    cell_size:
        Query grid cell size ``g_c``; a raw point matches when it falls into
        the same ``g_c`` cell as ``(x, y)``.
    """
    radius = None
    if summary.cqc_coder is not None:
        radius = search_radius(summary.cqc_coder.grid_size)
    candidates = (index.lookup_local(x, y, int(t), radius=radius)
                  if radius is not None else index.lookup(x, y, int(t)))

    # Pre-filter on reconstructed points: candidates whose refined
    # reconstruction is farther than radius + cell diagonal cannot match.
    filtered: list[int] = []
    cell_x = np.floor(x / cell_size)
    cell_y = np.floor(y / cell_size)
    slack = radius if radius is not None else 0.0
    for tid in candidates:
        point = summary.reconstruct_point(tid, int(t))
        if point is None:
            continue
        if _could_match(point, cell_x, cell_y, cell_size, slack):
            filtered.append(tid)

    # Verification step against the raw data.
    matches = verify_against_raw(dataset, filtered, int(t), cell_x, cell_y, cell_size)

    active = len(dataset.time_slice(int(t)))
    visited_ratio = len(filtered) / active if active else 0.0
    return ExactQueryResult(
        x=float(x), y=float(y), t=int(t),
        candidates=filtered, matches=matches, visited_ratio=visited_ratio,
    )


def verify_against_raw(dataset: TrajectoryDataset, candidates, t: int, cell_x: float,
                       cell_y: float, cell_size: float) -> list[int]:
    """Confirm candidates whose raw point at ``t`` falls in the query cell."""
    matches = []
    for tid in candidates:
        if tid not in dataset:
            continue
        raw = dataset.get(tid).point_at(int(t))
        if raw is None:
            continue
        if np.floor(raw[0] / cell_size) == cell_x and np.floor(raw[1] / cell_size) == cell_y:
            matches.append(tid)
    return matches


def ground_truth_cell_members(dataset: TrajectoryDataset, x: float, y: float, t: int,
                              cell_size: float) -> list[int]:
    """Trajectory IDs whose raw point at ``t`` shares the ``g_c`` cell of (x, y)."""
    slice_ = dataset.time_slice(int(t))
    if len(slice_) == 0:
        return []
    cell_x = np.floor(x / cell_size)
    cell_y = np.floor(y / cell_size)
    cells = np.floor(slice_.points / cell_size)
    mask = (cells[:, 0] == cell_x) & (cells[:, 1] == cell_y)
    return sorted(int(tid) for tid in slice_.traj_ids[mask])


def could_match_mask(points: np.ndarray, cell_x: float, cell_y: float, cell_size: float,
                     slack: float) -> np.ndarray:
    """Vectorised pre-filter: which reconstructed points could match the cell.

    A reconstructed point can correspond to a raw point inside the query's
    ``g_c`` cell only if it lies within the cell expanded by ``slack`` (the
    CQC deviation bound) on every side.  Broadcasts over an ``(n, 2)`` array.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    min_x = cell_x * cell_size - slack
    max_x = (cell_x + 1) * cell_size + slack
    min_y = cell_y * cell_size - slack
    max_y = (cell_y + 1) * cell_size + slack
    return ((points[:, 0] >= min_x) & (points[:, 0] <= max_x)
            & (points[:, 1] >= min_y) & (points[:, 1] <= max_y))


def _could_match(point: np.ndarray, cell_x: float, cell_y: float, cell_size: float,
                 slack: float) -> bool:
    """Whether a reconstructed point could correspond to a raw point in the cell."""
    return bool(could_match_mask(point, cell_x, cell_y, cell_size, slack)[0])

"""Spatio-temporal range query (STRQ), Definition 5.2 of the paper.

Given a location ``(x, y)`` and a timestamp ``t``, the STRQ returns the
trajectories that are located in the grid cell containing ``(x, y)`` at time
``t``.  With a TPI the candidate list comes straight from the index; the
approximate answer can optionally be refined against the summary's
reconstructed points (the precision/recall measured in Table 2 compares this
approximate answer to the ground truth computed from the raw data).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.summary import TrajectorySummary
from repro.index.tpi import TemporalPartitionIndex


@dataclass
class STRQResult:
    """Result of one spatio-temporal range query.

    Attributes
    ----------
    x, y, t:
        The query.
    candidates:
        Trajectory IDs returned by the index lookup (the approximate answer).
    reconstructed:
        Mapping trajectory ID -> reconstructed position, filled when a
        summary was supplied to refine/inspect the answer.
    """

    x: float
    y: float
    t: int
    candidates: list[int] = field(default_factory=list)
    reconstructed: dict[int, np.ndarray] = field(default_factory=dict)


def spatio_temporal_range_query(index: TemporalPartitionIndex, x: float, y: float, t: int,
                                summary: TrajectorySummary | None = None,
                                local_search_radius: float | None = None) -> STRQResult:
    """Answer an STRQ over the quantized representation.

    Parameters
    ----------
    index:
        The temporal partition-based index over (reconstructed or raw) points.
    x, y, t:
        The query location and timestamp.
    summary:
        Optional summary used to attach reconstructed positions to the
        candidates (needed by TPQ and by exact filtering).
    local_search_radius:
        When given, the local-search strategy of Section 5.2 is used: cells
        within this radius (``√2/2 · g_s``) are scanned in addition to the
        query cell, which makes the candidate list a superset of the true
        answer (recall 1).
    """
    if local_search_radius is not None:
        candidates = index.lookup_local(x, y, int(t), radius=local_search_radius)
    else:
        candidates = index.lookup(x, y, int(t))
    result = STRQResult(x=float(x), y=float(y), t=int(t), candidates=list(candidates))
    if summary is not None:
        for tid in candidates:
            point = summary.reconstruct_point(tid, int(t))
            if point is not None:
                result.reconstructed[tid] = point
    return result

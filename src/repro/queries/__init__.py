"""Spatio-temporal query processing over quantized trajectories (Section 5.2).

* :mod:`repro.queries.strq` -- spatio-temporal range queries (Definition 5.2).
* :mod:`repro.queries.tpq` -- trajectory path queries (Definition 5.3).
* :mod:`repro.queries.exact` -- exact-match filtering with the CQC-driven
  local-search strategy.
* :mod:`repro.queries.batch` -- batched execution of mixed workloads with
  vectorised index scans and cached slice reconstructions.
* :mod:`repro.queries.engine` -- :class:`QueryEngine`, a convenience object
  tying a summary and a TPI together and exposing all query types.
"""

from repro.queries.strq import STRQResult, spatio_temporal_range_query
from repro.queries.tpq import TPQResult, trajectory_path_query
from repro.queries.exact import ExactQueryResult, exact_match_query
from repro.queries.batch import (
    QuerySpec,
    Workload,
    WorkloadError,
    batch_exact,
    batch_strq,
    batch_tpq,
    load_workload,
)
from repro.queries.engine import QueryEngine

__all__ = [
    "STRQResult",
    "spatio_temporal_range_query",
    "TPQResult",
    "trajectory_path_query",
    "ExactQueryResult",
    "exact_match_query",
    "QuerySpec",
    "Workload",
    "WorkloadError",
    "batch_strq",
    "batch_tpq",
    "batch_exact",
    "load_workload",
    "QueryEngine",
]

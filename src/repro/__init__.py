"""PPQ-Trajectory: spatio-temporal quantization for querying large trajectory
repositories.

A from-scratch Python reproduction of Wang & Ferhatosmanoglu, PVLDB 14(2),
2021 (VLDB 2020).  The package provides:

* :class:`repro.PPQTrajectory` -- the end-to-end system (quantize + CQC +
  temporal partition-based index + queries);
* :mod:`repro.core` -- the partition-wise predictive quantizer and its
  building blocks;
* :mod:`repro.cqc` -- coordinate quadtree coding;
* :mod:`repro.index` -- partition-based / temporal partition-based indexes
  and the simulated disk layout;
* :mod:`repro.queries` -- STRQ, TPQ and exact-match query processing;
* :mod:`repro.baselines` -- product quantization, residual quantization,
  Q-trajectory, TrajStore and REST, re-implemented for the comparative
  experiments;
* :mod:`repro.data` -- the trajectory data model, synthetic Porto/GeoLife-like
  generators and loaders for the real datasets;
* :mod:`repro.metrics` -- MAE, precision/recall, compression-ratio and timing
  utilities used by the benchmark harness;
* :mod:`repro.storage` -- versioned on-disk model artifacts
  (:func:`save_model` / :func:`load_model`) for the build-once/serve-many
  deployment split;
* :mod:`repro.reliability` -- fault injection (:class:`FaultPlan` /
  :func:`inject_faults`), retry policies, salvage load reports and graceful
  query degradation for fault-tolerant serving;
* :mod:`repro.parallel` -- multiprocess batch serving
  (:class:`ParallelExecutor`): workloads sharded across worker processes
  that each load a model artifact once, with bit-identical results.
"""

from repro.core.config import CQCConfig, IndexConfig, PPQConfig, PartitionCriterion
from repro.core.epq import ErrorBoundedPredictiveQuantizer
from repro.core.pipeline import PPQTrajectory
from repro.core.ppq import PartitionwisePredictiveQuantizer
from repro.core.summary import TrajectorySummary
from repro.parallel import ParallelExecutor
from repro.queries.engine import QueryEngine
from repro.reliability import (
    FaultError,
    FaultPlan,
    LoadReport,
    QueryError,
    RetryPolicy,
    inject_faults,
)

__version__ = "1.3.0"

from repro.storage import inspect_model, load_model, save_model  # noqa: E402

__all__ = [
    "PPQTrajectory",
    "PPQConfig",
    "CQCConfig",
    "IndexConfig",
    "PartitionCriterion",
    "PartitionwisePredictiveQuantizer",
    "ErrorBoundedPredictiveQuantizer",
    "TrajectorySummary",
    "QueryEngine",
    "ParallelExecutor",
    "FaultError",
    "FaultPlan",
    "LoadReport",
    "QueryError",
    "RetryPolicy",
    "inject_faults",
    "save_model",
    "load_model",
    "inspect_model",
    "__version__",
]

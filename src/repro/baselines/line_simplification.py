"""Line-simplification baselines: Douglas-Peucker and SQUISH.

The paper's related-work section discusses the classic family of trajectory
compression methods that drop redundant points and keep a sub-sequence of the
original samples (Douglas-Peucker and the online SQUISH/SQUISH-E family of
Muckell et al.).  They are not part of the paper's experimental comparison,
but they are the natural extra baseline a practitioner would reach for, so the
reproduction ships them as an extension: both produce a
:class:`~repro.baselines.common.BaselineSummary` whose reconstructions are
linear interpolations between the retained samples, which makes them directly
comparable to the quantization methods under the same MAE / compression-ratio
metrics.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.baselines.common import BaselineSummary
from repro.data.trajectory import Trajectory, TrajectoryDataset


def douglas_peucker_mask(points: np.ndarray, tolerance: float) -> np.ndarray:
    """Boolean mask of the points kept by Douglas-Peucker simplification.

    Parameters
    ----------
    points:
        ``(n, 2)`` array of positions.
    tolerance:
        Maximum allowed perpendicular deviation of any dropped point from the
        segment joining its retained neighbours.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    keep = np.zeros(n, dtype=bool)
    if n == 0:
        return keep
    keep[0] = True
    keep[-1] = True
    if n <= 2:
        return keep
    stack = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        segment = points[start:end + 1]
        distances = _perpendicular_distances(segment[1:-1], points[start], points[end])
        worst = int(np.argmax(distances))
        if distances[worst] > tolerance:
            split = start + 1 + worst
            keep[split] = True
            stack.append((start, split))
            stack.append((split, end))
    return keep


def squish_mask(points: np.ndarray, tolerance: float) -> np.ndarray:
    """Boolean mask of the points kept by the SQUISH priority-queue algorithm.

    SQUISH removes, one at a time, the point whose removal introduces the
    smallest synchronised-Euclidean-style error (here: perpendicular deviation
    from the segment joining its current neighbours), accumulating the removed
    error onto the neighbours, until removing any further point would exceed
    ``tolerance``.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    keep = np.ones(n, dtype=bool)
    if n <= 2:
        return keep
    prev = list(range(-1, n - 1))
    nxt = list(range(1, n + 1))
    accumulated = np.zeros(n, dtype=float)

    def cost(i: int) -> float:
        return accumulated[i] + float(
            _perpendicular_distances(points[i:i + 1], points[prev[i]], points[nxt[i]])[0]
        )

    heap = [(cost(i), i) for i in range(1, n - 1)]
    heapq.heapify(heap)
    removed = np.zeros(n, dtype=bool)
    while heap:
        current_cost, i = heapq.heappop(heap)
        if removed[i]:
            continue
        if current_cost != cost(i):
            heapq.heappush(heap, (cost(i), i))
            continue
        if current_cost > tolerance:
            break
        removed[i] = True
        keep[i] = False
        left, right = prev[i], nxt[i]
        nxt[left] = right
        prev[right] = left
        for neighbour in (left, right):
            if 0 < neighbour < n - 1 and not removed[neighbour]:
                accumulated[neighbour] = max(accumulated[neighbour], current_cost)
                heapq.heappush(heap, (cost(neighbour), neighbour))
    return keep


class LineSimplificationSummarizer:
    """Summarise a dataset by per-trajectory line simplification.

    Parameters
    ----------
    tolerance:
        Deviation tolerance passed to the simplification algorithm, in
        coordinate units.
    algorithm:
        ``"douglas-peucker"`` (offline, optimal split points) or ``"squish"``
        (online priority-queue removal).
    """

    def __init__(self, tolerance: float, algorithm: str = "douglas-peucker") -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be > 0")
        if algorithm not in ("douglas-peucker", "squish"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.tolerance = float(tolerance)
        self.algorithm = algorithm

    @property
    def method_name(self) -> str:
        return "Douglas-Peucker" if self.algorithm == "douglas-peucker" else "SQUISH"

    def summarize(self, dataset: TrajectoryDataset, t_max: int | None = None) -> BaselineSummary:
        """Simplify every trajectory and interpolate the dropped points."""
        summary = BaselineSummary(method=self.method_name)
        start = time.perf_counter()
        for traj in dataset:
            points, timestamps = self._clip(traj, t_max)
            if len(points) == 0:
                continue
            if self.algorithm == "douglas-peucker":
                keep = douglas_peucker_mask(points, self.tolerance)
            else:
                keep = squish_mask(points, self.tolerance)
            reconstructed = _interpolate(points, keep)
            for row, t in enumerate(timestamps):
                summary.reconstructions[(traj.traj_id, int(t))] = reconstructed[row]
            kept = int(np.count_nonzero(keep))
            summary.num_points += len(points)
            # Storage: retained samples as (timestamp, x, y) records.
            summary.storage_bits += kept * (32 + 2 * 64)
        summary.build_seconds = time.perf_counter() - start
        return summary

    @staticmethod
    def _clip(traj: Trajectory, t_max: int | None) -> tuple[np.ndarray, np.ndarray]:
        if t_max is None:
            return traj.points, traj.timestamps
        mask = traj.timestamps <= t_max
        return traj.points[mask], traj.timestamps[mask]


def _perpendicular_distances(points: np.ndarray, start: np.ndarray, end: np.ndarray) -> np.ndarray:
    """Distance of each point to the segment ``start``-``end``."""
    points = np.atleast_2d(points)
    segment = end - start
    length_sq = float(segment @ segment)
    if length_sq == 0.0:
        return np.linalg.norm(points - start, axis=1)
    offsets = points - start
    projection = np.clip(offsets @ segment / length_sq, 0.0, 1.0)
    nearest = start + projection[:, None] * segment
    return np.linalg.norm(points - nearest, axis=1)


def _interpolate(points: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Linear interpolation of dropped points between retained neighbours."""
    kept_indices = np.flatnonzero(keep)
    reconstructed = points.copy()
    for left, right in zip(kept_indices, kept_indices[1:]):
        span = right - left
        if span <= 1:
            continue
        for offset in range(1, span):
            alpha = offset / span
            reconstructed[left + offset] = (1 - alpha) * points[left] + alpha * points[right]
    return reconstructed

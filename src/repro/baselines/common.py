"""Common interface shared by all baseline summarizers.

Every baseline produces a :class:`BaselineSummary`: a per-point reconstruction
table plus the storage accounting needed for the compression-ratio and
codebook-size experiments.  The summary exposes the same reconstruction
methods as :class:`repro.core.summary.TrajectorySummary`, so the metric and
query code can treat PPQ and the baselines uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.data.trajectory import Trajectory, TrajectoryDataset


@dataclass
class BaselineSummary:
    """Summary produced by a baseline method.

    Attributes
    ----------
    method:
        Human-readable method name (used in benchmark tables).
    reconstructions:
        Mapping ``(traj_id, t)`` -> reconstructed point.
    num_codewords:
        Total number of codewords across all codebooks of the method.
    storage_bits:
        Total storage footprint of the summary (codebooks + per-point codes +
        any side information), in bits.
    num_points:
        Number of summarised trajectory points.
    build_seconds:
        Wall-clock time spent building the summary.
    extras:
        Free-form method-specific statistics (e.g. TrajStore cell counts).
    """

    method: str
    reconstructions: dict[tuple[int, int], np.ndarray] = field(default_factory=dict)
    num_codewords: int = 0
    storage_bits: int = 0
    num_points: int = 0
    build_seconds: float = 0.0
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # reconstruction interface (mirrors TrajectorySummary)
    # ------------------------------------------------------------------ #
    def reconstruct_point(self, traj_id: int, t: int, use_cqc: bool = True) -> np.ndarray | None:
        """Reconstructed position of ``traj_id`` at ``t`` (``None`` if absent)."""
        return self.reconstructions.get((int(traj_id), int(t)))

    def reconstruct_path(self, traj_id: int, t_start: int, length: int,
                         use_cqc: bool = True) -> np.ndarray:
        """Consecutive reconstructed positions starting at ``t_start``."""
        points = []
        for t in range(int(t_start), int(t_start) + int(length)):
            point = self.reconstruct_point(traj_id, t)
            if point is None:
                break
            points.append(point)
        if not points:
            return np.empty((0, 2), dtype=float)
        return np.vstack(points)

    def to_dataset(self) -> TrajectoryDataset:
        """Materialise the reconstructions as a dataset (for index building)."""
        per_traj: dict[int, list[tuple[int, np.ndarray]]] = {}
        for (tid, t), point in self.reconstructions.items():
            per_traj.setdefault(tid, []).append((t, point))
        trajectories = []
        for tid, entries in per_traj.items():
            entries.sort(key=lambda item: item[0])
            timestamps = np.asarray([t for t, _ in entries], dtype=np.int64)
            points = np.vstack([p for _, p in entries])
            trajectories.append(Trajectory(traj_id=tid, points=points, timestamps=timestamps))
        return TrajectoryDataset(trajectories)

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def compression_ratio(self, coordinate_bytes: int = 8) -> float:
        """Raw size divided by summary size (higher is better)."""
        raw_bits = self.num_points * 2 * coordinate_bytes * 8
        if self.storage_bits <= 0:
            return float("inf")
        return raw_bits / self.storage_bits


@runtime_checkable
class TrajectorySummarizer(Protocol):
    """Protocol implemented by every summarisation method in the harness."""

    def summarize(self, dataset: TrajectoryDataset,
                  t_max: int | None = None) -> BaselineSummary:
        """Summarise the dataset and return the reconstruction table."""
        ...  # pragma: no cover


def codeword_budget_for_bits(bits: int) -> int:
    """Number of codewords corresponding to a ``bits``-bit codeword index."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    return 1 << bits


def index_bits_for_codewords(num_codewords: int) -> int:
    """Bits needed to address one of ``num_codewords`` codewords."""
    if num_codewords <= 1:
        return 1
    return int(np.ceil(np.log2(num_codewords)))

"""Product quantization baseline (Jégou et al., TPAMI 2011).

Product quantization splits each vector into sub-vectors and quantizes every
sub-vector with its own codebook; the code of a vector is the concatenation of
its sub-codewords.  For 2-D trajectory points the natural split is one
sub-quantizer per coordinate.  Following the paper's experimental protocol the
codebooks are learned independently per timestamp, either with a fixed
codeword budget (Tables 2-4) or grown until a spatial-deviation bound is met
(Tables 5-6, Figure 9).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineSummary, index_bits_for_codewords
from repro.data.trajectory import TrajectoryDataset


class ProductQuantizationSummarizer:
    """Per-timestamp product quantizer over raw coordinates.

    Parameters
    ----------
    bits:
        Fixed per-point code length in bits; the per-dimension codebooks get
        ``2^(bits/2)`` centroids each.  Mutually exclusive with ``epsilon``.
    epsilon:
        Error bound: per-dimension codebooks are grown (doubling) until every
        point is reconstructed within ``epsilon`` (Euclidean).  Mutually
        exclusive with ``bits``.
    seed:
        Random seed for the 1-D k-means initialisation.
    """

    method_name = "Product Quantization"

    def __init__(self, bits: int | None = None, epsilon: float | None = None,
                 seed: int = 0) -> None:
        if (bits is None) == (epsilon is None):
            raise ValueError("specify exactly one of bits or epsilon")
        if bits is not None and bits < 2:
            raise ValueError("bits must be >= 2 for a two-dimensional product quantizer")
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        self.bits = bits
        self.epsilon = epsilon
        self.seed = seed

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def summarize(self, dataset: TrajectoryDataset, t_max: int | None = None) -> BaselineSummary:
        """Quantize every timestamp slice independently."""
        summary = BaselineSummary(method=self.method_name)
        start = time.perf_counter()
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            reconstructed, codewords, code_bits = self._quantize_slice(slice_.points)
            for row, tid in enumerate(slice_.traj_ids):
                summary.reconstructions[(int(tid), slice_.t)] = reconstructed[row]
            summary.num_codewords += codewords
            summary.storage_bits += codewords * 8 * 8  # 1-D centroids, float64
            summary.storage_bits += len(slice_.points) * code_bits
            summary.num_points += len(slice_.points)
        summary.build_seconds = time.perf_counter() - start
        return summary

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _quantize_slice(self, points: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Quantize one slice; returns (reconstructions, #codewords, bits/point)."""
        if self.bits is not None:
            per_dim = max(1, 1 << (self.bits // 2))
            reconstructed, used = self._quantize_with_budget(points, per_dim)
            return reconstructed, used, 2 * index_bits_for_codewords(max(1, used // 2))
        per_dim = 2
        while True:
            reconstructed, used = self._quantize_with_budget(points, per_dim)
            errors = np.linalg.norm(points - reconstructed, axis=1)
            if np.all(errors <= self.epsilon) or per_dim >= len(points):
                bits = 2 * index_bits_for_codewords(max(1, used // 2))
                return reconstructed, used, bits
            per_dim = min(len(points), per_dim * 2)

    def _quantize_with_budget(self, points: np.ndarray, per_dim: int) -> tuple[np.ndarray, int]:
        """Quantize each coordinate with a ``per_dim``-centroid 1-D codebook."""
        reconstructed = np.empty_like(points)
        total_codewords = 0
        for dim in range(2):
            values = points[:, dim]
            centroids, labels = _kmeans_1d(values, per_dim, seed=self.seed + dim)
            reconstructed[:, dim] = centroids[labels]
            total_codewords += len(centroids)
        return reconstructed, total_codewords


def _kmeans_1d(values: np.ndarray, k: int, iterations: int = 12,
               seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """1-D k-means via sorted quantile initialisation and Lloyd iterations."""
    values = np.asarray(values, dtype=float)
    k = int(min(max(1, k), len(values)))
    if k == 1:
        centroids = np.asarray([values.mean()])
        return centroids, np.zeros(len(values), dtype=np.int64)
    # Quantile initialisation is deterministic and well spread for 1-D data;
    # a seeded jitter breaks ties between identical quantiles.
    rng = np.random.default_rng(seed)
    quantiles = np.linspace(0.0, 1.0, k)
    centroids = np.quantile(values, quantiles) + rng.normal(scale=1e-12, size=k)
    labels = np.zeros(len(values), dtype=np.int64)
    for _ in range(iterations):
        distances = np.abs(values[:, None] - centroids[None, :])
        labels = np.argmin(distances, axis=1)
        for j in range(k):
            members = values[labels == j]
            if len(members):
                centroids[j] = members.mean()
    return centroids, labels

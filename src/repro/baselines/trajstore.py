"""TrajStore baseline (Cudre-Mauroux, Wu & Madden, ICDE 2010).

TrajStore is an adaptive storage system for trajectory data: the space is
organised by an adaptive quadtree whose cells split when they accumulate too
many (sub-)trajectory points, and the points of each cell are stored -- and
compressed -- together.  Following the paper's extended implementation the
store ingests streaming per-timestamp points, dynamically splitting cells, and
the per-cell summaries are produced after the spatial index has seen all the
data (which is exactly the property the paper criticises: summarisation cannot
start until the index is stable).

Compression within a cell follows the paper's protocol: the cell receives a
codeword budget proportional to its point count (fixed-bits mode), or grows
its codebook until a spatial-deviation bound is met (error-bounded mode).

For the disk experiments (Table 9) each quadtree leaf cell maps to a run of
pages holding all its points (of all timestamps); a spatio-temporal query must
read every page of the cell containing the query point, which is why
TrajStore's I/O counts are much higher than TPI's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.common import BaselineSummary, index_bits_for_codewords
from repro.core.quantizer import kmeans
from repro.data.trajectory import TrajectoryDataset
from repro.index.disk import POINT_RECORD_BYTES, PageStore
from repro.index.rectangles import Rect


@dataclass
class _QuadCell:
    """One cell of the adaptive quadtree."""

    rect: Rect
    depth: int
    # Parallel lists of (traj_id, t) keys and points stored in this cell.
    keys: list[tuple[int, int]] = field(default_factory=list)
    points: list[np.ndarray] = field(default_factory=list)
    children: list["_QuadCell"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def num_points(self) -> int:
        return len(self.keys)


class TrajStore:
    """Adaptive quadtree store with per-cell compression and page layout.

    Parameters
    ----------
    bounds:
        Overall spatial bounds of the store.
    cell_capacity:
        Maximum points a leaf cell holds before it splits.
    max_depth:
        Maximum quadtree depth (guards against pathological splitting).
    page_size_bytes:
        Simulated page size for the disk experiments.
    """

    def __init__(self, bounds: Rect, cell_capacity: int = 512, max_depth: int = 12,
                 page_size_bytes: int = 1 << 20) -> None:
        if cell_capacity < 1:
            raise ValueError("cell_capacity must be >= 1")
        self.root = _QuadCell(rect=bounds, depth=0)
        self.cell_capacity = int(cell_capacity)
        self.max_depth = int(max_depth)
        self.store = PageStore(page_size_bytes=page_size_bytes)
        self._cell_pages: dict[int, tuple[int, int]] = {}
        self._num_splits = 0

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def insert_slice(self, t: int, traj_ids: np.ndarray, points: np.ndarray) -> None:
        """Insert the points of one timestamp, splitting cells as needed."""
        traj_ids = np.asarray(traj_ids, dtype=np.int64)
        points = np.asarray(points, dtype=float)
        for tid, point in zip(traj_ids, points):
            self._insert_point(self.root, (int(tid), int(t)), point)

    def _insert_point(self, cell: _QuadCell, key: tuple[int, int], point: np.ndarray) -> None:
        while not cell.is_leaf:
            cell = self._child_for(cell, point)
        cell.keys.append(key)
        cell.points.append(point)
        if cell.num_points > self.cell_capacity and cell.depth < self.max_depth:
            self._split(cell)

    def _child_for(self, cell: _QuadCell, point: np.ndarray) -> _QuadCell:
        for child in cell.children:
            if child.rect.contains(point[0], point[1]):
                return child
        # Numerical edge: fall back to the nearest child centre.
        centers = np.asarray([
            [(c.rect.min_x + c.rect.max_x) / 2.0, (c.rect.min_y + c.rect.max_y) / 2.0]
            for c in cell.children
        ])
        nearest = int(np.argmin(np.linalg.norm(centers - point, axis=1)))
        return cell.children[nearest]

    def _split(self, cell: _QuadCell) -> None:
        """Split a leaf into four quadrants and redistribute its points."""
        rect = cell.rect
        mid_x = (rect.min_x + rect.max_x) / 2.0
        mid_y = (rect.min_y + rect.max_y) / 2.0
        cell.children = [
            _QuadCell(Rect(rect.min_x, rect.min_y, mid_x, mid_y), cell.depth + 1),
            _QuadCell(Rect(mid_x, rect.min_y, rect.max_x, mid_y), cell.depth + 1),
            _QuadCell(Rect(rect.min_x, mid_y, mid_x, rect.max_y), cell.depth + 1),
            _QuadCell(Rect(mid_x, mid_y, rect.max_x, rect.max_y), cell.depth + 1),
        ]
        keys, points = cell.keys, cell.points
        cell.keys, cell.points = [], []
        self._num_splits += 1
        for key, point in zip(keys, points):
            child = self._child_for(cell, point)
            child.keys.append(key)
            child.points.append(point)
        # A pathological all-identical-points cell could still exceed the
        # capacity; the depth cap prevents infinite recursion.
        for child in cell.children:
            if child.num_points > self.cell_capacity and child.depth < self.max_depth:
                self._split(child)

    # ------------------------------------------------------------------ #
    # cell enumeration
    # ------------------------------------------------------------------ #
    def leaves(self) -> list[_QuadCell]:
        """All leaf cells (including empty ones)."""
        result: list[_QuadCell] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            if cell.is_leaf:
                result.append(cell)
            else:
                stack.extend(cell.children)
        return result

    def leaf_for(self, x: float, y: float) -> _QuadCell | None:
        """The leaf cell containing ``(x, y)`` or ``None`` if out of bounds."""
        if not self.root.rect.contains(x, y):
            return None
        cell = self.root
        while not cell.is_leaf:
            cell = self._child_for(cell, np.asarray([x, y], dtype=float))
        return cell

    @property
    def num_splits(self) -> int:
        return self._num_splits

    # ------------------------------------------------------------------ #
    # disk layout and querying (Table 9)
    # ------------------------------------------------------------------ #
    def layout_on_pages(self) -> None:
        """Assign every leaf cell's points to a run of pages."""
        self._cell_pages.clear()
        for cell in self.leaves():
            if cell.num_points == 0:
                continue
            payload = cell.num_points * POINT_RECORD_BYTES
            start_page, num_pages = self.store.write_sequence(payload)
            self._cell_pages[id(cell)] = (start_page, num_pages)

    def query(self, x: float, y: float, t: int) -> list[int]:
        """Spatio-temporal lookup with page-I/O accounting.

        The whole cell (all timestamps) must be read; only the trajectory IDs
        whose stored timestamp matches ``t`` are returned.
        """
        cell = self.leaf_for(x, y)
        if cell is None or cell.num_points == 0:
            return []
        location = self._cell_pages.get(id(cell))
        if location is not None:
            self.store.read_range(location[0], location[1])
        return sorted({tid for (tid, ts) in cell.keys if ts == int(t)})

    @property
    def num_ios(self) -> int:
        return self.store.reads

    def index_size_megabytes(self) -> float:
        """Size of the quadtree directory (cells and page pointers)."""
        num_cells = len(self.leaves())
        bits = num_cells * (4 * 64 + 2 * 32)
        return bits / 8.0 / (1 << 20)


class TrajStoreSummarizer:
    """Summarisation protocol wrapper around :class:`TrajStore`.

    Parameters
    ----------
    bits:
        Total per-timestamp codeword budget of ``2^bits`` codewords,
        distributed over the leaf cells proportionally to their point counts.
        Mutually exclusive with ``epsilon``.
    epsilon:
        Spatial-deviation bound for per-cell codebooks.  Mutually exclusive
        with ``bits``.
    cell_capacity:
        Leaf capacity of the adaptive quadtree.
    seed:
        Random seed for per-cell k-means.
    """

    method_name = "TrajStore"

    def __init__(self, bits: int | None = None, epsilon: float | None = None,
                 cell_capacity: int = 512, seed: int = 0) -> None:
        if (bits is None) == (epsilon is None):
            raise ValueError("specify exactly one of bits or epsilon")
        self.bits = bits
        self.epsilon = epsilon
        self.cell_capacity = cell_capacity
        self.seed = seed

    def summarize(self, dataset: TrajectoryDataset, t_max: int | None = None) -> BaselineSummary:
        """Ingest the stream, then compress every leaf cell."""
        start = time.perf_counter()
        min_x, min_y, max_x, max_y = dataset.bounding_box()
        pad = max(max_x - min_x, max_y - min_y) * 1e-6 + 1e-12
        store = TrajStore(
            Rect(min_x - pad, min_y - pad, max_x + pad, max_y + pad),
            cell_capacity=self.cell_capacity,
        )
        total_points = 0
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            store.insert_slice(slice_.t, slice_.traj_ids, slice_.points)
            total_points += len(slice_)

        summary = BaselineSummary(method=self.method_name)
        summary.num_points = total_points
        summary.extras["num_cells"] = len(store.leaves())
        summary.extras["num_splits"] = store.num_splits
        total_budget = (1 << self.bits) if self.bits is not None else None
        for cell in store.leaves():
            if cell.num_points == 0:
                continue
            points = np.vstack(cell.points)
            if total_budget is not None:
                share = max(1, int(round(total_budget * cell.num_points / total_points)))
                k = int(min(share, len(points)))
                centroids, labels = kmeans(points, k, iterations=10, seed=self.seed)
            else:
                centroids, labels = self._error_bounded_cell(points)
            reconstructed = centroids[labels]
            for key, rec in zip(cell.keys, reconstructed):
                summary.reconstructions[key] = rec
            summary.num_codewords += len(centroids)
            summary.storage_bits += len(centroids) * 2 * 8 * 8
            summary.storage_bits += len(points) * index_bits_for_codewords(len(centroids))
        # Quadtree directory overhead.
        summary.storage_bits += len(store.leaves()) * 4 * 64
        summary.build_seconds = time.perf_counter() - start
        return summary

    def _error_bounded_cell(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Grow a per-cell codebook until the deviation bound holds."""
        k = 1
        while True:
            centroids, labels = kmeans(points, int(min(k, len(points))),
                                       iterations=10, seed=self.seed)
            errors = np.linalg.norm(points - centroids[labels], axis=1)
            if np.all(errors <= self.epsilon) or k >= len(points):
                return centroids, labels
            k = min(len(points), k * 2)

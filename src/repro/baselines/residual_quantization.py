"""Residual quantization baseline (Chen, Guan & Wang, Sensors 2010).

Residual (multi-stage) quantization approximates a vector as the sum of
codewords from a cascade of codebooks: the first stage quantizes the raw
vectors, each following stage quantizes the residual left by the previous
stages.  As in the paper's protocol the codebooks are learned independently
per timestamp, with either a fixed codeword budget or an error-bound target.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineSummary, index_bits_for_codewords
from repro.core.quantizer import kmeans
from repro.data.trajectory import TrajectoryDataset


class ResidualQuantizationSummarizer:
    """Per-timestamp residual quantizer over raw coordinates.

    Parameters
    ----------
    bits:
        Fixed per-point code length; split evenly across ``stages`` codebooks
        of ``2^(bits/stages)`` centroids each.  Mutually exclusive with
        ``epsilon``.
    epsilon:
        Error bound: stage codebooks are grown (doubling) until every point is
        reconstructed within ``epsilon``.  Mutually exclusive with ``bits``.
    stages:
        Number of cascaded codebooks (the classic setting is two).
    seed:
        Random seed for k-means initialisation.
    """

    method_name = "Residual Quantization"

    def __init__(self, bits: int | None = None, epsilon: float | None = None,
                 stages: int = 2, seed: int = 0) -> None:
        if (bits is None) == (epsilon is None):
            raise ValueError("specify exactly one of bits or epsilon")
        if stages < 1:
            raise ValueError("stages must be >= 1")
        if bits is not None and bits < stages:
            raise ValueError("bits must be >= stages")
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        self.bits = bits
        self.epsilon = epsilon
        self.stages = int(stages)
        self.seed = seed

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def summarize(self, dataset: TrajectoryDataset, t_max: int | None = None) -> BaselineSummary:
        """Quantize every timestamp slice independently."""
        summary = BaselineSummary(method=self.method_name)
        start = time.perf_counter()
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            reconstructed, codewords, code_bits = self._quantize_slice(slice_.points)
            for row, tid in enumerate(slice_.traj_ids):
                summary.reconstructions[(int(tid), slice_.t)] = reconstructed[row]
            summary.num_codewords += codewords
            summary.storage_bits += codewords * 2 * 8 * 8  # 2-D centroids, float64
            summary.storage_bits += len(slice_.points) * code_bits
            summary.num_points += len(slice_.points)
        summary.build_seconds = time.perf_counter() - start
        return summary

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _quantize_slice(self, points: np.ndarray) -> tuple[np.ndarray, int, int]:
        if self.bits is not None:
            per_stage = max(1, 1 << (self.bits // self.stages))
            reconstructed, used = self._cascade(points, per_stage)
            bits = self.stages * index_bits_for_codewords(max(1, used // self.stages))
            return reconstructed, used, bits
        per_stage = 2
        while True:
            reconstructed, used = self._cascade(points, per_stage)
            errors = np.linalg.norm(points - reconstructed, axis=1)
            if np.all(errors <= self.epsilon) or per_stage >= len(points):
                bits = self.stages * index_bits_for_codewords(max(1, used // self.stages))
                return reconstructed, used, bits
            per_stage = min(len(points), per_stage * 2)

    def _cascade(self, points: np.ndarray, per_stage: int) -> tuple[np.ndarray, int]:
        """Run the residual cascade; returns (reconstructions, #codewords)."""
        residual = points.copy()
        reconstructed = np.zeros_like(points)
        total_codewords = 0
        for stage in range(self.stages):
            k = int(min(per_stage, len(points)))
            centroids, labels = kmeans(residual, k, iterations=10, seed=self.seed + stage)
            stage_reconstruction = centroids[labels]
            reconstructed += stage_reconstruction
            residual = residual - stage_reconstruction
            total_codewords += len(centroids)
        return reconstructed, total_codewords

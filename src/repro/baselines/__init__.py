"""Baselines re-implemented for the comparative experiments (Section 6.1).

Every baseline implements the :class:`~repro.baselines.common.TrajectorySummarizer`
protocol -- ``summarize(dataset) -> BaselineSummary`` -- so the benchmark
harness can run all methods through the same code path.

* :mod:`repro.baselines.product_quantization` -- product quantization
  (Jégou et al.), per-timestamp codebooks over raw coordinates split into
  per-dimension sub-quantizers.
* :mod:`repro.baselines.residual_quantization` -- residual (multi-stage)
  quantization (Chen et al.).
* :mod:`repro.baselines.q_trajectory` -- the paper's Q-trajectory ablation:
  the incremental error-bounded quantizer applied to raw coordinates without
  prediction.
* :mod:`repro.baselines.trajstore` -- TrajStore (Cudre-Mauroux et al.): an
  adaptive quadtree spatial index with per-cell sub-trajectory quantization.
* :mod:`repro.baselines.rest` -- REST (Zhao et al.): reference-based
  trajectory compression by sub-trajectory matching.
* :mod:`repro.baselines.line_simplification` -- Douglas-Peucker and SQUISH
  point-dropping baselines (extension; discussed in the paper's related work).
"""

from repro.baselines.common import BaselineSummary, TrajectorySummarizer
from repro.baselines.line_simplification import LineSimplificationSummarizer
from repro.baselines.product_quantization import ProductQuantizationSummarizer
from repro.baselines.residual_quantization import ResidualQuantizationSummarizer
from repro.baselines.q_trajectory import QTrajectorySummarizer
from repro.baselines.trajstore import TrajStore, TrajStoreSummarizer
from repro.baselines.rest import RESTCompressor, RESTSummary

__all__ = [
    "BaselineSummary",
    "TrajectorySummarizer",
    "ProductQuantizationSummarizer",
    "ResidualQuantizationSummarizer",
    "QTrajectorySummarizer",
    "TrajStore",
    "TrajStoreSummarizer",
    "RESTCompressor",
    "RESTSummary",
    "LineSimplificationSummarizer",
]

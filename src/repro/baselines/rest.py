"""REST baseline (Zhao et al., KDD 2018): reference-based trajectory compression.

REST compresses a trajectory by expressing it as a concatenation of
sub-trajectories drawn from a pre-built *reference set*: whenever a run of
consecutive points matches a reference sub-trajectory within a spatial
deviation bound, only the reference ID, the start offset and the length are
stored; points that cannot be matched are kept raw.  Compression quality
therefore hinges on how repetitive the data is -- the reason the paper
evaluates REST only on the purpose-built sub-Porto dataset
(:mod:`repro.data.subporto`).

The implementation uses the trajectory-redundancy-reduction variant the paper
compares against: greedy longest-match extension over a spatial hash of the
reference points.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.trajectory import TrajectoryDataset


@dataclass
class _MatchToken:
    """A run of points matched against the reference set."""

    ref_id: int
    start: int
    length: int


@dataclass
class _RawToken:
    """A single point stored verbatim."""

    point: np.ndarray


@dataclass
class RESTSummary:
    """Compressed representation produced by :class:`RESTCompressor`.

    Attributes
    ----------
    tokens:
        Mapping trajectory ID -> list of match/raw tokens in trajectory order.
    storage_bits:
        Bit cost of the compressed representation (reference set excluded, as
        in the original paper the reference set is shared infrastructure).
    num_points:
        Number of compressed trajectory points.
    build_seconds:
        Wall-clock compression time.
    """

    tokens: dict[int, list] = field(default_factory=dict)
    storage_bits: int = 0
    num_points: int = 0
    build_seconds: float = 0.0

    def compression_ratio(self, coordinate_bytes: int = 8) -> float:
        """Raw size divided by compressed size."""
        raw_bits = self.num_points * 2 * coordinate_bytes * 8
        if self.storage_bits <= 0:
            return float("inf")
        return raw_bits / self.storage_bits

    def matched_fraction(self) -> float:
        """Fraction of points covered by reference matches (diagnostics)."""
        matched = 0
        total = 0
        for tokens in self.tokens.values():
            for token in tokens:
                if isinstance(token, _MatchToken):
                    matched += token.length
                    total += token.length
                else:
                    total += 1
        return matched / total if total else 0.0


class RESTCompressor:
    """Reference-based compressor.

    Parameters
    ----------
    reference_set:
        Trajectories forming the reference repository.
    deviation:
        Maximum allowed per-point deviation between a trajectory point and the
        reference point it is matched to (the spatial deviation bound of the
        compression-ratio experiments).
    min_match_length:
        Minimum run length worth replacing by a reference token (a token costs
        three integers, so runs shorter than 2 never pay off).
    max_match_length:
        Maximum run length a single token may cover.  REST's reference
        repository consists of bounded-length *sub-trajectories*, so one token
        cannot span an arbitrarily long run; the default of 8 points mirrors
        the sub-trajectory granularity used in the original system.
    """

    method_name = "REST"

    def __init__(self, reference_set: TrajectoryDataset, deviation: float,
                 min_match_length: int = 2, max_match_length: int = 8) -> None:
        if deviation <= 0:
            raise ValueError("deviation must be > 0")
        if min_match_length < 1:
            raise ValueError("min_match_length must be >= 1")
        if max_match_length < min_match_length:
            raise ValueError("max_match_length must be >= min_match_length")
        self.reference_set = reference_set
        self.deviation = float(deviation)
        self.min_match_length = int(min_match_length)
        self.max_match_length = int(max_match_length)
        self._grid: dict[tuple[int, int], list[tuple[int, int]]] = {}
        self._build_spatial_hash()

    # ------------------------------------------------------------------ #
    # reference-set indexing
    # ------------------------------------------------------------------ #
    def _build_spatial_hash(self) -> None:
        """Hash every reference point into a grid of cell size ``deviation``."""
        for traj in self.reference_set:
            for idx, point in enumerate(traj.points):
                cell = self._cell(point)
                self._grid.setdefault(cell, []).append((traj.traj_id, idx))

    def _cell(self, point: np.ndarray) -> tuple[int, int]:
        return (int(math.floor(point[0] / self.deviation)),
                int(math.floor(point[1] / self.deviation)))

    def _candidates(self, point: np.ndarray) -> list[tuple[int, int]]:
        """Reference positions whose point may lie within the deviation."""
        cx, cy = self._cell(point)
        found: list[tuple[int, int]] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                found.extend(self._grid.get((cx + dx, cy + dy), ()))
        return found

    # ------------------------------------------------------------------ #
    # compression
    # ------------------------------------------------------------------ #
    def compress(self, dataset: TrajectoryDataset) -> RESTSummary:
        """Compress every trajectory of ``dataset`` against the reference set."""
        summary = RESTSummary()
        start = time.perf_counter()
        for traj in dataset:
            tokens = self._compress_trajectory(traj.points)
            summary.tokens[traj.traj_id] = tokens
            summary.num_points += len(traj.points)
            summary.storage_bits += self._token_bits(tokens)
        summary.build_seconds = time.perf_counter() - start
        return summary

    def _compress_trajectory(self, points: np.ndarray) -> list:
        tokens: list = []
        i = 0
        n = len(points)
        while i < n:
            match = self._longest_match(points, i)
            if match is not None and match.length >= self.min_match_length:
                tokens.append(match)
                i += match.length
            else:
                tokens.append(_RawToken(point=points[i].copy()))
                i += 1
        return tokens

    def _longest_match(self, points: np.ndarray, start: int) -> _MatchToken | None:
        """Greedy longest run matching a reference sub-trajectory from ``start``."""
        best: _MatchToken | None = None
        for ref_id, ref_idx in self._candidates(points[start]):
            ref_points = self.reference_set.get(ref_id).points
            length = 0
            while (length < self.max_match_length
                   and start + length < len(points)
                   and ref_idx + length < len(ref_points)
                   and np.linalg.norm(points[start + length] - ref_points[ref_idx + length])
                   <= self.deviation):
                length += 1
            if length and (best is None or length > best.length):
                best = _MatchToken(ref_id=ref_id, start=ref_idx, length=length)
        return best

    @staticmethod
    def _token_bits(tokens: list) -> int:
        """Bit cost of a token list: 3x32-bit ints per match, 2x64 per raw point."""
        bits = 0
        for token in tokens:
            if isinstance(token, _MatchToken):
                bits += 3 * 32
            else:
                bits += 2 * 64
        return bits

    # ------------------------------------------------------------------ #
    # reconstruction
    # ------------------------------------------------------------------ #
    def reconstruct(self, summary: RESTSummary, traj_id: int) -> np.ndarray:
        """Reconstruct a compressed trajectory from its tokens."""
        tokens = summary.tokens.get(int(traj_id))
        if tokens is None:
            raise KeyError(f"trajectory {traj_id} not in the summary")
        pieces: list[np.ndarray] = []
        for token in tokens:
            if isinstance(token, _MatchToken):
                ref_points = self.reference_set.get(token.ref_id).points
                pieces.append(ref_points[token.start:token.start + token.length])
            else:
                pieces.append(token.point.reshape(1, 2))
        if not pieces:
            return np.empty((0, 2), dtype=float)
        return np.vstack(pieces)

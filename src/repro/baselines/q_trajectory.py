"""Q-trajectory: PPQ-trajectory with the prediction step removed.

This ablation (Section 6.1) quantizes the raw trajectory coordinates directly
with the same incremental error-bounded codebook machinery used by PPQ.
Because raw coordinates span the whole region (instead of the narrow dynamic
range of prediction errors), the codebook must grow much larger for the same
error bound -- which is exactly the effect the paper's experiments highlight.

Two modes are supported, matching the two experimental protocols:

* ``epsilon`` -- online error-bounded quantization with a single shared,
  growing codebook (the Table 5/6 and Figure 9 protocol);
* ``bits`` -- an independent fixed-size codebook per timestamp
  (the Table 2/4 protocol).
"""

from __future__ import annotations

import time

from repro.baselines.common import BaselineSummary, index_bits_for_codewords
from repro.core.codebook import Codebook
from repro.core.quantizer import IncrementalQuantizer, kmeans
from repro.data.trajectory import TrajectoryDataset


class QTrajectorySummarizer:
    """Direct quantization of raw coordinates (no prediction).

    Parameters
    ----------
    bits:
        Fixed per-timestamp codebook size of ``2^bits`` codewords.  Mutually
        exclusive with ``epsilon``.
    epsilon:
        Error bound for the shared incremental codebook.  Mutually exclusive
        with ``bits``.
    seed:
        Random seed for k-means initialisation.
    """

    method_name = "Q-trajectory"

    def __init__(self, bits: int | None = None, epsilon: float | None = None,
                 seed: int = 0) -> None:
        if (bits is None) == (epsilon is None):
            raise ValueError("specify exactly one of bits or epsilon")
        if bits is not None and bits < 1:
            raise ValueError("bits must be >= 1")
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be > 0")
        self.bits = bits
        self.epsilon = epsilon
        self.seed = seed

    def summarize(self, dataset: TrajectoryDataset, t_max: int | None = None) -> BaselineSummary:
        """Summarise the dataset in the configured mode."""
        if self.epsilon is not None:
            return self._summarize_error_bounded(dataset, t_max)
        return self._summarize_fixed_bits(dataset, t_max)

    # ------------------------------------------------------------------ #
    # error-bounded (online, shared codebook)
    # ------------------------------------------------------------------ #
    def _summarize_error_bounded(self, dataset: TrajectoryDataset,
                                 t_max: int | None) -> BaselineSummary:
        summary = BaselineSummary(method=self.method_name)
        codebook = Codebook()
        quantizer = IncrementalQuantizer(epsilon=self.epsilon, seed=self.seed)
        start = time.perf_counter()
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            indices = quantizer.quantize(slice_.points, codebook)
            reconstructed = codebook.reconstruct(indices)
            for row, tid in enumerate(slice_.traj_ids):
                summary.reconstructions[(int(tid), slice_.t)] = reconstructed[row]
            summary.num_points += len(slice_.points)
        summary.build_seconds = time.perf_counter() - start
        summary.num_codewords = len(codebook)
        index_bits = codebook.index_bits()
        summary.storage_bits = (
            len(codebook) * 2 * 8 * 8 + summary.num_points * index_bits
        )
        return summary

    # ------------------------------------------------------------------ #
    # fixed-size codebooks per timestamp
    # ------------------------------------------------------------------ #
    def _summarize_fixed_bits(self, dataset: TrajectoryDataset,
                              t_max: int | None) -> BaselineSummary:
        summary = BaselineSummary(method=self.method_name)
        budget = 1 << self.bits
        start = time.perf_counter()
        for slice_ in dataset.iter_time_slices(t_max=t_max):
            if len(slice_) == 0:
                continue
            k = int(min(budget, len(slice_.points)))
            centroids, labels = kmeans(slice_.points, k, iterations=10, seed=self.seed)
            reconstructed = centroids[labels]
            for row, tid in enumerate(slice_.traj_ids):
                summary.reconstructions[(int(tid), slice_.t)] = reconstructed[row]
            summary.num_codewords += len(centroids)
            summary.storage_bits += len(centroids) * 2 * 8 * 8
            summary.storage_bits += len(slice_.points) * index_bits_for_codewords(len(centroids))
            summary.num_points += len(slice_.points)
        summary.build_seconds = time.perf_counter() - start
        return summary
